"""Dense linear algebra substrate: LU factorization, batched solves.

Everything is implemented from scratch on top of NumPy array
operations; no ``numpy.linalg`` or SciPy solver is called by the panel
method, mirroring the paper's reliance on its own MKL/MAGMA kernels.
The test suite cross-checks these routines against ``numpy.linalg``.
"""

from repro.linalg.analysis import (
    condition_estimate_1norm,
    frobenius_norm,
    infinity_norm,
    one_norm,
    relative_residual,
)
from repro.linalg.blocked import blocked_lu_factor, blocked_solve
from repro.linalg.refinement import RefinementResult, refine_solve
from repro.linalg.batched import (
    BatchedLU,
    batched_flops,
    batched_lu_factor,
    batched_lu_solve,
    batched_solve,
)
from repro.linalg.lu import (
    LUFactorization,
    factor_flops,
    lu_factor,
    lu_solve,
    solve,
    solve_flops,
)
from repro.linalg.triangular import solve_lower, solve_lower_unit, solve_upper

__all__ = [
    "BatchedLU",
    "LUFactorization",
    "RefinementResult",
    "blocked_lu_factor",
    "blocked_solve",
    "refine_solve",
    "batched_flops",
    "batched_lu_factor",
    "batched_lu_solve",
    "batched_solve",
    "condition_estimate_1norm",
    "factor_flops",
    "frobenius_norm",
    "infinity_norm",
    "lu_factor",
    "lu_solve",
    "one_norm",
    "relative_residual",
    "solve",
    "solve_flops",
    "solve_lower",
    "solve_lower_unit",
    "solve_upper",
]
