"""Right-looking blocked LU factorization.

The paper's batched-LU performance problem (MAGMA/MKL on 200 x 200
matrices) spawned a small literature on tuning LU for small matrices
(its references [4] and [14]).  This module implements the standard
blocked right-looking algorithm those kernels are built on: factor a
panel of ``block_size`` columns with the unblocked code, apply the row
swaps, triangular-solve the block row, then rank-update the trailing
submatrix with one large matrix multiply.

On top of NumPy the matmul-rich blocked variant is also genuinely
faster than the unblocked loop for n in the paper's range, which the
kernel micro-benchmarks document.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError
from repro.linalg.lu import LUFactorization, lu_factor


def blocked_lu_factor(matrix: np.ndarray, *, block_size: int = 32,
                      overwrite: bool = False) -> LUFactorization:
    """Factor ``P A = L U`` with a blocked right-looking sweep.

    Produces exactly the same compact LU storage and pivot order as
    :func:`repro.linalg.lu.lu_factor` (the test suite checks this
    element for element).
    """
    if block_size < 1:
        raise LinalgError(f"block size must be >= 1, got {block_size}")
    a = np.array(matrix, copy=not overwrite)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {a.shape}")
    if not np.issubdtype(a.dtype, np.floating):
        a = a.astype(np.float64)
    n = a.shape[0]
    pivots = np.arange(n)
    n_swaps = 0

    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        # Factor the current panel (rows start:, columns start:stop)
        # with the unblocked kernel.
        panel = a[start:, start:stop]
        panel_factors = lu_factor_panel(panel)
        n_swaps += panel_factors["n_swaps"]
        # Apply the panel's row swaps across the entire matrix.
        order = panel_factors["order"]
        a[start:] = a[start:][order]
        pivots[start:] = pivots[start:][order]
        a[start:, start:stop] = panel_factors["lu"]
        if stop < n:
            # Block row: U_12 = L_11^{-1} A_12 (unit lower triangular).
            lower = a[start:stop, start:stop]
            block_row = a[start:stop, stop:]
            for i in range(1, stop - start):
                block_row[i] -= lower[i, :i] @ block_row[:i]
            # Trailing update: A_22 -= L_21 U_12.
            a[stop:, stop:] -= a[stop:, start:stop] @ block_row
    return LUFactorization(lu=a, pivots=pivots, n_swaps=n_swaps)


def lu_factor_panel(panel: np.ndarray) -> dict:
    """Unblocked partial-pivoting factorization of a tall panel.

    Returns the factored panel, the row order applied, and the swap
    count.  Helper for :func:`blocked_lu_factor`; operates on a copy.
    """
    rows, cols = panel.shape
    a = panel.copy()
    order = np.arange(rows)
    n_swaps = 0
    for k in range(min(rows, cols)):
        pivot = k + int(np.argmax(np.abs(a[k:, k])))
        if a[pivot, k] == 0.0:
            raise LinalgError(f"panel is singular: zero pivot in column {k}")
        if pivot != k:
            a[[k, pivot]] = a[[pivot, k]]
            order[[k, pivot]] = order[[pivot, k]]
            n_swaps += 1
        if k + 1 < rows:
            a[k + 1:, k] /= a[k, k]
            if k + 1 < cols:
                a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return {"lu": a, "order": order, "n_swaps": n_swaps}


def blocked_solve(matrix: np.ndarray, rhs: np.ndarray, *,
                  block_size: int = 32) -> np.ndarray:
    """Factor with the blocked kernel and solve in one call."""
    from repro.linalg.lu import lu_solve

    return lu_solve(blocked_lu_factor(matrix, block_size=block_size), rhs)
