"""Mixed-precision iterative refinement.

The paper evaluates every experiment in both single and double
precision because single runs ~2x faster on all its devices.  Iterative
refinement is the classical way to get the best of both: factor and
solve in single precision (fast), then refine the solution with
double-precision residuals until it reaches double-precision accuracy.
The panel matrices are well-conditioned enough that two or three
refinement sweeps typically suffice — which the tests verify on real
assembled systems.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.errors import LinalgError
from repro.linalg.lu import lu_factor, lu_solve


@dataclasses.dataclass(frozen=True)
class RefinementResult:
    """Solution plus the convergence history of the refinement."""

    solution: np.ndarray
    residual_norms: List[float]
    converged: bool

    @property
    def iterations(self) -> int:
        """Number of refinement sweeps performed."""
        return len(self.residual_norms) - 1


def refine_solve(matrix: np.ndarray, rhs: np.ndarray, *,
                 max_iterations: int = 10,
                 tolerance: float = 1e-12) -> RefinementResult:
    """Solve ``A x = b`` via single-precision LU + double refinement.

    Parameters
    ----------
    matrix, rhs:
        The system, in double precision.
    max_iterations:
        Cap on refinement sweeps.
    tolerance:
        Convergence threshold on the scaled residual
        ``||b - A x||_inf / (||A||_inf ||x||_inf)``.

    Raises :class:`LinalgError` when the single-precision factorization
    fails (e.g. a matrix too ill-conditioned for float32 pivots).
    """
    a_double = np.asarray(matrix, dtype=np.float64)
    b_double = np.asarray(rhs, dtype=np.float64)
    if a_double.ndim != 2 or a_double.shape[0] != a_double.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {a_double.shape}")
    if b_double.shape[0] != a_double.shape[0]:
        raise LinalgError("rhs length does not match the matrix dimension")

    factors = lu_factor(a_double.astype(np.float32))
    x = lu_solve(factors, b_double.astype(np.float32)).astype(np.float64)

    scale = float(np.max(np.abs(a_double).sum(axis=1)))
    if scale == 0.0:
        raise LinalgError("matrix is zero")

    def scaled_residual(solution: np.ndarray) -> float:
        residual = b_double - a_double @ solution
        denominator = scale * max(float(np.max(np.abs(solution))), 1e-300)
        return float(np.max(np.abs(residual))) / denominator

    norms = [scaled_residual(x)]
    converged = norms[-1] <= tolerance
    for _ in range(max_iterations):
        if converged:
            break
        residual = b_double - a_double @ x  # double-precision residual
        correction = lu_solve(factors, residual.astype(np.float32))
        x = x + correction.astype(np.float64)
        norms.append(scaled_residual(x))
        converged = norms[-1] <= tolerance
        if len(norms) >= 3 and norms[-1] >= norms[-2] >= norms[-3]:
            break  # stagnated: the matrix defeats float32 refinement
    return RefinementResult(solution=x, residual_norms=norms,
                            converged=converged)
