"""Forward and back substitution for triangular systems.

These kernels deliberately loop over matrix rows (vectorizing across
right-hand sides and, in the batched variants, across the batch), which
mirrors how the batched MKL/MAGMA kernels in the paper traverse memory.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinalgError


def solve_lower_unit(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` where ``L`` is unit lower triangular.

    Only the strict lower triangle of *matrix* is referenced, so the
    compact LU storage can be passed directly.
    """
    _check_shapes(matrix, rhs)
    y = np.array(rhs, copy=True)
    n = matrix.shape[0]
    for i in range(1, n):
        y[i] -= matrix[i, :i] @ y[:i]
    return y


def solve_upper(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` where ``U`` is upper triangular.

    Only the upper triangle (including the diagonal) is referenced.
    Raises :class:`LinalgError` on a zero diagonal entry.
    """
    _check_shapes(matrix, rhs)
    diagonal = np.diagonal(matrix)
    if np.any(diagonal == 0.0):
        raise LinalgError("upper-triangular matrix has a zero diagonal entry")
    x = np.array(rhs, copy=True)
    n = matrix.shape[0]
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= matrix[i, i + 1:] @ x[i + 1:]
        x[i] /= diagonal[i]
    return x


def solve_lower(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` for a general (non-unit) lower triangle."""
    _check_shapes(matrix, rhs)
    diagonal = np.diagonal(matrix)
    if np.any(diagonal == 0.0):
        raise LinalgError("lower-triangular matrix has a zero diagonal entry")
    y = np.array(rhs, copy=True)
    n = matrix.shape[0]
    for i in range(n):
        if i:
            y[i] -= matrix[i, :i] @ y[:i]
        y[i] /= diagonal[i]
    return y


def _check_shapes(matrix: np.ndarray, rhs: np.ndarray) -> None:
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {matrix.shape}")
    if rhs.shape[0] != matrix.shape[0]:
        raise LinalgError(
            f"rhs has {rhs.shape[0]} rows but the matrix dimension is {matrix.shape[0]}"
        )
