"""LU factorization with partial pivoting, written from scratch.

The paper's linear solves are ``dgetrf``/``dgetrs`` calls on batches of
small dense matrices (MKL on the CPU and Xeon Phi, MAGMA on the GPU).
This module provides the single-matrix reference implementation; the
batched variants live in :mod:`repro.linalg.batched`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import LinalgError


@dataclasses.dataclass(frozen=True)
class LUFactorization:
    """Compact LU factorization ``P A = L U``.

    Attributes
    ----------
    lu:
        ``(n, n)`` array holding ``U`` on and above the diagonal and the
        strict lower triangle of ``L`` below it (unit diagonal implied).
    pivots:
        Row permutation as an index array: row ``i`` of the permuted
        matrix was row ``pivots[i]`` of the original.
    n_swaps:
        Number of row interchanges performed (parity of the permutation).
    """

    lu: np.ndarray
    pivots: np.ndarray
    n_swaps: int

    @property
    def n(self) -> int:
        """Dimension of the factored matrix."""
        return self.lu.shape[0]

    def lower(self) -> np.ndarray:
        """The unit lower-triangular factor ``L`` as a dense matrix."""
        lower = np.tril(self.lu, -1)
        np.fill_diagonal(lower, 1.0)
        return lower

    def upper(self) -> np.ndarray:
        """The upper-triangular factor ``U`` as a dense matrix."""
        return np.triu(self.lu)

    def permutation_matrix(self) -> np.ndarray:
        """The permutation ``P`` with ``P A = L U`` as a dense matrix."""
        n = self.n
        perm = np.zeros((n, n), dtype=self.lu.dtype)
        perm[np.arange(n), self.pivots] = 1.0
        return perm

    def determinant(self) -> float:
        """Determinant of the original matrix."""
        sign = -1.0 if self.n_swaps % 2 else 1.0
        return float(sign * np.prod(np.diagonal(self.lu)))


def lu_factor(matrix: np.ndarray, *, overwrite: bool = False) -> LUFactorization:
    """Factor a square matrix as ``P A = L U`` with partial pivoting.

    Raises :class:`LinalgError` when a pivot is exactly zero (the matrix
    is singular to working precision).
    """
    a = np.array(matrix, copy=not overwrite)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {a.shape}")
    if not np.issubdtype(a.dtype, np.floating):
        a = a.astype(np.float64)
    n = a.shape[0]
    pivots = np.arange(n)
    n_swaps = 0
    for k in range(n):
        pivot_offset = int(np.argmax(np.abs(a[k:, k])))
        pivot_row = k + pivot_offset
        if a[pivot_row, k] == 0.0:
            raise LinalgError(f"matrix is singular: zero pivot in column {k}")
        if pivot_row != k:
            a[[k, pivot_row]] = a[[pivot_row, k]]
            pivots[[k, pivot_row]] = pivots[[pivot_row, k]]
            n_swaps += 1
        if k + 1 < n:
            a[k + 1:, k] /= a[k, k]
            a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return LUFactorization(lu=a, pivots=pivots, n_swaps=n_swaps)


def lu_solve(factorization: LUFactorization, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the factorization of ``A``.

    ``rhs`` may be a vector or a matrix of stacked right-hand-side
    columns; the result has the same shape.
    """
    from repro.linalg.triangular import solve_lower_unit, solve_upper

    lu = factorization.lu
    b = np.asarray(rhs, dtype=lu.dtype)
    vector_input = b.ndim == 1
    if vector_input:
        b = b[:, None]
    if b.shape[0] != factorization.n:
        raise LinalgError(
            f"rhs has {b.shape[0]} rows but the matrix dimension is {factorization.n}"
        )
    permuted = b[factorization.pivots]
    y = solve_lower_unit(lu, permuted)
    x = solve_upper(lu, y)
    return x[:, 0] if vector_input else x


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Convenience wrapper: factor then solve in one call."""
    return lu_solve(lu_factor(matrix), rhs)


def factor_flops(n: int) -> int:
    """Floating-point operations of an ``n x n`` LU factorization.

    The classical count ``2/3 n^3 - n^2/2 - n/6 + n^2`` reduces to the
    leading-order expression the paper quotes, ``(2/3) n^3``.
    """
    return (2 * n**3) // 3


def solve_flops(n: int, n_rhs: int = 1) -> int:
    """Floating-point operations of the two triangular solves."""
    return 2 * n * n * n_rhs
