"""Batched LU factorization and solve over stacks of small matrices.

The paper's workload is thousands of independent ~200 x 200 systems —
exactly the regime where batched kernels (MKL's and MAGMA's batched
``getrf``) matter.  The implementation here vectorizes across the batch
dimension: every elimination step updates all matrices in the stack at
once, so the Python-level loop count is O(n), not O(batch * n).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import LinalgError
from repro.linalg.lu import factor_flops, solve_flops


@dataclasses.dataclass(frozen=True)
class BatchedLU:
    """Compact LU factors of a stack of matrices, ``P_b A_b = L_b U_b``.

    Attributes
    ----------
    lu:
        ``(batch, n, n)`` compact LU storage per matrix.
    pivots:
        ``(batch, n)`` row permutations (same convention as
        :class:`~repro.linalg.lu.LUFactorization`).
    """

    lu: np.ndarray
    pivots: np.ndarray

    @property
    def batch(self) -> int:
        """Number of matrices in the stack."""
        return self.lu.shape[0]

    @property
    def n(self) -> int:
        """Dimension of each matrix."""
        return self.lu.shape[1]


def batched_lu_factor(matrices: np.ndarray, *, overwrite: bool = False) -> BatchedLU:
    """Factor every matrix in a ``(batch, n, n)`` stack.

    Floating stacks are factored in their own dtype (float32 stays
    float32); non-floating stacks (integers, the convenient spelling in
    tests and scripts) are promoted to float64 — the one documented
    implicit conversion on this path.

    Raises :class:`LinalgError` naming the first singular matrix when a
    zero pivot is met.
    """
    a = np.array(matrices, copy=not overwrite)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise LinalgError(f"expected a (batch, n, n) stack, got shape {a.shape}")
    if not np.issubdtype(a.dtype, np.floating):
        a = a.astype(np.float64)  # documented int -> float64 promotion
    batch, n, _ = a.shape
    pivots = np.tile(np.arange(n), (batch, 1))
    rows = np.arange(batch)
    for k in range(n):
        pivot_rows = k + np.argmax(np.abs(a[:, k:, k]), axis=1)
        bad = a[rows, pivot_rows, k] == 0.0
        if np.any(bad):
            index = int(np.nonzero(bad)[0][0])
            raise LinalgError(
                f"matrix {index} in the batch is singular: zero pivot in column {k}"
            )
        needs_swap = pivot_rows != k
        if np.any(needs_swap):
            swap = rows[needs_swap]
            target = pivot_rows[needs_swap]
            a[swap, k], a[swap, target] = a[swap, target].copy(), a[swap, k].copy()
            pivots[swap, k], pivots[swap, target] = (
                pivots[swap, target].copy(),
                pivots[swap, k].copy(),
            )
        if k + 1 < n:
            a[:, k + 1:, k] /= a[:, k, k][:, None]
            a[:, k + 1:, k + 1:] -= (
                a[:, k + 1:, k][:, :, None] * a[:, k, k + 1:][:, None, :]
            )
    return BatchedLU(lu=a, pivots=pivots)


def batched_lu_solve(factors: BatchedLU, rhs: np.ndarray) -> np.ndarray:
    """Solve every system in the batch for its right-hand side.

    ``rhs`` has shape ``(batch, n)`` for one right-hand side per matrix
    or ``(batch, n, k)`` for several; the result matches.

    The right-hand side must share the factors' float dtype: silently
    casting a float64 RHS against float32 factors (or the reverse)
    would absorb exactly the precision mismatch the dtype-grouped
    assembly path is designed to surface, so mixed float dtypes raise
    :class:`LinalgError` instead.  Non-floating (integer) right-hand
    sides are promoted to the factors' dtype — the same documented
    convenience as :func:`batched_lu_factor`'s int promotion.
    """
    lu = factors.lu
    b = np.asarray(rhs)
    if np.issubdtype(b.dtype, np.floating):
        if b.dtype != lu.dtype:
            raise LinalgError(
                f"rhs dtype {b.dtype} does not match LU dtype {lu.dtype}; "
                f"mixed-precision solves hide precision bugs — cast "
                f"explicitly if the widening is intended"
            )
    else:
        b = b.astype(lu.dtype)  # documented int promotion
    vector_input = b.ndim == 2
    if vector_input:
        b = b[:, :, None]
    if b.shape[:2] != (factors.batch, factors.n):
        raise LinalgError(
            f"rhs shape {rhs.shape} does not match batch {factors.batch} x n {factors.n}"
        )
    batch_index = np.arange(factors.batch)[:, None]
    x = b[batch_index, factors.pivots].copy()
    n = factors.n
    for i in range(1, n):  # forward substitution, unit lower triangle
        x[:, i] -= np.einsum("bj,bjk->bk", lu[:, i, :i], x[:, :i])
    for i in range(n - 1, -1, -1):  # back substitution
        if i + 1 < n:
            x[:, i] -= np.einsum("bj,bjk->bk", lu[:, i, i + 1:], x[:, i + 1:])
        x[:, i] /= lu[:, i, i][:, None]
    return x[:, :, 0] if vector_input else x


def batched_solve(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Factor and solve a whole stack in one call."""
    return batched_lu_solve(batched_lu_factor(matrices), rhs)


def batched_flops(batch: int, n: int, n_rhs: int = 1) -> int:
    """Total flops for factoring and solving a batch (paper's 2/3 n^3)."""
    return batch * (factor_flops(n) + solve_flops(n, n_rhs))
