"""repro: two-dimensional panel codes with simulated hybrid acceleration.

A full reproduction of Einkemmer, "Evaluation of the Intel Xeon Phi and
NVIDIA K80 as accelerators for two-dimensional panel codes": a vortex
panel method with viscous correction and genetic shape optimization,
plus calibrated device models and a discrete-event pipeline simulator
that regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import analyze, simulate_hybrid

    print(analyze("2412", alpha_degrees=4.0).summary())
    experiment = simulate_hybrid(accelerator="k80-half", sockets=2)
    print(f"speedup: {experiment.speedup:.2f}x")

Subpackages
-----------
``repro.geometry``
    Airfoils, NACA generators, B-splines.
``repro.linalg``
    From-scratch (batched) LU factorization.
``repro.panel``
    The vortex panel method (the paper's inner solver).
``repro.viscous``
    Thwaites/Michel/Head boundary layers and Squire–Young drag.
``repro.optimize``
    The genetic airfoil optimizer.
``repro.hardware``
    Calibrated device models (Tables 1-2).
``repro.pipeline``
    The hybrid interleaving schedules and event simulator (Figures 3-4,
    Tables 3-5).
``repro.experiments``
    One-call regeneration of every table and figure.
``repro.validation``
    Analytic references (cylinder, Joukowski, thin-airfoil theory).
"""

from repro.core.api import (
    AirfoilAnalysis,
    HybridExperiment,
    analyze,
    optimize,
    simulate_hybrid,
)
from repro.errors import ReproError
from repro.precision import Precision

__version__ = "1.0.0"

__all__ = [
    "AirfoilAnalysis",
    "HybridExperiment",
    "Precision",
    "ReproError",
    "__version__",
    "analyze",
    "optimize",
    "simulate_hybrid",
]
