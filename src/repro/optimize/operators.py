"""Genetic operators: tournament selection, one-point crossover,
single-coefficient mutation.

These are exactly the operators the paper describes for its validation
run: "tournament selection with one-point crossover is employed and the
mutations are performed for a single B-spline coefficient at a time."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.genome import GenomeLayout


def tournament_select(rng: np.random.Generator, fitnesses: Sequence[float], *,
                      tournament_size: int = 3) -> int:
    """Pick one individual by tournament: best of a random subset.

    Returns the index of the winner.  ``fitnesses`` may contain
    ``-inf`` for infeasible individuals; they can still be drawn but
    lose every comparison.
    """
    n = len(fitnesses)
    if n == 0:
        raise OptimizationError("cannot select from an empty population")
    if tournament_size < 1:
        raise OptimizationError(f"tournament size must be >= 1, got {tournament_size}")
    contenders = rng.choice(n, size=min(tournament_size, n), replace=False)
    fitness_array = np.asarray(fitnesses, dtype=np.float64)
    return int(contenders[np.argmax(fitness_array[contenders])])


def one_point_crossover(rng: np.random.Generator, parent_a: np.ndarray,
                        parent_b: np.ndarray) -> tuple:
    """Classic one-point crossover.

    A cut point is drawn strictly inside the genome; the children swap
    tails.  Returns ``(child_a, child_b)``.
    """
    parent_a = np.asarray(parent_a, dtype=np.float64)
    parent_b = np.asarray(parent_b, dtype=np.float64)
    if parent_a.shape != parent_b.shape:
        raise OptimizationError(
            f"parents differ in shape: {parent_a.shape} vs {parent_b.shape}"
        )
    n = len(parent_a)
    if n < 2:
        raise OptimizationError("genomes must have at least 2 genes to cross over")
    cut = int(rng.integers(1, n))
    child_a = np.concatenate([parent_a[:cut], parent_b[cut:]])
    child_b = np.concatenate([parent_b[:cut], parent_a[cut:]])
    return child_a, child_b


def mutate_single_coefficient(rng: np.random.Generator, genome: np.ndarray,
                              layout: GenomeLayout, *,
                              scale: float = 0.02) -> np.ndarray:
    """Perturb exactly one randomly chosen coefficient.

    The perturbation is Gaussian with standard deviation *scale*; the
    result is clipped into the layout bounds.  The input genome is not
    modified.
    """
    if scale <= 0.0:
        raise OptimizationError(f"mutation scale must be positive, got {scale}")
    genome = np.array(genome, dtype=np.float64, copy=True)
    if len(genome) != layout.n_genes:
        raise OptimizationError(
            f"genome has {len(genome)} genes, layout expects {layout.n_genes}"
        )
    gene = int(rng.integers(0, len(genome)))
    genome[gene] += rng.normal(0.0, scale)
    return layout.clip(genome)
