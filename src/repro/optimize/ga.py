"""The genetic optimizer driving the panel-method inner solver.

Implements the algorithm the paper validates its code with: a
generational GA using tournament selection, one-point crossover, and
single-coefficient mutation over B-spline airfoil parametrizations,
maximizing lift-to-drag at zero angle of attack.

This optimizer also *defines the workload* of the hardware experiments:
``candidate solutions = population size x generations`` panel systems
must be assembled and solved — 4000 of them in the paper's Table 2
setup.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.fitness import EvaluationRecord, FitnessEvaluator
from repro.optimize.genome import GenomeLayout
from repro.optimize.history import (
    GenerationRecord,
    OptimizationHistory,
    ranking_order,
)
from repro.optimize.operators import (
    mutate_single_coefficient,
    one_point_crossover,
)


@dataclasses.dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the genetic algorithm.

    The defaults are scaled-down relative to the paper (population 1000
    in Figure 2; 400 x 10 generations for the timing workload) so the
    examples run quickly; the experiment harness overrides them.
    """

    population_size: int = 60
    generations: int = 8
    tournament_size: int = 3
    crossover_probability: float = 0.9
    mutation_probability: float = 0.6
    mutation_scale: float = 0.015
    elitism: int = 2
    keep_best: int = 3  # individuals recorded per generation
    #: Parent-selection strategy; the paper uses tournament selection,
    #: the alternatives enable the operator ablation
    #: (see :mod:`repro.optimize.selection`).
    selection: str = "tournament"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError("population must hold at least 2 individuals")
        if self.population_size % 2:
            raise OptimizationError("population size must be even (pairwise crossover)")
        if self.generations < 1:
            raise OptimizationError("need at least one generation")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise OptimizationError("crossover probability must be in [0, 1]")
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise OptimizationError("mutation probability must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise OptimizationError("elitism must be < population size")
        if self.keep_best < 1:
            raise OptimizationError(
                "keep_best must be >= 1 (GenerationRecord.champion needs "
                "at least one recorded individual)"
            )
        if self.tournament_size < 1:
            raise OptimizationError("tournament size must be >= 1")
        from repro.optimize.selection import SelectionMethod

        try:
            SelectionMethod(self.selection)
        except ValueError:
            names = ", ".join(member.value for member in SelectionMethod)
            raise OptimizationError(
                f"unknown selection {self.selection!r}; choose from {names}"
            )

    @property
    def selection_method(self):
        """The configured :class:`~repro.optimize.selection.SelectionMethod`."""
        from repro.optimize.selection import SelectionMethod

        return SelectionMethod(self.selection)

    @property
    def total_evaluations(self) -> int:
        """Candidate count — the hardware workload's batch size."""
        return self.population_size * self.generations


@dataclasses.dataclass
class GeneticOptimizer:
    """Generational GA over B-spline airfoil genomes.

    Parameters
    ----------
    evaluator:
        The fitness function (carries the genome layout).
    config:
        GA hyper-parameters.
    on_generation:
        Optional callback invoked with each :class:`GenerationRecord`
        as it completes (used for progress reporting).
    evaluate_all:
        Optional replacement for the serial per-genome evaluation loop.
        Called with the population (list of genomes) and must return one
        :class:`EvaluationRecord` per genome, in order — this is the seam
        the jobs subsystem uses to route whole generations through the
        batched solver path (see :mod:`repro.jobs.evaluator`).
    """

    evaluator: FitnessEvaluator
    config: GAConfig = dataclasses.field(default_factory=GAConfig)
    on_generation: Optional[Callable[[GenerationRecord], None]] = None
    evaluate_all: Optional[Callable[[list], List[EvaluationRecord]]] = None

    @property
    def layout(self) -> GenomeLayout:
        """The genome layout used for sampling and mutation."""
        return self.evaluator.layout

    def run(self, rng: np.random.Generator = None) -> OptimizationHistory:
        """Run the full optimization and return its history."""
        rng = rng or np.random.default_rng()
        population = [
            self.layout.random_genome(rng)
            for _ in range(self.config.population_size)
        ]
        history = OptimizationHistory()
        records = self._evaluate_all(population)
        for generation in range(self.config.generations):
            summary = history.record(
                generation, population, records, keep_best=self.config.keep_best
            )
            if self.on_generation is not None:
                self.on_generation(summary)
            if generation == self.config.generations - 1:
                break
            population = self._next_generation(rng, population, records)
            records = self._evaluate_all(population)
        return history

    def run_from(self, population, rng: np.random.Generator = None, *,
                 history: OptimizationHistory = None,
                 generation_offset: int = 0) -> List[np.ndarray]:
        """Evolve an *existing* population for ``config.generations``.

        Unlike :meth:`run`, every recorded generation is also evolved
        (the returned list is the population *after* the last step), so
        successive calls chain cleanly — this is what the island model
        uses between migration events.  Records are appended to
        *history* (if given) with indices starting at
        ``generation_offset``.
        """
        rng = rng or np.random.default_rng()
        history = history if history is not None else OptimizationHistory()
        population = [np.array(genome, copy=True) for genome in population]
        if len(population) != self.config.population_size:
            raise OptimizationError(
                f"population has {len(population)} individuals, config "
                f"expects {self.config.population_size}"
            )
        for generation in range(self.config.generations):
            records = self._evaluate_all(population)
            summary = history.record(
                generation_offset + generation, population, records,
                keep_best=self.config.keep_best,
            )
            if self.on_generation is not None:
                self.on_generation(summary)
            population = self._next_generation(rng, population, records)
        return population

    def _evaluate_all(self, population) -> List[EvaluationRecord]:
        if self.evaluate_all is not None:
            records = list(self.evaluate_all(population))
            if len(records) != len(population):
                raise OptimizationError(
                    f"evaluate_all returned {len(records)} records for "
                    f"{len(population)} genomes"
                )
            return records
        return [self.evaluator.evaluate(genome) for genome in population]

    def _next_generation(self, rng, population, records) -> List[np.ndarray]:
        fitnesses = [record.fitness for record in records]
        order = ranking_order(fitnesses)
        select = self.config.selection_method.selector(
            tournament_size=self.config.tournament_size
        )
        next_population: List[np.ndarray] = [
            population[i].copy() for i in order[: self.config.elitism]
        ]
        while len(next_population) < self.config.population_size:
            index_a = select(rng, fitnesses)
            index_b = select(rng, fitnesses)
            parent_a, parent_b = population[index_a], population[index_b]
            if rng.random() < self.config.crossover_probability:
                child_a, child_b = one_point_crossover(rng, parent_a, parent_b)
            else:
                child_a, child_b = parent_a.copy(), parent_b.copy()
            for child in (child_a, child_b):
                if len(next_population) >= self.config.population_size:
                    break
                if rng.random() < self.config.mutation_probability:
                    child = mutate_single_coefficient(
                        rng, child, self.layout, scale=self.config.mutation_scale
                    )
                next_population.append(child)
        return next_population
