"""Timing model of a whole genetic-algorithm run on each platform.

The pipeline experiments time one flat batch of candidate solves, but a
real GA run (the paper's actual application) is a *sequence* of
generations with a synchronization point between them: selection and
crossover need the previous generation's fitnesses before the next
batch of panel systems exists.  This module composes per-generation
hybrid pipelines into a full optimization timeline, including the
(host-side) genetic-operator time between generations, and reports the
end-to-end speedup an accelerator buys the optimizer.

This is the bridge between the two halves of the library: the GA
defines the workload stream; the hardware models price it.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.errors import ScheduleError
from repro.hardware.host import Workstation, paper_workstation
from repro.pipeline.engine import simulate
from repro.pipeline.metrics import evaluate
from repro.pipeline.schedules import cpu_only, dual_accelerator, hybrid
from repro.pipeline.workload import Workload
from repro.precision import Precision, PrecisionLike

#: Host time for selection/crossover/mutation per candidate (seconds).
#: Genetic operators are a few hundred flops per genome - negligible
#: next to a 200x200 assembly but not exactly zero.
GENETIC_OPERATOR_SECONDS_PER_CANDIDATE = 2e-6


@dataclasses.dataclass(frozen=True)
class GATimingResult:
    """Simulated wall time of one full GA run on one configuration."""

    configuration: str
    generations: int
    population: int
    per_generation_seconds: List[float]
    operator_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end optimization time."""
        return sum(self.per_generation_seconds) + self.operator_seconds


def time_ga_run(*, population: int = 400, generations: int = 10, n: int = 200,
                precision: PrecisionLike = Precision.DOUBLE,
                sockets: int = 2, accelerator: str = "none",
                n_slices: int = 10,
                distribution: float = 0.75) -> GATimingResult:
    """Price a GA run: one pipeline per generation plus operator time.

    The per-generation batch equals the population size, so slices
    cannot exceed it; the paper's reference workload corresponds to
    ``population=400, generations=10``.
    """
    if population < 1 or generations < 1:
        raise ScheduleError("population and generations must be positive")
    precision = Precision.parse(precision)
    workload = Workload(batch=population, n=n, precision=precision,
                        generations=1)
    workstation = paper_workstation(sockets=sockets, accelerator=accelerator,
                                    precision=precision)
    per_generation = [
        _generation_seconds(workload, workstation, accelerator,
                            min(n_slices, population), distribution)
        for _ in range(generations)
    ]
    operator_time = (
        GENETIC_OPERATOR_SECONDS_PER_CANDIDATE * population * generations
    )
    return GATimingResult(
        configuration=workstation.describe(),
        generations=generations,
        population=population,
        per_generation_seconds=per_generation,
        operator_seconds=operator_time,
    )


def _generation_seconds(workload: Workload, workstation: Workstation,
                        accelerator: str, n_slices: int,
                        distribution: float) -> float:
    if accelerator == "none":
        schedule = cpu_only(workload, workstation.cpu)
    elif len(workstation.accelerators) >= 2:
        schedule = dual_accelerator(workload, workstation, distribution,
                                    n_slices)
    else:
        schedule = hybrid(workload, workstation, n_slices)
    return evaluate(simulate(schedule)).wall_time


def ga_speedup(accelerator: str, *, population: int = 400,
               generations: int = 10, sockets: int = 2,
               precision: PrecisionLike = Precision.DOUBLE,
               n_slices: int = 10) -> float:
    """End-to-end GA speedup of adding *accelerator* to the workstation."""
    baseline = time_ga_run(population=population, generations=generations,
                           sockets=sockets, precision=precision,
                           accelerator="none")
    accelerated = time_ga_run(population=population, generations=generations,
                              sockets=sockets, precision=precision,
                              accelerator=accelerator, n_slices=n_slices)
    return baseline.total_seconds / accelerated.total_seconds
