"""Genome representation for the airfoil genetic algorithm.

Following the paper, candidate airfoils are parametrized by B-spline
coefficients; a genome is simply the flat coefficient vector (upper
surface heights followed by lower surface heights) plus bounds used for
sampling and mutation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import OptimizationError
from repro.geometry.bspline import BSplineAirfoil


@dataclasses.dataclass(frozen=True)
class GenomeBounds:
    """Per-coefficient sampling/mutation bounds.

    Upper-surface heights live in ``[upper_low, upper_high]`` and
    lower-surface heights in ``[lower_low, lower_high]``; the defaults
    describe conventional subsonic sections (upper surface above the
    chord line, lower surface mildly below).
    """

    upper_low: float = 0.01
    upper_high: float = 0.18
    lower_low: float = -0.12
    lower_high: float = 0.04

    def __post_init__(self) -> None:
        if self.upper_low >= self.upper_high:
            raise OptimizationError("upper bounds are empty")
        if self.lower_low >= self.lower_high:
            raise OptimizationError("lower bounds are empty")

    def low_vector(self, n_upper: int, n_lower: int) -> np.ndarray:
        """Lower bound per coefficient for a genome layout."""
        return np.concatenate([
            np.full(n_upper, self.upper_low),
            np.full(n_lower, self.lower_low),
        ])

    def high_vector(self, n_upper: int, n_lower: int) -> np.ndarray:
        """Upper bound per coefficient for a genome layout."""
        return np.concatenate([
            np.full(n_upper, self.upper_high),
            np.full(n_lower, self.lower_high),
        ])


@dataclasses.dataclass(frozen=True)
class GenomeLayout:
    """Shape of the genome: coefficient counts and bounds."""

    n_upper: int = 6
    n_lower: int = 6
    bounds: GenomeBounds = dataclasses.field(default_factory=GenomeBounds)
    degree: int = 3

    def __post_init__(self) -> None:
        if self.n_upper < self.degree or self.n_lower < self.degree:
            raise OptimizationError(
                f"each surface needs at least {self.degree} coefficients"
            )

    @property
    def n_genes(self) -> int:
        """Total number of coefficients in a genome."""
        return self.n_upper + self.n_lower

    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        """Sample a genome uniformly inside the bounds."""
        low = self.bounds.low_vector(self.n_upper, self.n_lower)
        high = self.bounds.high_vector(self.n_upper, self.n_lower)
        return rng.uniform(low, high)

    def clip(self, genome: np.ndarray) -> np.ndarray:
        """Clamp a genome into the bounds."""
        low = self.bounds.low_vector(self.n_upper, self.n_lower)
        high = self.bounds.high_vector(self.n_upper, self.n_lower)
        return np.clip(genome, low, high)

    def to_parametrization(self, genome: np.ndarray,
                           name: str = "candidate") -> BSplineAirfoil:
        """Interpret a genome as a B-spline airfoil parametrization."""
        genome = np.asarray(genome, dtype=np.float64).ravel()
        if len(genome) != self.n_genes:
            raise OptimizationError(
                f"genome has {len(genome)} genes, layout expects {self.n_genes}"
            )
        return BSplineAirfoil.from_coefficients(
            genome, self.n_upper, degree=self.degree, name=name
        )
