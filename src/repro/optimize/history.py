"""Recording of genetic-algorithm progress across generations.

The paper's Figure 2 shows the best airfoils of each generation; the
history captured here is what regenerates that figure.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

import numpy as np


def ranking_order(fitnesses) -> np.ndarray:
    """Indices sorting *fitnesses* best-first, ties in input order.

    NaN counts as ``-inf`` (worst).  Reversing a stable ascending
    argsort would emit equal-fitness individuals in *reversed* index
    order, which breaks checkpoint/resume determinism — negate and
    sort ascending with a stable kind instead.
    """
    values = np.asarray(fitnesses, dtype=np.float64)
    values = np.where(np.isnan(values), -np.inf, values)
    return np.argsort(-values, kind="stable")


@dataclasses.dataclass(frozen=True)
class Individual:
    """A genome together with its evaluation."""

    genome: np.ndarray
    fitness: float
    cl: float = math.nan
    cd: float = math.nan

    def __post_init__(self) -> None:
        genome = np.asarray(self.genome, dtype=np.float64).copy()
        genome.setflags(write=False)
        object.__setattr__(self, "genome", genome)


@dataclasses.dataclass(frozen=True)
class GenerationRecord:
    """Summary of one generation."""

    index: int
    best: List[Individual]  # the top individuals, best first
    best_fitness: float
    mean_fitness: float  # over feasible individuals only
    feasible_fraction: float

    @property
    def champion(self) -> Individual:
        """The single best individual of the generation."""
        return self.best[0]


@dataclasses.dataclass
class OptimizationHistory:
    """Mutable collector filled in by the optimizer as it runs."""

    generations: List[GenerationRecord] = dataclasses.field(default_factory=list)

    def record(self, index: int, genomes, records, *, keep_best: int = 3) -> GenerationRecord:
        """Summarize a generation from its genomes and evaluation records."""
        fitnesses = np.array([record.fitness for record in records])
        finite = np.isfinite(fitnesses)
        order = ranking_order(fitnesses)
        best = [
            Individual(
                genome=genomes[i],
                fitness=float(fitnesses[i]),
                cl=records[i].cl if records[i].cl is not None else math.nan,
                cd=records[i].cd if records[i].cd is not None else math.nan,
            )
            for i in order[:keep_best]
        ]
        feasible = fitnesses[finite]
        record = GenerationRecord(
            index=index,
            best=best,
            best_fitness=float(feasible.max()) if len(feasible) else -math.inf,
            mean_fitness=float(feasible.mean()) if len(feasible) else -math.inf,
            feasible_fraction=float(np.mean(finite)),
        )
        self.generations.append(record)
        return record

    @property
    def champion(self) -> Individual:
        """The best individual seen across all generations."""
        if not self.generations:
            raise ValueError("history is empty")
        return max(
            (generation.champion for generation in self.generations),
            key=lambda individual: individual.fitness,
        )

    def best_fitness_trace(self) -> np.ndarray:
        """Best fitness per generation (should be non-decreasing with elitism)."""
        return np.array([generation.best_fitness for generation in self.generations])
