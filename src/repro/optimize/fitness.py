"""Fitness evaluation: lift-to-drag ratio at zero angle of attack.

The paper's fitness function "is proportional to the lift-to-drag ratio
at zero angle of attack".  Each evaluation is one full inner-solver
pass: discretize the B-spline candidate, assemble and solve the panel
system, run the viscous correction, and read off ``cl / cd``.
Infeasible or failed candidates receive ``-inf``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.errors import GeometryError, LinalgError, ViscousError
from repro.optimize.genome import GenomeLayout
from repro.panel.freestream import Freestream
from repro.panel.solver import PanelSolver
from repro.viscous.drag import analyze_viscous

#: Fitness assigned to candidates that cannot be evaluated.
INFEASIBLE_FITNESS = -math.inf


@dataclasses.dataclass(frozen=True)
class EvaluationRecord:
    """Everything learned about one candidate."""

    fitness: float
    cl: Optional[float] = None
    cd: Optional[float] = None
    failure: Optional[str] = None

    @property
    def feasible(self) -> bool:
        """True when the candidate produced a finite fitness."""
        return math.isfinite(self.fitness)


@dataclasses.dataclass(frozen=True)
class FitnessEvaluator:
    """Configured lift-to-drag evaluator.

    Parameters
    ----------
    layout:
        Genome interpretation (coefficient counts, bounds, degree).
    n_panels:
        Discretization of each candidate (the paper uses 200).
    reynolds:
        Chord Reynolds number of the viscous correction.
    alpha_degrees:
        Angle of attack of the evaluation (the paper uses zero).
    min_thickness:
        Feasibility floor on the candidate's interior thickness.
    use_head:
        Continue the boundary layer turbulently past transition.
    """

    layout: GenomeLayout
    n_panels: int = 200
    reynolds: float = 5e5
    alpha_degrees: float = 0.0
    min_thickness: float = 0.01
    use_head: bool = True
    solver: PanelSolver = dataclasses.field(default_factory=PanelSolver)

    def build_airfoil(self, genome: np.ndarray):
        """Discretize one genome, or return the failed record instead.

        Returns ``(airfoil, None)`` for a feasible candidate and
        ``(None, record)`` when the genome fails before the solve.  The
        split lets the jobs subsystem collect a generation's airfoils
        into one stacked batch while keeping the exact pre-solve
        semantics of :meth:`evaluate`.
        """
        parametrization = self.layout.to_parametrization(genome)
        if not parametrization.is_feasible(min_thickness=self.min_thickness):
            return None, EvaluationRecord(
                INFEASIBLE_FITNESS, failure="thin or crossed section"
            )
        try:
            return parametrization.to_airfoil(self.n_panels), None
        except GeometryError as error:
            return None, EvaluationRecord(
                INFEASIBLE_FITNESS, failure=f"geometry: {error}"
            )

    def classify_solution(self, solution) -> EvaluationRecord:
        """Turn one solved panel system into its evaluation record.

        Shared between the serial path and the batched generation
        evaluator so both classify identically (bit-for-bit).
        """
        cl = solution.lift_coefficient
        if cl <= 0.0:
            # Negative lift at the design point: valid geometry, hopeless
            # candidate.  Rank it below every lifting candidate but above
            # the infeasible ones.
            return EvaluationRecord(cl, cl=cl, failure="non-positive lift")
        try:
            viscous = analyze_viscous(solution, self.reynolds, use_head=self.use_head)
            cd = viscous.drag_coefficient
        except ViscousError as error:
            return EvaluationRecord(INFEASIBLE_FITNESS, cl=cl,
                                    failure=f"boundary layer: {error}")
        if cd <= 0.0:
            return EvaluationRecord(INFEASIBLE_FITNESS, cl=cl, cd=cd,
                                    failure="non-positive drag")
        return EvaluationRecord(cl / cd, cl=cl, cd=cd)

    def evaluate(self, genome: np.ndarray) -> EvaluationRecord:
        """Score one genome, returning the full record.

        The solve runs through :meth:`PanelSolver.solve_batch` as a
        stack of one: the batched LU kernels are elementwise across the
        stack, so this produces the same bits as a genome evaluated in
        the middle of a full-generation batch — the invariant the jobs
        subsystem's batched evaluator relies on.
        """
        airfoil, failed = self.build_airfoil(genome)
        if failed is not None:
            return failed
        freestream = Freestream.from_degrees(self.alpha_degrees)
        try:
            solution = self.solver.solve_batch([airfoil], freestream)[0]
        except LinalgError as error:
            return EvaluationRecord(INFEASIBLE_FITNESS, failure=f"solve: {error}")
        return self.classify_solution(solution)

    def __call__(self, genome: np.ndarray) -> float:
        """Score one genome, returning only the fitness value."""
        return self.evaluate(genome).fitness
