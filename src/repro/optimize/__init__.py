"""Genetic optimization of airfoil geometries (the paper's outer loop)."""

from repro.optimize.acceleration import GATimingResult, ga_speedup, time_ga_run
from repro.optimize.constraints import ConstrainedEvaluator, DesignConstraints
from repro.optimize.fitness import (
    INFEASIBLE_FITNESS,
    EvaluationRecord,
    FitnessEvaluator,
)
from repro.optimize.ga import GAConfig, GeneticOptimizer
from repro.optimize.genome import GenomeBounds, GenomeLayout
from repro.optimize.islands import (
    IslandConfig,
    IslandOptimizer,
    IslandResult,
    island_epoch_schedule,
    time_island_run,
)
from repro.optimize.history import (
    GenerationRecord,
    Individual,
    OptimizationHistory,
)
from repro.optimize.selection import (
    SelectionMethod,
    measure_selection_pressure,
    rank_select,
    roulette_select,
)
from repro.optimize.operators import (
    mutate_single_coefficient,
    one_point_crossover,
    tournament_select,
)

__all__ = [
    "ConstrainedEvaluator",
    "DesignConstraints",
    "EvaluationRecord",
    "FitnessEvaluator",
    "GAConfig",
    "GATimingResult",
    "GenerationRecord",
    "ga_speedup",
    "time_ga_run",
    "GeneticOptimizer",
    "GenomeBounds",
    "GenomeLayout",
    "INFEASIBLE_FITNESS",
    "IslandConfig",
    "IslandOptimizer",
    "IslandResult",
    "island_epoch_schedule",
    "time_island_run",
    "Individual",
    "OptimizationHistory",
    "SelectionMethod",
    "measure_selection_pressure",
    "rank_select",
    "roulette_select",
    "mutate_single_coefficient",
    "one_point_crossover",
    "tournament_select",
]
