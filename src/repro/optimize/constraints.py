"""Design constraints for the genetic optimizer.

Unconstrained lift-to-drag maximization drives the GA toward thin,
highly cambered sections that no structure could carry.  This module
adds the standard engineering constraints as composable penalty terms:
minimum thickness (spar depth), maximum camber, a pitching-moment
bound (trim drag), and enclosed area (fuel volume).  A
:class:`ConstrainedEvaluator` wraps any fitness evaluator and subtracts
scaled violations, so the GA machinery is reused unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.geometry.airfoil import Airfoil
from repro.optimize.fitness import EvaluationRecord, FitnessEvaluator
from repro.panel.freestream import Freestream
from repro.panel.solver import PanelSolver


@dataclasses.dataclass(frozen=True)
class DesignConstraints:
    """Bounds a candidate section must respect.

    ``None`` disables the corresponding constraint.
    """

    min_thickness: Optional[float] = 0.08  # spar depth, chord fractions
    max_camber: Optional[float] = None  # max mean-line height
    min_area: Optional[float] = None  # enclosed cross-section area
    max_nose_down_moment: Optional[float] = None  # |cm| bound (cm >= -bound)

    def violations(self, airfoil: Airfoil, *, cm: Optional[float] = None) -> dict:
        """Per-constraint violation magnitudes (zero when satisfied)."""
        result = {}
        if self.min_thickness is not None:
            result["thickness"] = max(
                0.0, self.min_thickness - airfoil.max_thickness
            )
        if self.max_camber is not None:
            upper, lower = airfoil.surfaces()
            stations = np.linspace(0.05, 0.95, 64)
            camber_line = 0.5 * (
                np.interp(stations, upper[:, 0], upper[:, 1])
                + np.interp(stations, lower[:, 0], lower[:, 1])
            )
            result["camber"] = max(0.0, float(np.max(np.abs(camber_line)))
                                   - self.max_camber)
        if self.min_area is not None:
            result["area"] = max(0.0, self.min_area - airfoil.area)
        if self.max_nose_down_moment is not None and cm is not None:
            result["moment"] = max(0.0, -cm - self.max_nose_down_moment)
        return result

    def total_violation(self, airfoil: Airfoil, *,
                        cm: Optional[float] = None) -> float:
        """Sum of all violation magnitudes."""
        return sum(self.violations(airfoil, cm=cm).values())


@dataclasses.dataclass(frozen=True)
class ConstrainedEvaluator:
    """A fitness evaluator with penalty-based constraint handling.

    The penalty is ``weight * violation / scale`` *relative* to the raw
    fitness (multiplicative), so a 100 % violation of any constraint
    zeroes the candidate's score regardless of the L/D magnitude —
    which keeps selection pressure meaningful across generations.
    """

    base: FitnessEvaluator
    constraints: DesignConstraints = dataclasses.field(
        default_factory=DesignConstraints
    )
    penalty_scale: float = 0.02  # violation that halves the fitness

    def __post_init__(self) -> None:
        if self.penalty_scale <= 0.0:
            raise OptimizationError("penalty scale must be positive")

    def evaluate(self, genome) -> EvaluationRecord:
        """Score a genome; feasible-but-violating candidates are damped."""
        record = self.base.evaluate(genome)
        if not record.feasible or record.fitness <= 0.0:
            return record
        parametrization = self.base.layout.to_parametrization(genome)
        airfoil = parametrization.to_airfoil(self.base.n_panels)
        cm = None
        if self.constraints.max_nose_down_moment is not None:
            solution = PanelSolver().solve(
                airfoil, Freestream.from_degrees(self.base.alpha_degrees)
            )
            cm = solution.moment_coefficient()
        violation = self.constraints.total_violation(airfoil, cm=cm)
        if violation == 0.0:
            return record
        damping = 1.0 / (1.0 + violation / self.penalty_scale)
        return EvaluationRecord(
            fitness=record.fitness * damping,
            cl=record.cl,
            cd=record.cd,
            failure=f"constraint violation {violation:.4f}",
        )

    def __call__(self, genome) -> float:
        """Score a genome, returning only the (penalized) fitness."""
        return self.evaluate(genome).fitness

    @property
    def layout(self):
        """The genome layout (delegated to the base evaluator)."""
        return self.base.layout
