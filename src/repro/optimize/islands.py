"""Island-model parallel genetic algorithm.

The paper's motivation cites parallel genetic algorithms (its reference
[8] optimizes rotorcraft airfoils with one); the island model is the
classical way to parallelize a GA across devices: independent
subpopulations evolve separately and exchange their best individuals
every few generations.  Two things matter here:

* **Quality** — isolation preserves diversity; migration spreads
  winners.  The functional implementation below runs real panel-method
  fitness evaluations.
* **Hardware mapping** — islands synchronize only at migration points,
  so mapping one island per accelerator removes most of the
  per-generation barrier cost that :mod:`repro.optimize.acceleration`
  quantifies for the single-population GA.  :func:`time_island_run`
  prices exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.fitness import FitnessEvaluator
from repro.optimize.ga import GAConfig, GeneticOptimizer
from repro.optimize.history import OptimizationHistory, ranking_order


@dataclasses.dataclass(frozen=True)
class IslandConfig:
    """Topology and migration policy of the island model."""

    n_islands: int = 4
    migration_interval: int = 2  # generations between exchanges
    n_migrants: int = 2  # individuals sent per island per exchange

    def __post_init__(self) -> None:
        if self.n_islands < 2:
            raise OptimizationError("need at least 2 islands")
        if self.migration_interval < 1:
            raise OptimizationError("migration interval must be >= 1")
        if self.n_migrants < 1:
            raise OptimizationError("must migrate at least 1 individual")


@dataclasses.dataclass(frozen=True)
class IslandResult:
    """Outcome of an island run."""

    histories: List[OptimizationHistory]  # one per island
    champion_island: int

    @property
    def champion(self):
        """The best individual across all islands."""
        return self.histories[self.champion_island].champion

    def best_per_island(self) -> List[float]:
        """Champion fitness of each island."""
        return [history.champion.fitness for history in self.histories]


class IslandOptimizer:
    """Ring-topology island GA over a shared fitness evaluator."""

    def __init__(self, evaluator: FitnessEvaluator, ga_config: GAConfig,
                 island_config: IslandConfig = None) -> None:
        self.evaluator = evaluator
        self.ga_config = ga_config
        self.island_config = island_config or IslandConfig()
        if self.ga_config.elitism < self.island_config.n_migrants:
            # Migrants replace the tail of the receiving population; the
            # donor's copies survive through elitism, so require enough.
            raise OptimizationError(
                "elitism must be >= n_migrants so donated individuals "
                "persist on their home island"
            )

    def run(self, rng: Optional[np.random.Generator] = None) -> IslandResult:
        """Evolve all islands with ring migration; returns the result."""
        rng = rng or np.random.default_rng()
        config = self.ga_config
        islands = self.island_config
        epochs, remainder = divmod(config.generations,
                                   islands.migration_interval)
        populations = [
            [self.evaluator.layout.random_genome(rng)
             for _ in range(config.population_size)]
            for _ in range(islands.n_islands)
        ]
        histories = [OptimizationHistory() for _ in range(islands.n_islands)]
        generation_offset = 0

        def evolve(populations, n_generations):
            nonlocal generation_offset
            for island_index, population in enumerate(populations):
                optimizer = GeneticOptimizer(
                    evaluator=self.evaluator,
                    config=dataclasses.replace(config,
                                               generations=n_generations),
                )
                partial = optimizer.run_from(
                    population, rng, history=histories[island_index],
                    generation_offset=generation_offset,
                )
                populations[island_index] = partial
            generation_offset += n_generations

        for _ in range(epochs):
            evolve(populations, islands.migration_interval)
            populations = self._migrate(populations)
        if remainder:
            evolve(populations, remainder)

        best = [history.champion.fitness for history in histories]
        return IslandResult(
            histories=histories,
            champion_island=int(np.argmax(best)),
        )

    def _migrate(self, populations):
        """Ring migration: each island sends its best to the next.

        Migrants replace the worst individuals of the receiving island
        (measured by the last recorded generation's ordering is not
        available here, so replacement is random among non-elites —
        selection pressure does the rest).
        """
        islands = self.island_config
        k = islands.n_migrants
        champions: List[List[np.ndarray]] = []
        for island_index, population in enumerate(populations):
            fitnesses = [self.evaluator(genome) for genome in population]
            order = ranking_order(fitnesses)
            champions.append([population[i].copy() for i in order[:k]])
        migrated = []
        for island_index, population in enumerate(populations):
            donors = champions[(island_index - 1) % islands.n_islands]
            new_population = [genome.copy() for genome in population]
            # Replace the k worst with the neighbours' champions.
            fitnesses = [self.evaluator(genome) for genome in new_population]
            worst = np.argsort(fitnesses)[:k]
            for slot, donor in zip(worst, donors):
                new_population[slot] = donor.copy()
            migrated.append(new_population)
        return migrated


# ----------------------------------------------------------------------
# Hardware mapping: one island per accelerator
# ----------------------------------------------------------------------


def island_epoch_schedule(population, n_generations: int, workstation,
                          n_slices: int = 4, *, n_panels: int = 200):
    """Schedule one migration epoch: every island on its own device.

    Island ``i`` runs on accelerator ``i``; within an island,
    generation ``g+1`` can only start after generation ``g``'s last
    solve (fitness feedback), but different islands proceed
    independently — they contend only for the shared host solve pool.

    ``population`` may be one integer (equal islands) or a sequence of
    per-island sizes; sizing islands proportionally to their device's
    assembly speed keeps a heterogeneous pair in lock-step.
    """
    from repro.pipeline.schedules import _add_hybrid_chain, default_stages
    from repro.pipeline.task import Schedule
    from repro.pipeline.workload import Workload

    if not workstation.accelerators:
        raise OptimizationError("island mapping needs accelerators")
    n_devices = len(workstation.accelerators)
    if isinstance(population, int):
        sizes = [population] * n_devices
    else:
        sizes = list(population)
        if len(sizes) != n_devices:
            raise OptimizationError(
                f"{len(sizes)} island sizes for {n_devices} devices"
            )
    schedule = Schedule(
        name=(f"{n_devices} islands x {n_generations} "
              f"generations (pops {sizes})"),
        cpu_resource="cpu",
        primary_accelerator="accel0",
    )
    for island, (device, size) in enumerate(
            zip(workstation.accelerators, sizes)):
        workload = Workload(batch=size, n=n_panels,
                            precision=workstation.precision)
        chain_slices = min(n_slices, size)
        previous_end = None
        for _ in range(n_generations):
            first_task_id = len(schedule.tasks)
            _add_hybrid_chain(
                schedule, workload, device, workstation.cpu, chain_slices,
                stages=default_stages(device),
                accel_resource=f"accel{island}",
                link_resource=f"link{island}",
            )
            if previous_end is not None:
                # Fitness feedback: retroactively make this generation's
                # first assembly depend on the previous generation's
                # final solve.  Schedules are append-only, so rebuild
                # the task with the extra dependency.
                first = schedule.tasks[first_task_id]
                patched = dataclasses.replace(
                    first,
                    dependencies=first.dependencies + (previous_end,),
                )
                schedule.tasks[first_task_id] = patched
            previous_end = len(schedule.tasks) - 1  # the chain's last solve
    return schedule


def time_island_run(*, population_per_island=200,
                    generations: int = 10, accelerator: str = "k80-half+phi",
                    sockets: int = 2, precision="double",
                    n_slices: int = 4, n_panels: int = 200) -> float:
    """Simulated wall time of the device-mapped island GA.

    ``accelerator`` must name a multi-device configuration (e.g.
    ``"k80-dual"`` or ``"k80-half+phi"``); each device hosts one
    island.  ``population_per_island`` may be a sequence to size
    islands unevenly (balance a heterogeneous device pair).
    """
    from repro.hardware.host import paper_workstation
    from repro.pipeline.engine import simulate

    workstation = paper_workstation(sockets=sockets, accelerator=accelerator,
                                    precision=precision)
    schedule = island_epoch_schedule(
        population_per_island, generations, workstation, n_slices,
        n_panels=n_panels,
    )
    return simulate(schedule).makespan
