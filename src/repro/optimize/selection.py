"""Alternative selection operators for the genetic algorithm.

The paper fixes tournament selection; these classical alternatives
(roulette-wheel / fitness-proportionate, and linear rank selection)
allow an operator ablation.  All share the signature of
:func:`repro.optimize.operators.tournament_select` — take the fitness
list, return a parent index — so a :class:`SelectionMethod` can be
dropped into the GA loop unchanged.

Fitness lists may contain ``-inf`` (infeasible candidates); every
operator here assigns them zero selection probability.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.operators import tournament_select


def _feasible_mask(fitnesses: np.ndarray) -> np.ndarray:
    mask = np.isfinite(fitnesses)
    if not np.any(mask):
        raise OptimizationError("no feasible individuals to select from")
    return mask


def roulette_select(rng: np.random.Generator,
                    fitnesses: Sequence[float]) -> int:
    """Fitness-proportionate (roulette-wheel) selection.

    Fitness values are shifted so the worst feasible individual gets a
    small positive weight; infeasible individuals get zero.
    """
    values = np.asarray(fitnesses, dtype=np.float64)
    mask = _feasible_mask(values)
    feasible = values[mask]
    lowest = feasible.min()
    spread = feasible.max() - lowest
    floor = 0.05 * spread if spread > 0.0 else 1.0
    weights = np.zeros(len(values))
    weights[mask] = (feasible - lowest) + floor
    weights /= weights.sum()
    return int(rng.choice(len(values), p=weights))


def rank_select(rng: np.random.Generator, fitnesses: Sequence[float], *,
                pressure: float = 1.8) -> int:
    """Linear rank selection.

    The best feasible individual receives weight ``pressure``, the
    worst ``2 - pressure`` (with ``1 < pressure <= 2``), linearly in
    between — immune to fitness scaling, unlike the roulette wheel.
    """
    if not 1.0 < pressure <= 2.0:
        raise OptimizationError(f"rank pressure must be in (1, 2], got {pressure}")
    values = np.asarray(fitnesses, dtype=np.float64)
    mask = _feasible_mask(values)
    indices = np.nonzero(mask)[0]
    order = indices[np.argsort(values[indices])]  # worst ... best
    count = len(order)
    if count == 1:
        return int(order[0])
    ranks = np.arange(count, dtype=np.float64)  # 0 = worst
    weights = (2.0 - pressure) + (2.0 * (pressure - 1.0)) * ranks / (count - 1)
    weights /= weights.sum()
    return int(rng.choice(order, p=weights))


class SelectionMethod(enum.Enum):
    """Named selection strategies for configuration surfaces."""

    TOURNAMENT = "tournament"
    ROULETTE = "roulette"
    RANK = "rank"

    def selector(self, *, tournament_size: int = 3,
                 pressure: float = 1.8) -> Callable:
        """A ``(rng, fitnesses) -> index`` callable for this method."""
        if self is SelectionMethod.TOURNAMENT:
            return lambda rng, fitnesses: tournament_select(
                rng, fitnesses, tournament_size=tournament_size
            )
        if self is SelectionMethod.ROULETTE:
            return roulette_select
        return lambda rng, fitnesses: rank_select(rng, fitnesses,
                                                  pressure=pressure)


@dataclasses.dataclass(frozen=True)
class SelectionStats:
    """Empirical selection-pressure measurement for one operator."""

    method: SelectionMethod
    best_probability: float  # chance the best individual is picked
    feasible_only: bool  # infeasible individuals never selected


def measure_selection_pressure(method: SelectionMethod,
                               fitnesses: Sequence[float], *,
                               trials: int = 2000,
                               seed: int = 0) -> SelectionStats:
    """Estimate how strongly an operator favours the best individual."""
    rng = np.random.default_rng(seed)
    selector = method.selector()
    values = np.asarray(fitnesses, dtype=np.float64)
    best = int(np.argmax(np.where(np.isfinite(values), values, -math.inf)))
    hits = 0
    feasible_only = True
    for _ in range(trials):
        chosen = selector(rng, fitnesses)
        if chosen == best:
            hits += 1
        if not math.isfinite(values[chosen]):
            feasible_only = False
    return SelectionStats(
        method=method,
        best_probability=hits / trials,
        feasible_only=feasible_only,
    )
