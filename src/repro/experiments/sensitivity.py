"""Sensitivity of the reproduction's conclusions to its calibration.

The pipeline model carries four fitted parameters that are *not* in the
paper's tables: the effective PCIe bandwidth, the per-transfer latency,
the per-call solve setup, and the per-offload host overhead.  This
analysis perturbs each of them and re-derives the paper's qualitative
conclusions, answering "would the reproduction still agree if the fits
were off by 2x?".

The conclusions checked per perturbed model:

* the hybrid still beats the CPU baseline,
* the GPU hybrid still beats the Phi hybrid,
* the optimal slice count stays in a sane 2-64 band,
* the dual-socket GPU speedup stays within the claimed ~2.4-4.2 range.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.hardware.host import Workstation
from repro.hardware.device import SimulatedDevice
from repro.hardware.specs import DeviceSpec, PCIeLinkSpec
from repro.pipeline.engine import simulate
from repro.pipeline.metrics import evaluate
from repro.pipeline.schedules import cpu_only, hybrid
from repro.pipeline.autotune import tune_slices
from repro.pipeline.workload import Workload
from repro.precision import Precision

#: The fitted parameters and the attribute paths they perturb.
FITTED_PARAMETERS = (
    "link_bandwidth",
    "link_latency",
    "solve_call_setup",
    "host_overhead_per_call",
)

#: Multiplicative perturbations applied to each parameter.
DEFAULT_FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)


def _perturbed_spec(spec: DeviceSpec, parameter: str, factor: float) -> DeviceSpec:
    """A copy of *spec* with one fitted parameter scaled by *factor*."""
    if parameter == "link_bandwidth":
        link = PCIeLinkSpec(
            effective_bandwidth=spec.link.effective_bandwidth * factor,
            latency=spec.link.latency,
        )
        return dataclasses.replace(spec, link=link)
    if parameter == "link_latency":
        link = PCIeLinkSpec(
            effective_bandwidth=spec.link.effective_bandwidth,
            latency=spec.link.latency * factor,
        )
        return dataclasses.replace(spec, link=link)
    if parameter == "solve_call_setup":
        return dataclasses.replace(spec, solve_call_setup=spec.solve_call_setup * factor)
    if parameter == "host_overhead_per_call":
        return dataclasses.replace(
            spec, host_overhead_per_call=spec.host_overhead_per_call * factor
        )
    raise ValueError(f"unknown fitted parameter {parameter!r}")


def _perturbed_workstation(base: Workstation, parameter: str,
                           factor: float) -> Workstation:
    cpu_spec = base.cpu.spec
    if parameter == "solve_call_setup":
        cpu_spec = dataclasses.replace(
            cpu_spec, solve_call_setup=cpu_spec.solve_call_setup * factor
        )
    accelerators = tuple(
        SimulatedDevice.create(
            _perturbed_spec(device.spec, parameter, factor)
            if parameter != "solve_call_setup" else device.spec,
            base.precision,
        )
        for device in base.accelerators
    )
    return Workstation(
        cpu=SimulatedDevice.create(cpu_spec, base.precision),
        accelerators=accelerators,
        precision=base.precision,
    )


@dataclasses.dataclass(frozen=True)
class SensitivityRow:
    """Conclusions re-derived under one perturbation."""

    parameter: str
    factor: float
    gpu_speedup: float
    phi_speedup: float
    gpu_optimal_slices: int
    conclusions_hold: bool


def run_sensitivity(*, precision=Precision.DOUBLE, sockets: int = 2,
                    factors=DEFAULT_FACTORS) -> List[SensitivityRow]:
    """Perturb every fitted parameter and re-check the conclusions."""
    from repro.hardware.host import paper_workstation

    precision = Precision.parse(precision)
    workload = Workload.paper_reference(precision)
    base_cpu = paper_workstation(sockets=sockets, precision=precision)
    baseline = evaluate(simulate(cpu_only(workload, base_cpu.cpu))).wall_time

    rows: List[SensitivityRow] = []
    for parameter in FITTED_PARAMETERS:
        for factor in factors:
            stations: Dict[str, Workstation] = {}
            for accel in ("k80-half", "phi"):
                base = paper_workstation(sockets=sockets, accelerator=accel,
                                         precision=precision)
                stations[accel] = _perturbed_workstation(base, parameter, factor)
            gpu_tuned = tune_slices(workload, stations["k80-half"])
            phi_tuned = tune_slices(workload, stations["phi"])
            gpu_speedup = baseline / gpu_tuned.best_metrics.wall_time
            phi_speedup = baseline / phi_tuned.best_metrics.wall_time
            # The GPU-vs-Phi ordering is the one conclusion that can
            # tighten to a near-tie (halving the link bandwidth makes
            # the GPU chain transfer-bound), so it is checked with a 5 %
            # tolerance; everything else must hold outright.
            conclusions = (
                gpu_speedup > 1.5
                and phi_speedup > 1.2
                and gpu_speedup > 0.95 * phi_speedup
                and 2 <= gpu_tuned.best_parameter <= 64
            )
            rows.append(SensitivityRow(
                parameter=parameter,
                factor=factor,
                gpu_speedup=gpu_speedup,
                phi_speedup=phi_speedup,
                gpu_optimal_slices=int(gpu_tuned.best_parameter),
                conclusions_hold=conclusions,
            ))
    return rows
