"""The paper's published numbers, transcribed verbatim.

Used by EXPERIMENTS.md generation and by the test suite to check that
the simulator reproduces the *shape* of every table: who wins, by what
factor, and where the optima sit.  Table 2 lives in
:mod:`repro.hardware.calibration` because it anchors the device models;
this module holds Tables 3-5 and the headline claims.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.precision import Precision

SINGLE = Precision.SINGLE
DOUBLE = Precision.DOUBLE


@dataclasses.dataclass(frozen=True)
class PaperRow:
    """One W/A/L/O row of Tables 3-5."""

    wall: float
    assembly: float
    solve: float
    overhead: Optional[float] = None
    speedup: Optional[float] = None


# CPU-only baselines repeated at the top of Tables 3-5:
# {(precision, sockets): PaperRow}
BASELINES: Dict[Tuple[Precision, int], PaperRow] = {
    (SINGLE, 1): PaperRow(6.69, 4.97, 1.75),
    (SINGLE, 2): PaperRow(3.80, 2.76, 1.07),
    (DOUBLE, 1): PaperRow(12.21, 9.40, 2.85),
    (DOUBLE, 2): PaperRow(7.20, 5.19, 2.05),
}

# Table 3: GPU+CPU hybrid. {(precision, sockets): {slices: PaperRow}}
TABLE3: Dict[Tuple[Precision, int], Dict[int, PaperRow]] = {
    (SINGLE, 1): {
        1: PaperRow(2.78, 0.46, 1.75, 1.03, 2.40),
        5: PaperRow(2.12, 0.46, 1.87, 0.25, 3.16),
        10: PaperRow(1.98, 0.46, 1.82, 0.16, 3.38),
        20: PaperRow(1.97, 0.46, 1.86, 0.10, 3.40),
    },
    (SINGLE, 2): {
        1: PaperRow(2.14, 0.47, 1.09, 1.06, 1.78),
        5: PaperRow(1.37, 0.46, 1.11, 0.25, 2.78),
        10: PaperRow(1.26, 0.46, 1.11, 0.16, 3.01),
        20: PaperRow(1.41, 0.47, 1.29, 0.12, 2.69),
    },
    (DOUBLE, 1): {
        1: PaperRow(4.82, 0.77, 2.90, 1.92, 2.53),
        5: PaperRow(3.31, 0.77, 2.84, 0.47, 3.69),
        10: PaperRow(3.13, 0.77, 2.84, 0.29, 3.91),
        20: PaperRow(3.16, 0.78, 2.95, 0.21, 3.86),
    },
    (DOUBLE, 2): {
        1: PaperRow(3.98, 0.77, 2.07, 1.91, 1.81),
        5: PaperRow(2.63, 0.77, 2.15, 0.48, 2.73),
        10: PaperRow(2.46, 0.77, 2.16, 0.30, 2.93),
        20: PaperRow(2.50, 0.78, 2.28, 0.22, 2.88),
    },
}

#: Slice count the paper marks bold (optimal) in Table 3.
TABLE3_OPTIMAL_SLICES = {
    (SINGLE, 1): 20,
    (SINGLE, 2): 10,
    (DOUBLE, 1): 10,
    (DOUBLE, 2): 10,
}

# Table 4: Phi+CPU hybrid.  The A column reports *exposed* assembly.
TABLE4: Dict[Tuple[Precision, int], Dict[int, PaperRow]] = {
    (SINGLE, 1): {
        1: PaperRow(3.70, 0.97, 1.72, 1.98, 1.80),
        5: PaperRow(2.36, 0.43, 1.74, 0.62, 2.83),
        10: PaperRow(2.25, 0.27, 1.81, 0.44, 2.97),
        20: PaperRow(2.20, 0.16, 1.81, 0.39, 3.04),
    },
    (SINGLE, 2): {
        1: PaperRow(3.04, 0.98, 1.05, 1.99, 1.25),
        5: PaperRow(1.77, 0.42, 1.11, 0.67, 2.14),
        10: PaperRow(1.59, 0.25, 1.15, 0.44, 2.40),
        20: PaperRow(1.65, 0.18, 1.22, 0.43, 2.31),
    },
    (DOUBLE, 1): {
        1: PaperRow(6.79, 1.92, 2.84, 3.95, 1.80),
        5: PaperRow(3.90, 0.81, 2.73, 1.17, 3.13),
        10: PaperRow(3.62, 0.49, 2.75, 0.86, 3.38),
        20: PaperRow(3.43, 0.28, 2.77, 0.66, 3.56),
    },
    (DOUBLE, 2): {
        1: PaperRow(5.96, 1.92, 2.01, 3.95, 1.21),
        5: PaperRow(3.26, 0.87, 2.04, 1.22, 2.21),
        10: PaperRow(2.97, 0.49, 2.10, 0.87, 2.42),
        20: PaperRow(2.83, 0.32, 2.15, 0.68, 2.54),
    },
}

TABLE4_OPTIMAL_SLICES = {
    (SINGLE, 1): 20,
    (SINGLE, 2): 10,
    (DOUBLE, 1): 20,
    (DOUBLE, 2): 20,
}

# Table 5: dual-GPU split. {(precision, sockets): {distr: PaperRow}}
TABLE5: Dict[Tuple[Precision, int], Dict[float, PaperRow]] = {
    (SINGLE, 1): {
        0.70: PaperRow(1.52, 0.44, 1.31, 0.20, 4.41),
        0.75: PaperRow(1.58, 0.45, 1.44, 0.15, 4.22),
        0.80: PaperRow(1.62, 0.47, 1.49, 0.13, 4.12),
    },
    (SINGLE, 2): {
        0.70: PaperRow(1.49, 0.33, 0.91, 0.58, 2.54),
        0.75: PaperRow(1.29, 0.35, 0.95, 0.34, 2.94),
        0.80: PaperRow(1.21, 0.37, 1.00, 0.21, 3.13),
    },
    (DOUBLE, 1): {
        0.70: PaperRow(2.44, 0.55, 2.20, 0.23, 5.01),
        0.75: PaperRow(2.40, 0.59, 2.17, 0.23, 5.08),
        0.80: PaperRow(2.66, 0.62, 2.42, 0.23, 4.60),
    },
    (DOUBLE, 2): {
        0.70: PaperRow(2.01, 0.55, 1.70, 0.31, 3.57),
        0.75: PaperRow(2.11, 0.59, 1.83, 0.28, 3.41),
        0.80: PaperRow(2.26, 0.62, 2.00, 0.26, 3.18),
    },
}

TABLE5_OPTIMAL_DISTR = {
    (SINGLE, 1): 0.70,
    (SINGLE, 2): 0.80,
    (DOUBLE, 1): 0.75,
    (DOUBLE, 2): 0.70,
}


@dataclasses.dataclass(frozen=True)
class HeadlineClaim:
    """A conclusion-section claim with its tolerance for the checker."""

    description: str
    low: float
    high: float

    def holds(self, value: float) -> bool:
        """True when the simulated value lands inside the claimed band."""
        return self.low <= value <= self.high


#: The conclusions of Section 7 as checkable bands (band edges widened
#: by ~10-15 % relative tolerance: this reproduction targets shapes).
HEADLINE_CLAIMS = {
    "k80_dual_socket_single": HeadlineClaim(
        "K80 on dual socket, single precision: speedup ~ 3.1", 2.6, 3.6),
    "k80_dual_socket_double": HeadlineClaim(
        "K80 on dual socket, double precision: speedup ~ 3.6", 3.0, 4.2),
    "phi_dual_socket": HeadlineClaim(
        "Phi 7120 on dual socket: speedup ~ 2.4-2.5", 2.0, 3.0),
    "gpu_single_socket_max": HeadlineClaim(
        "GPU on single socket: speedup up to ~ 5", 4.2, 5.8),
    "phi_single_socket_max": HeadlineClaim(
        "Phi on single socket: speedup up to ~ 3.5", 2.9, 4.1),
    "cpu_assembly_solve_ratio": HeadlineClaim(
        "CPU assembly 2.5-3.5x more expensive than solve", 2.5, 3.5),
    "hybrid_lower_bound_gap": HeadlineClaim(
        "hybrid within 10-20 % of the solve-time lower bound", 0.0, 0.25),
}
