"""Figure 3: the GPU communication-hiding pattern.

Assembly (green) and copy (orange) share the GPU queue and interleave
with the host solves (blue); the residual red overhead of the paper's
figure corresponds to the idle gaps visible in the trace.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.hardware.host import paper_workstation
from repro.pipeline.engine import simulate
from repro.pipeline.metrics import evaluate
from repro.pipeline.schedules import hybrid
from repro.pipeline.trace import build_trace, render_ascii
from repro.pipeline.workload import Workload
from repro.viz.svg import gantt_svg
from repro.precision import Precision


def run(n_slices: int = 5, precision=Precision.SINGLE,
        sockets: int = 2) -> ExperimentResult:
    """Regenerate Figure 3 as an annotated Gantt trace."""
    precision = Precision.parse(precision)
    workload = Workload.paper_reference(precision)
    workstation = paper_workstation(
        sockets=sockets, accelerator="k80-half", precision=precision
    )
    timeline = simulate(hybrid(workload, workstation, n_slices, stages=2))
    trace = build_trace(timeline)
    metrics = evaluate(timeline)
    text = (
        f"Figure 3: GPU interleave ({n_slices} slices, {precision}, "
        f"{sockets}x CPU)\n\n"
        + render_ascii(trace)
        + f"\n\nW = {metrics.wall_time:.2f} s, L = {metrics.solve_busy:.2f} s, "
        f"O = W - L = {metrics.overhead:.2f} s\n"
        "Assembly and copy are serialized on the 'accel' row (the GPU "
        "queue)\nand hidden almost entirely behind the 'cpu' row's solves."
    )
    rows = [{
        "resource": row.resource,
        "segments": [
            {"start": seg.start, "end": seg.end, "kind": seg.kind.value}
            for seg in row.segments
        ],
    } for row in trace.rows]
    return ExperimentResult(
        experiment_id="figure3",
        title="GPU communication-hiding pattern",
        text=text,
        rows=rows,
        artifacts={"figure3.svg": gantt_svg(trace)},
    )
