"""Plain-text table rendering and paper-comparison formatting."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence


@dataclasses.dataclass
class TextTable:
    """A simple right-aligned monospace table builder."""

    headers: Sequence[str]
    rows: List[Sequence[str]] = dataclasses.field(default_factory=list)
    title: str = ""

    def add_row(self, *cells) -> None:
        """Append a row; cells are converted to strings."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        """The table as aligned text with a rule under the header."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(
            header.rjust(width) for header, width in zip(self.headers, widths)
        ))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(
                cell.rjust(width) for cell, width in zip(row, widths)
            ))
        return "\n".join(lines)


def compare(simulated: float, paper: Optional[float], *, digits: int = 2) -> str:
    """``"1.95 (paper 1.98)"`` cells for side-by-side tables."""
    if paper is None:
        return f"{simulated:.{digits}f}"
    return f"{simulated:.{digits}f} ({paper:.{digits}f})"


def ratio_note(simulated: float, paper: Optional[float]) -> str:
    """Relative deviation annotation, e.g. ``"+3%"``."""
    if paper is None or paper == 0.0:
        return "-"
    deviation = simulated / paper - 1.0
    return f"{deviation:+.0%}"


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The output of one table/figure regeneration."""

    experiment_id: str
    title: str
    text: str
    rows: List[Dict] = dataclasses.field(default_factory=list)
    artifacts: Dict[str, str] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text

    def save_artifacts(self, directory) -> List[str]:
        """Write artifacts (e.g. SVG files) into *directory*."""
        import os

        os.makedirs(directory, exist_ok=True)
        written = []
        for name, content in self.artifacts.items():
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            written.append(path)
        return written
