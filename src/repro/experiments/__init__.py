"""Regeneration harness for every table and figure of the paper."""

from repro.experiments.report import ExperimentResult, TextTable, compare
from repro.experiments.runner import (
    REGISTRY,
    experiment_names,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "TextTable",
    "compare",
    "experiment_names",
    "run_all",
    "run_experiment",
]
