"""Figure 4: the Xeon Phi communication-hiding pattern.

Unlike the GPU case, assembly on the Phi is too slow to hide behind the
solves alone, so the copy runs on its own link resource and all three
operations overlap.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.hardware.host import paper_workstation
from repro.pipeline.engine import simulate
from repro.pipeline.metrics import evaluate
from repro.pipeline.schedules import hybrid
from repro.pipeline.trace import build_trace, render_ascii
from repro.pipeline.workload import Workload
from repro.viz.svg import gantt_svg
from repro.precision import Precision


def run(n_slices: int = 5, precision=Precision.SINGLE,
        sockets: int = 2) -> ExperimentResult:
    """Regenerate Figure 4 as an annotated Gantt trace."""
    precision = Precision.parse(precision)
    workload = Workload.paper_reference(precision)
    workstation = paper_workstation(
        sockets=sockets, accelerator="phi", precision=precision
    )
    timeline = simulate(hybrid(workload, workstation, n_slices, stages=3))
    trace = build_trace(timeline)
    metrics = evaluate(timeline)
    text = (
        f"Figure 4: Xeon Phi interleave ({n_slices} slices, {precision}, "
        f"{sockets}x CPU)\n\n"
        + render_ascii(trace)
        + f"\n\nW = {metrics.wall_time:.2f} s, L = {metrics.solve_busy:.2f} s, "
        f"O = W - L = {metrics.overhead:.2f} s\n"
        "Assembly ('accel'), copy ('link'), and solve ('cpu') all overlap;\n"
        "the 'c' blocks on the cpu row are the per-offload host management\n"
        "that keeps the Phi's overhead from vanishing with more slices."
    )
    rows = [{
        "resource": row.resource,
        "segments": [
            {"start": seg.start, "end": seg.end, "kind": seg.kind.value}
            for seg in row.segments
        ],
    } for row in trace.rows]
    return ExperimentResult(
        experiment_id="figure4",
        title="Xeon Phi communication-hiding pattern",
        text=text,
        rows=rows,
        artifacts={"figure4.svg": gantt_svg(trace)},
    )
