"""Figure 1: the NACA 2412 geometry discretized with n = 10 panels.

"The control points are shown in red and the exact geometry is
outlined in gray."
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.geometry.naca import naca4
from repro.viz.ascii_plot import plot_airfoil
from repro.viz.svg import airfoil_svg


def run(n_panels: int = 10, designation: str = "2412") -> ExperimentResult:
    """Regenerate Figure 1 (coarse outline + control points)."""
    coarse = naca4(designation, n_panels)
    fine = naca4(designation, 200)
    art = plot_airfoil(coarse, show_control_points=True, width=72, height=12)
    text = (
        f"Figure 1: NACA {designation} discretized with n = {n_panels} panels\n"
        f"{art}\n"
        "('#' outline through the discretization points, 'o' control points;\n"
        " the SVG artifact overlays the exact 200-panel geometry)"
    )
    svg = airfoil_svg(
        [coarse.with_name(f"NACA {designation}, n = {n_panels}"),
         fine.with_name(f"NACA {designation}, exact (n = 200)")],
        show_control_points=True,
    )
    rows = [{
        "designation": designation,
        "n_panels": coarse.n_panels,
        "chord": coarse.chord,
        "max_thickness": coarse.max_thickness,
        "control_points": coarse.control_points.tolist(),
    }]
    return ExperimentResult(
        experiment_id="figure1",
        title="Discretized NACA 2412 geometry",
        text=text,
        rows=rows,
        artifacts={"figure1.svg": svg},
    )
