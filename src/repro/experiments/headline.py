"""Checker for the paper's Section 7 headline claims.

Runs the same simulations as Tables 2-5 and verifies each conclusion
band from :data:`repro.experiments.paper_data.HEADLINE_CLAIMS`.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import hybrid_tables as ht
from repro.experiments.paper_data import HEADLINE_CLAIMS
from repro.experiments.report import ExperimentResult, TextTable
from repro.hardware.kernels import KernelModel
from repro.hardware.specs import E5_2630_V3
from repro.pipeline.metrics import lower_bound_gap
from repro.precision import Precision


def measured_values() -> Dict[str, float]:
    """Simulate everything the Section 7 claims reference."""
    values: Dict[str, float] = {}

    gpu_sp_2 = ht.hybrid_sweep("k80-half", Precision.SINGLE, 2, (10, 20))
    gpu_dp_2 = ht.hybrid_sweep("k80-half", Precision.DOUBLE, 2, (10, 20))
    dual_sp_2 = ht.dual_sweep(Precision.SINGLE, 2)
    dual_dp_2 = ht.dual_sweep(Precision.DOUBLE, 2)
    values["k80_dual_socket_single"] = max(
        m.speedup for m in gpu_sp_2 + dual_sp_2
    )
    values["k80_dual_socket_double"] = max(
        m.speedup for m in gpu_dp_2 + dual_dp_2
    )

    phi_sp_2 = ht.hybrid_sweep("phi", Precision.SINGLE, 2, (10, 20))
    phi_dp_2 = ht.hybrid_sweep("phi", Precision.DOUBLE, 2, (10, 20))
    values["phi_dual_socket"] = max(m.speedup for m in phi_sp_2 + phi_dp_2)

    dual_sp_1 = ht.dual_sweep(Precision.SINGLE, 1)
    dual_dp_1 = ht.dual_sweep(Precision.DOUBLE, 1)
    values["gpu_single_socket_max"] = max(
        m.speedup for m in dual_sp_1 + dual_dp_1
    )

    phi_sp_1 = ht.hybrid_sweep("phi", Precision.SINGLE, 1, (10, 20))
    phi_dp_1 = ht.hybrid_sweep("phi", Precision.DOUBLE, 1, (10, 20))
    values["phi_single_socket_max"] = max(m.speedup for m in phi_sp_1 + phi_dp_1)

    model = KernelModel.for_device(E5_2630_V3, Precision.DOUBLE)
    values["cpu_assembly_solve_ratio"] = (
        model.assembly(4000, 200).seconds / model.solve(4000, 200).seconds
    )

    best_gpu = min(gpu_dp_2, key=lambda m: m.wall_time)
    values["hybrid_lower_bound_gap"] = lower_bound_gap(best_gpu)
    return values


def run() -> ExperimentResult:
    """Check every headline claim and render a verdict table."""
    values = measured_values()
    table = TextTable(
        headers=("claim", "simulated", "claimed band", "verdict"),
        title="Section 7 headline claims",
    )
    rows = []
    for key, claim in HEADLINE_CLAIMS.items():
        value = values[key]
        verdict = "PASS" if claim.holds(value) else "FAIL"
        table.add_row(
            claim.description, f"{value:.2f}",
            f"[{claim.low:.2f}, {claim.high:.2f}]", verdict,
        )
        rows.append({
            "claim": key,
            "value": value,
            "low": claim.low,
            "high": claim.high,
            "passes": claim.holds(value),
        })
    return ExperimentResult(
        experiment_id="headline",
        title="Headline claim verification",
        text=table.render(),
        rows=rows,
    )
