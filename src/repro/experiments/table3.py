"""Table 3: the GPU+CPU hybrid pipeline, swept over slice counts."""

from __future__ import annotations

from repro.experiments import hybrid_tables as ht
from repro.experiments.paper_data import TABLE3, TABLE3_OPTIMAL_SLICES
from repro.experiments.report import ExperimentResult
from repro.precision import Precision


def run() -> ExperimentResult:
    """Regenerate Table 3 (simulated vs. paper, all four blocks)."""
    sections = []
    rows = []
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        for sockets in (1, 2):
            metrics = ht.hybrid_sweep("k80-half", precision, sockets)
            baseline = ht.baseline_metrics(precision, sockets)
            table = ht.render_sweep_table(
                title=(f"Table 3 ({precision}, {sockets}x CPU): GPU+CPU hybrid "
                       "[simulated (paper)]"),
                parameter_name="slices",
                parameters=ht.PAPER_SLICES,
                metrics=metrics,
                paper_rows=TABLE3[(precision, sockets)],
                baseline=baseline,
                paper_baseline=ht.paper_baseline(precision, sockets),
            )
            sections.append(table.render())
            rows.extend(ht.metrics_to_rows(
                "slices", ht.PAPER_SLICES, metrics,
                precision=precision, sockets=sockets,
            ))
            best = min(zip(ht.PAPER_SLICES, metrics), key=lambda p: p[1].wall_time)
            sections.append(
                f"  simulated optimum: {best[0]} slices "
                f"(paper bold: {TABLE3_OPTIMAL_SLICES[(precision, sockets)]})"
            )
    return ExperimentResult(
        experiment_id="table3",
        title="GPU+CPU hybrid timing",
        text="\n\n".join(sections),
        rows=rows,
    )
