"""Table 4: the Xeon Phi+CPU hybrid (three-way interleave).

The paper's Table 4 also repeats the best GPU rows for comparison;
this regeneration does the same.  Note the ``A`` column here is the
*exposed* assembly time (the pipeline fill), which is why it shrinks
with the slice count — see DESIGN.md Section 5.
"""

from __future__ import annotations

from repro.experiments import hybrid_tables as ht
from repro.experiments.paper_data import TABLE4, TABLE4_OPTIMAL_SLICES
from repro.experiments.report import ExperimentResult
from repro.precision import Precision


def run() -> ExperimentResult:
    """Regenerate Table 4 (simulated vs. paper, all four blocks)."""
    sections = []
    rows = []
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        for sockets in (1, 2):
            metrics = ht.hybrid_sweep("phi", precision, sockets)
            baseline = ht.baseline_metrics(precision, sockets)
            table = ht.render_sweep_table(
                title=(f"Table 4 ({precision}, {sockets}x CPU): Phi+CPU hybrid "
                       "[simulated (paper)]"),
                parameter_name="slices",
                parameters=ht.PAPER_SLICES,
                metrics=metrics,
                paper_rows=TABLE4[(precision, sockets)],
                exposed_assembly=True,
                baseline=baseline,
                paper_baseline=ht.paper_baseline(precision, sockets),
            )
            sections.append(table.render())
            rows.extend(ht.metrics_to_rows(
                "slices", ht.PAPER_SLICES, metrics,
                precision=precision, sockets=sockets, exposed_assembly=True,
            ))
            best = min(zip(ht.PAPER_SLICES, metrics), key=lambda p: p[1].wall_time)
            gpu = ht.hybrid_sweep("k80-half", precision, sockets,
                                  slice_counts=(10, 20))
            sections.append(
                f"  simulated optimum: {best[0]} slices "
                f"(paper bold: {TABLE4_OPTIMAL_SLICES[(precision, sockets)]}); "
                f"GPU reference W: {gpu[0].wall_time:.2f} (10 slices), "
                f"{gpu[1].wall_time:.2f} (20 slices)"
            )
    return ExperimentResult(
        experiment_id="table4",
        title="Xeon Phi+CPU hybrid timing",
        text="\n\n".join(sections),
        rows=rows,
    )
