"""Registry and dispatcher for every reproducible experiment."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments import (
    convergence,
    energy_table,
    figure1,
    figure2,
    figure3,
    figure4,
    headline,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.report import ExperimentResult

#: Experiment id -> zero-argument runner (defaults baked in).
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "headline": headline.run,
    "convergence": convergence.run,
    "energy": energy_table.run,
}


def experiment_names() -> List[str]:
    """Every registered experiment id, tables first."""
    return list(REGISTRY)


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"table3"``)."""
    normalized = name.strip().lower()
    try:
        runner = REGISTRY[normalized]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise ExperimentError(f"unknown experiment {name!r}; choose from: {known}")
    return runner()


def run_all() -> List[ExperimentResult]:
    """Run every registered experiment, in registry order."""
    return [runner() for runner in REGISTRY.values()]
