"""Figure 2: best airfoils per generation of the genetic optimizer.

"Three airfoils for each generation of the genetic optimization
algorithm are shown. ... The population size is equal to 1000."

The full paper-scale run (1000 individuals x 10 generations, 200-panel
candidates) is expensive in pure Python; the default regeneration is a
faithful scaled-down run whose qualitative content — monotonically
improving lift-to-drag of the per-generation champions — is checked by
the harness.  Pass ``full=True`` to reproduce the paper-scale settings.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult, TextTable
from repro.optimize.fitness import FitnessEvaluator
from repro.optimize.ga import GAConfig, GeneticOptimizer
from repro.optimize.genome import GenomeLayout
from repro.viz.ascii_plot import plot_airfoil
from repro.viz.svg import airfoil_svg


def run(*, full: bool = False, seed: int = 2016,
        generations: int = None) -> ExperimentResult:
    """Regenerate Figure 2 by actually running the optimizer."""
    if full:
        config = GAConfig(population_size=1000, generations=generations or 10)
        n_panels = 200
    else:
        config = GAConfig(population_size=30, generations=generations or 6)
        n_panels = 60
    layout = GenomeLayout()
    evaluator = FitnessEvaluator(layout=layout, n_panels=n_panels, reynolds=5e5)
    optimizer = GeneticOptimizer(evaluator=evaluator, config=config)
    history = optimizer.run(np.random.default_rng(seed))

    table = TextTable(
        headers=("generation", "best L/D", "2nd", "3rd", "mean L/D", "feasible"),
        title=(f"Figure 2 data: GA progress (population {config.population_size}, "
               f"{config.generations} generations, {n_panels} panels)"),
    )
    rows = []
    for record in history.generations:
        fitnesses = [individual.fitness for individual in record.best]
        while len(fitnesses) < 3:
            fitnesses.append(float("nan"))
        table.add_row(
            record.index,
            f"{fitnesses[0]:.1f}",
            f"{fitnesses[1]:.1f}",
            f"{fitnesses[2]:.1f}",
            f"{record.mean_fitness:.1f}",
            f"{record.feasible_fraction:.0%}",
        )
        rows.append({
            "generation": record.index,
            "best_fitness": record.best_fitness,
            "mean_fitness": record.mean_fitness,
            "feasible_fraction": record.feasible_fraction,
        })

    champion = history.champion
    champion_foil = layout.to_parametrization(
        champion.genome, name="champion"
    ).to_airfoil(max(n_panels, 100))
    art = plot_airfoil(champion_foil, width=72, height=10)
    text = (
        table.render()
        + f"\n\nchampion: L/D = {champion.fitness:.1f} "
        f"(cl = {champion.cl:.3f}, cd = {champion.cd:.5f})\n{art}"
    )

    # SVG: the best airfoil of selected generations, left to right in
    # the history (the paper shows one column per generation).
    gallery = []
    for record in history.generations:
        foil = layout.to_parametrization(
            record.champion.genome,
            name=f"gen {record.index}: L/D = {record.best_fitness:.1f}",
        ).to_airfoil(max(n_panels, 100))
        gallery.append(foil)
    svg = airfoil_svg(gallery, show_control_points=False)

    return ExperimentResult(
        experiment_id="figure2",
        title="Genetic optimization of airfoils",
        text=text,
        rows=rows,
        artifacts={"figure2.svg": svg},
    )
