"""Shared machinery for Tables 3-5 (the hybrid-pipeline sweeps).

Each table row is one simulated schedule; the renderer prints the
simulated W/A/L/O/speedup next to the paper's measured value.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments.paper_data import BASELINES, PaperRow
from repro.experiments.report import TextTable, compare
from repro.hardware.host import paper_workstation
from repro.pipeline.engine import simulate
from repro.pipeline.metrics import HybridMetrics, evaluate
from repro.pipeline.schedules import cpu_only, dual_accelerator, hybrid
from repro.pipeline.workload import Workload
from repro.precision import Precision

PAPER_SLICES = (1, 5, 10, 20)
PAPER_DISTRIBUTIONS = (0.70, 0.75, 0.80)


def baseline_metrics(precision: Precision, sockets: int,
                     workload: Workload = None) -> HybridMetrics:
    """Simulate the CPU-only baseline configuration."""
    workload = workload or Workload.paper_reference(precision)
    workstation = paper_workstation(sockets=sockets, precision=precision)
    return evaluate(simulate(cpu_only(workload, workstation.cpu)))


def hybrid_sweep(accelerator: str, precision: Precision, sockets: int,
                 slice_counts: Iterable[int] = PAPER_SLICES, *,
                 workload: Workload = None) -> List[HybridMetrics]:
    """Simulate the hybrid pipeline over a slice-count sweep."""
    workload = workload or Workload.paper_reference(precision)
    workstation = paper_workstation(
        sockets=sockets, accelerator=accelerator, precision=precision
    )
    base = baseline_metrics(precision, sockets, workload)
    return [
        evaluate(simulate(hybrid(workload, workstation, n_slices)))
        .with_baseline(base.wall_time)
        for n_slices in slice_counts
    ]


def dual_sweep(precision: Precision, sockets: int,
               distributions: Iterable[float] = PAPER_DISTRIBUTIONS, *,
               n_slices: int = 10, workload: Workload = None) -> List[HybridMetrics]:
    """Simulate the dual-GPU scheme over a distribution sweep."""
    workload = workload or Workload.paper_reference(precision)
    workstation = paper_workstation(
        sockets=sockets, accelerator="k80-dual", precision=precision
    )
    base = baseline_metrics(precision, sockets, workload)
    return [
        evaluate(simulate(dual_accelerator(workload, workstation, distribution,
                                           n_slices)))
        .with_baseline(base.wall_time)
        for distribution in distributions
    ]


def render_sweep_table(title: str, parameter_name: str, parameters,
                       metrics: List[HybridMetrics],
                       paper_rows: Optional[Dict] = None, *,
                       exposed_assembly: bool = False,
                       baseline: HybridMetrics = None,
                       paper_baseline: PaperRow = None) -> TextTable:
    """Render one precision/socket block of a hybrid table."""
    table = TextTable(
        headers=(parameter_name, "W", "A", "L", "O", "speedup"),
        title=title,
    )
    if baseline is not None:
        pb = paper_baseline
        table.add_row(
            "cpu only",
            compare(baseline.wall_time, pb.wall if pb else None),
            compare(baseline.assembly_busy, pb.assembly if pb else None),
            compare(baseline.solve_busy, pb.solve if pb else None),
            "-",
            "-",
        )
    for parameter, metric in zip(parameters, metrics):
        paper = paper_rows.get(parameter) if paper_rows else None
        assembly = (
            metric.assembly_exposed if exposed_assembly else metric.assembly_busy
        )
        table.add_row(
            parameter,
            compare(metric.wall_time, paper.wall if paper else None),
            compare(assembly, paper.assembly if paper else None),
            compare(metric.solve_busy, paper.solve if paper else None),
            compare(metric.overhead, paper.overhead if paper else None),
            compare(metric.speedup, paper.speedup if paper else None),
        )
    return table


def metrics_to_rows(parameter_name: str, parameters,
                    metrics: List[HybridMetrics], *, precision: Precision,
                    sockets: int, exposed_assembly: bool = False) -> List[dict]:
    """Structured rows for programmatic consumers."""
    rows = []
    for parameter, metric in zip(parameters, metrics):
        rows.append({
            parameter_name: parameter,
            "precision": precision.value,
            "sockets": sockets,
            "wall": metric.wall_time,
            "assembly": (
                metric.assembly_exposed if exposed_assembly else metric.assembly_busy
            ),
            "solve": metric.solve_busy,
            "overhead": metric.overhead,
            "speedup": metric.speedup,
        })
    return rows


def paper_baseline(precision: Precision, sockets: int) -> PaperRow:
    """The paper's CPU-only reference row."""
    return BASELINES[(precision, sockets)]
