"""Panel-count convergence study (supplementary experiment).

The paper fixes n = 200 with the remark that "in practice n is often
between 100 and 300".  This study quantifies what that choice buys:
lift-coefficient error against the exact Joukowski solution as the
panel count doubles, for both formulations and for curvature-adaptive
repaneling.  It documents (a) the second-order convergence of the
stream-function discretization (the Hess-Smith variant degrades to
sub-first-order on the cusped Joukowski trailing edge), and (b) that
n = 200 puts the discretization error near 0.05 % — far below the
viscous-model error — which justifies the paper's workload shape.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.experiments.report import ExperimentResult, TextTable
from repro.geometry.refine import repanel
from repro.panel.freestream import Freestream
from repro.panel.hess_smith import solve_hess_smith
from repro.panel.solver import solve_airfoil
from repro.validation.joukowski import JoukowskiAirfoil

PANEL_COUNTS = (25, 50, 100, 200, 400)


def run(alpha_degrees: float = 4.0) -> ExperimentResult:
    """Measure cl error vs panel count against the exact solution."""
    section = JoukowskiAirfoil(0.08, 0.05)
    exact = section.exact_lift_coefficient(math.radians(alpha_degrees))
    freestream = Freestream.from_degrees(alpha_degrees)

    rows: List[dict] = []
    table = TextTable(
        headers=("panels", "stream-fn |err|", "hess-smith |err|",
                 "repaneled |err|"),
        title=(f"Convergence to the exact Joukowski cl = {exact:.4f} "
               f"(alpha = {alpha_degrees:g} deg)"),
    )
    for count in PANEL_COUNTS:
        foil = section.airfoil(count)
        stream_error = abs(
            solve_airfoil(foil, alpha_degrees).lift_coefficient - exact
        )
        hess_error = abs(
            solve_hess_smith(foil, freestream).lift_coefficient - exact
        )
        adaptive = repanel(section.airfoil(max(count, 400)), count,
                           curvature_weight=2.0)
        adaptive_error = abs(
            solve_airfoil(adaptive, alpha_degrees).lift_coefficient - exact
        )
        table.add_row(count, f"{stream_error:.5f}", f"{hess_error:.5f}",
                      f"{adaptive_error:.5f}")
        rows.append({
            "panels": count,
            "stream_error": stream_error,
            "hess_error": hess_error,
            "adaptive_error": adaptive_error,
        })

    orders = _observed_orders([row["stream_error"] for row in rows])
    text = table.render() + (
        f"\n\nobserved convergence order (stream-function): "
        f"{np.mean(orders):.2f} (error ~ 1/n^2)\n"
        "At the paper's n = 200 the discretization error sits near 0.05 %"
        " of cl,\nwell below the boundary-layer model's accuracy."
    )
    return ExperimentResult(
        experiment_id="convergence",
        title="Panel-count convergence",
        text=text,
        rows=rows,
    )


def _observed_orders(errors: List[float]) -> List[float]:
    """log2 error ratios between successive panel-count doublings."""
    orders = []
    for coarse, fine in zip(errors[:-1], errors[1:]):
        if fine > 0.0 and coarse > 0.0:
            orders.append(math.log2(coarse / fine))
    return orders
