"""Table 5: using both GPUs of the K80 (Section 6).

A fraction ``distr`` of the candidates follows the hybrid path
(assembled on GPU 0, solved on the host with 15 of 16 threads) while
the rest is assembled *and solved* on GPU 1.
"""

from __future__ import annotations

from repro.experiments import hybrid_tables as ht
from repro.experiments.paper_data import TABLE5, TABLE5_OPTIMAL_DISTR
from repro.experiments.report import ExperimentResult
from repro.pipeline.autotune import tune_distribution
from repro.pipeline.workload import Workload
from repro.hardware.host import paper_workstation
from repro.precision import Precision


def run(n_slices: int = 10) -> ExperimentResult:
    """Regenerate Table 5 (simulated vs. paper, all four blocks)."""
    sections = []
    rows = []
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        for sockets in (1, 2):
            metrics = ht.dual_sweep(precision, sockets, n_slices=n_slices)
            reference = ht.dual_sweep(precision, sockets, distributions=(1.0,),
                                      n_slices=n_slices)
            baseline = ht.baseline_metrics(precision, sockets)
            table = ht.render_sweep_table(
                title=(f"Table 5 ({precision}, {sockets}x CPU): dual-GPU "
                       f"[simulated (paper), {n_slices} slices]"),
                parameter_name="distr",
                parameters=ht.PAPER_DISTRIBUTIONS,
                metrics=metrics,
                paper_rows=TABLE5[(precision, sockets)],
                baseline=baseline,
                paper_baseline=ht.paper_baseline(precision, sockets),
            )
            sections.append(table.render())
            rows.extend(ht.metrics_to_rows(
                "distr", ht.PAPER_DISTRIBUTIONS, metrics,
                precision=precision, sockets=sockets,
            ))
            tuned = tune_distribution(
                Workload.paper_reference(precision),
                paper_workstation(sockets=sockets, accelerator="k80-dual",
                                  precision=precision),
                n_slices=n_slices,
            )
            sections.append(
                f"  single-GPU reference (distr 1.0): W={reference[0].wall_time:.2f}, "
                f"speedup={reference[0].speedup:.2f}; autotuned optimum "
                f"distr={tuned.best_parameter:.2f} "
                f"(paper bold: {TABLE5_OPTIMAL_DISTR[(precision, sockets)]:.2f})"
            )
    return ExperimentResult(
        experiment_id="table5",
        title="Dual-GPU timing",
        text="\n\n".join(sections),
        rows=rows,
    )
