"""Generator for EXPERIMENTS.md: paper vs simulated, every table/figure.

``python -m repro report`` (or :func:`generate_experiments_markdown`)
runs the full evaluation and renders the paper-vs-measured record the
repository commits as ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import List

from repro.experiments import hybrid_tables as ht
from repro.experiments.figure2 import run as run_figure2
from repro.experiments.headline import measured_values
from repro.experiments.paper_data import (
    BASELINES,
    HEADLINE_CLAIMS,
    TABLE3,
    TABLE3_OPTIMAL_SLICES,
    TABLE4,
    TABLE4_OPTIMAL_SLICES,
    TABLE5,
    TABLE5_OPTIMAL_DISTR,
)
from repro.hardware.calibration import PAPER_TABLE2, implied_efficiencies
from repro.hardware.kernels import KernelModel
from repro.hardware.specs import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    HALF_K80,
    TABLE1_DEVICES,
    XEON_PHI_7120,
)
from repro.precision import Precision

PRECISIONS = (Precision.SINGLE, Precision.DOUBLE)
SOCKETS = (1, 2)


def _deviation(simulated: float, paper: float) -> str:
    return f"{simulated / paper - 1.0:+.0%}"


def _table1_section(lines: List[str]) -> None:
    lines.append("## Table 1 — hardware characteristics\n")
    lines.append("Taken from the paper verbatim; these peaks parameterize the "
                 "device models (the link column is derived, see below).\n")
    lines.append("| device | TFlops dp | TFlops sp | mem GB/s | effective link GB/s |")
    lines.append("|---|---|---|---|---|")
    for spec in TABLE1_DEVICES:
        link = f"{spec.link.effective_bandwidth / 1e9:.2f}" if spec.link else "—"
        lines.append(f"| {spec.name} | {spec.peak_tflops_double:.1f} | "
                     f"{spec.peak_tflops_single:.1f} | "
                     f"{spec.memory_bandwidth_gbs:.0f} | {link} |")
    lines.append("")
    lines.append("The effective PCIe bandwidths (~1 GB/s) are back-solved from "
                 "the paper's own slice-1 overhead rows in Tables 3–4 "
                 "(`O(1 slice) - A = transfer time`); they are far below the "
                 "bus peak, consistent with unpinned host buffers.\n")


def _table2_section(lines: List[str]) -> None:
    lines.append("## Table 2 — per-device assembly and solve seconds\n")
    lines.append("Table 2 anchors the kernel calibration, so the simulated "
                 "values match by construction (the harness verifies the "
                 "round trip); the informative columns are the implied "
                 "efficiencies, which encode the paper's Section 3 story.\n")
    lines.append("| device | prec | assembly sim (paper) | solve sim (paper) "
                 "| eff(assembly) | eff(solve) |")
    lines.append("|---|---|---|---|---|---|")
    devices = (E5_2630_V3, DUAL_E5_2630_V3, XEON_PHI_7120, HALF_K80)
    efficiencies = implied_efficiencies()
    for precision in PRECISIONS:
        for spec in devices:
            model = KernelModel.for_device(spec, precision)
            anchor = PAPER_TABLE2[(spec.name, precision)]
            assembly = model.assembly(4000, 200).seconds
            solve = model.solve(4000, 200).seconds
            eff_a, eff_s = efficiencies[(spec.name, precision.short_name)]
            lines.append(
                f"| {spec.name} | {precision.short_name} "
                f"| {assembly:.2f} ({anchor.assembly_seconds:.2f}) "
                f"| {solve:.2f} ({anchor.solve_seconds:.2f}) "
                f"| {eff_a:.1%} | {eff_s:.1%} |"
            )
    lines.append("")
    lines.append("Shape checks (all enforced by `benchmarks/bench_table2.py`): "
                 "CPU assembly/solve ratio in the paper's 2.5–3.5 band; both "
                 "accelerators assemble faster and solve slower than the two "
                 "CPUs; the batched 200×200 LU achieves only a fraction of a "
                 "percent of peak on the accelerators versus ~2 % on the "
                 "CPU — the premise of the hybrid scheme.\n")


def _sweep_section(lines: List[str], title: str, accelerator: str,
                   paper_table, paper_optima, *, exposed: bool) -> None:
    lines.append(title + "\n")
    lines.append("| prec | CPUs | slices | W sim (paper) | dev | L sim (paper) "
                 "| O sim (paper) | speedup sim (paper) |")
    lines.append("|---|---|---|---|---|---|---|---|")
    worst = 0.0
    for precision in PRECISIONS:
        for sockets in SOCKETS:
            metrics = ht.hybrid_sweep(accelerator, precision, sockets)
            for slices, metric in zip(ht.PAPER_SLICES, metrics):
                paper = paper_table[(precision, sockets)][slices]
                worst = max(worst, abs(metric.wall_time / paper.wall - 1.0))
                lines.append(
                    f"| {precision.short_name} | {sockets} | {slices} "
                    f"| {metric.wall_time:.2f} ({paper.wall:.2f}) "
                    f"| {_deviation(metric.wall_time, paper.wall)} "
                    f"| {metric.solve_busy:.2f} ({paper.solve:.2f}) "
                    f"| {metric.overhead:.2f} ({paper.overhead:.2f}) "
                    f"| {metric.speedup:.2f} ({paper.speedup:.2f}) |"
                )
            best = min(zip(ht.PAPER_SLICES, metrics),
                       key=lambda pair: pair[1].wall_time)[0]
            lines.append(
                f"| {precision.short_name} | {sockets} | *optimum* "
                f"| sim: {best} / paper bold: "
                f"{paper_optima[(precision, sockets)]} | | | | |"
            )
    lines.append("")
    lines.append(f"Worst wall-time deviation across all rows: {worst:.0%}.\n")


def _table5_section(lines: List[str]) -> None:
    lines.append("## Table 5 — both K80 GPUs (Section 6)\n")
    lines.append("| prec | CPUs | distr | W sim (paper) | dev | speedup sim (paper) |")
    lines.append("|---|---|---|---|---|---|")
    for precision in PRECISIONS:
        for sockets in SOCKETS:
            metrics = ht.dual_sweep(precision, sockets)
            for distr, metric in zip(ht.PAPER_DISTRIBUTIONS, metrics):
                paper = TABLE5[(precision, sockets)][distr]
                lines.append(
                    f"| {precision.short_name} | {sockets} | {distr:.2f} "
                    f"| {metric.wall_time:.2f} ({paper.wall:.2f}) "
                    f"| {_deviation(metric.wall_time, paper.wall)} "
                    f"| {metric.speedup:.2f} ({paper.speedup:.2f}) |"
                )
            best = min(zip(ht.PAPER_DISTRIBUTIONS, metrics),
                       key=lambda pair: pair[1].wall_time)[0]
            lines.append(
                f"| {precision.short_name} | {sockets} | *optimum* "
                f"| sim: {best:.2f} / paper bold: "
                f"{TABLE5_OPTIMAL_DISTR[(precision, sockets)]:.2f} | | |"
            )
    lines.append("")


def _baselines_section(lines: List[str]) -> None:
    lines.append("## CPU-only baselines (top rows of Tables 3–5)\n")
    lines.append("| prec | CPUs | W sim (paper) | A sim (paper) | L sim (paper) |")
    lines.append("|---|---|---|---|---|")
    for precision in PRECISIONS:
        for sockets in SOCKETS:
            metric = ht.baseline_metrics(precision, sockets)
            paper = BASELINES[(precision, sockets)]
            lines.append(
                f"| {precision.short_name} | {sockets} "
                f"| {metric.wall_time:.2f} ({paper.wall:.2f}) "
                f"| {metric.assembly_busy:.2f} ({paper.assembly:.2f}) "
                f"| {metric.solve_busy:.2f} ({paper.solve:.2f}) |"
            )
    lines.append("")


def _figures_section(lines: List[str]) -> None:
    lines.append("## Figures\n")
    lines.append(
        "* **Figure 1** (NACA 2412, n = 10): regenerated from the NACA "
        "generator; `python -m repro figure1` renders ASCII art and an SVG "
        "with the exact 200-panel outline overlaid.  Checked: unit chord, "
        "~12 % thickness, 10 control points straddling the chord line.\n"
        "* **Figure 2** (GA progress): a real (scaled-down by default) GA "
        "run; the regenerated figure shows the champions of each "
        "generation.  Checked: champion L/D is non-decreasing across "
        "generations and improves substantially end to end — the paper's "
        "\"successively better airfoils\".\n"
        "* **Figure 3** (GPU interleave): the simulated Gantt trace shows "
        "assembly and copy alternating on the GPU queue, hidden under the "
        "host solves; the residual gaps are the paper's red overhead.\n"
        "* **Figure 4** (Phi interleave): three resources (Phi, link, host) "
        "all overlap; the per-offload host-management slots visible on the "
        "cpu row are what keeps the Phi's O column from vanishing.\n"
    )
    figure2 = run_figure2(seed=2016)
    best = [row["best_fitness"] for row in figure2.rows]
    lines.append(f"Figure 2 regeneration (seed 2016): champion L/D per "
                 f"generation = {', '.join(f'{value:.0f}' for value in best)}.\n")


def _headline_section(lines: List[str]) -> None:
    lines.append("## Section 7 headline claims\n")
    lines.append("| claim | simulated | claimed band | verdict |")
    lines.append("|---|---|---|---|")
    values = measured_values()
    for key, claim in HEADLINE_CLAIMS.items():
        value = values[key]
        verdict = "PASS" if claim.holds(value) else "FAIL"
        lines.append(f"| {claim.description} | {value:.2f} "
                     f"| [{claim.low:.2f}, {claim.high:.2f}] | {verdict} |")
    lines.append("")


def generate_experiments_markdown() -> str:
    """Run everything and render the full EXPERIMENTS.md content."""
    lines: List[str] = [
        "# EXPERIMENTS — paper vs. simulated, every table and figure",
        "",
        "All numbers in *simulated seconds* on the calibrated device models",
        "(see DESIGN.md for the substitution rationale); `(...)` values are",
        "the paper's measurements.  Regenerate this file with",
        "`python -m repro report > EXPERIMENTS.md` or run individual",
        "experiments via `python -m repro table3` etc.  Every claim below is",
        "also enforced programmatically by `tests/test_reproduction_shapes.py`",
        "and the benchmark harness.",
        "",
        "**Calibration inputs:** Table 1 peaks, Table 2 kernel times, and the",
        "slice-1 overhead rows (effective PCIe bandwidth).  **Everything",
        "else** — the slice sweeps, W/A/L/O accounting, optima, and speedups",
        "of Tables 3–5 — is *predicted* by the discrete-event pipeline",
        "simulator.",
        "",
    ]
    _table1_section(lines)
    _table2_section(lines)
    _baselines_section(lines)
    _sweep_section(
        lines, "## Table 3 — GPU+CPU hybrid (slices swept)", "k80-half",
        TABLE3, TABLE3_OPTIMAL_SLICES, exposed=False,
    )
    _sweep_section(
        lines, "## Table 4 — Phi+CPU hybrid (slices swept)", "phi",
        TABLE4, TABLE4_OPTIMAL_SLICES, exposed=True,
    )
    lines.append("Table 4's `A` column in the paper reports the *exposed* "
                 "assembly (pipeline fill), which our simulator reproduces "
                 "for 5–20 slices; the paper's own 1-slice A values are "
                 "anomalous (smaller than its Table 2 totals) and are not "
                 "matched.\n")
    _table5_section(lines)
    _figures_section(lines)
    _headline_section(lines)
    lines.append(
        "## Beyond the paper (ablations and extensions)\n\n"
        "* `bench_ablation_interleave` — hiding on/off: the naive offload "
        "already wins, the interleave adds the rest (paper Section 4 prose).\n"
        "* `bench_ablation_stages` — the Phi *needs* the 3-stage scheme; the "
        "GPU gains nothing from it (Section 5 prose).\n"
        "* `bench_ablation_slices` — U-shaped slice sensitivity, optimum "
        "in the 5–32 band.\n"
        "* `bench_ablation_scaling` — speedup vs matrix dimension; the "
        "O(n^3) host solve erodes the advantage at n = 400.\n"
        "* `bench_ablation_precision` — sp ~1.9x faster everywhere; "
        "mixed-precision refinement recovers dp accuracy in <= 3 sweeps.\n"
        "* `bench_ablation_formulation` — Hess-Smith vs stream-function "
        "agreement at the 1 % level (2 % on cusped Joukowski edges).\n"
        "* `bench_ga_timing` — end-to-end GA speedup is below the flat-batch "
        "Table 3 value because of per-generation sync, recovering with "
        "population size.\n"
        "* `bench_heterogeneous` — Phi + GPU together: useless at the "
        "paper's solve-bound workload (the tuner sends ~100 % to the GPU), "
        "genuinely faster in chain-bound regimes.\n"
        "* `bench_roofline` — both kernels compute-bound; the n=200 LU sits "
        "near the ridge on the dual-socket host, bounding any possible MKL "
        "improvement.\n"
        "* `bench_energy` / `python -m repro energy` — TDP-priced energy to "
        "solution: the K80 wins time *and* energy, the Phi is faster but "
        "burns more joules than the CPUs (high idle draw).\n"
        "* `bench_sensitivity` — all conclusions survive halving/doubling "
        "every fitted parameter; the strict GPU>Phi ordering alone leans on "
        "the PCIe-bandwidth fit (a near-tie at half bandwidth).\n"
        "* `python -m repro convergence` — cl error vs panel count against "
        "the exact Joukowski solution: second order for the paper's "
        "formulation, so n = 200 carries ~0.05 % discretization error.\n"
        "* island-model GA (`repro.optimize.islands`) — device-mapped "
        "parallel GA; at the paper's solve-bound workload it cannot beat "
        "the single-population pipeline (the shared host solve is the "
        "bottleneck), quantifying why the paper's flat-batch design is "
        "the right one.\n"
        "* speedup bounds (`repro.pipeline.bounds`) — Amdahl-style limits: "
        "the tuned GPU run realizes > 85 % of its chain-aware bound; the "
        "Phi's bound is strictly below the paper's solve-time bound because "
        "its assembly chain exceeds the host solve.\n"
        "* closed-form pipeline theory (`repro.pipeline.theory`) — matches "
        "the event engine exactly for uniform slices and predicts the "
        "optimal slice count within +-2 of the exhaustive autotuner.\n"
        "* multi-element solver (`repro.panel.multielement`) — high-lift "
        "main+flap systems, cross-checked against far-field circulation "
        "and the single-element solver.\n"
    )
    return "\n".join(lines) + "\n"
