"""Table 2: assembly and solve seconds per device, both precisions.

The kernel models are anchored to these measurements, so the simulated
columns match the paper by construction; the value of regenerating the
table is (a) the end-to-end exercise of the cost model API, (b) the
derived columns the paper only discusses in prose: the CPU
assembly/solve ratio (2.5-3.5x) and the implied kernel efficiencies
that explain why the hybrid scheme wins.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, TextTable
from repro.hardware.calibration import PAPER_TABLE2, REFERENCE_BATCH, REFERENCE_N
from repro.hardware.kernels import KernelModel
from repro.hardware.specs import DUAL_E5_2630_V3, E5_2630_V3, HALF_K80, XEON_PHI_7120
from repro.precision import Precision

DEVICES = (E5_2630_V3, DUAL_E5_2630_V3, XEON_PHI_7120, HALF_K80)


def run(batch: int = REFERENCE_BATCH, n: int = REFERENCE_N) -> ExperimentResult:
    """Regenerate Table 2 (optionally at a different workload size)."""
    rows = []
    sections = []
    for precision in (Precision.SINGLE, Precision.DOUBLE):
        table = TextTable(
            headers=("device", "Assembly", "Solve", "Total",
                     "paper A", "paper S", "eff(asm)", "eff(solve)"),
            title=f"Table 2 ({precision}): batch={batch}, n={n} [seconds]",
        )
        for spec in DEVICES:
            model = KernelModel.for_device(spec, precision)
            assembly = model.assembly(batch, n).seconds
            solve = model.solve(batch, n).seconds
            anchor = PAPER_TABLE2[(spec.name, precision)]
            calibration = model.calibration
            table.add_row(
                spec.name,
                f"{assembly:.2f}",
                f"{solve:.2f}",
                f"{assembly + solve:.2f}",
                f"{anchor.assembly_seconds:.2f}",
                f"{anchor.solve_seconds:.2f}",
                f"{calibration.assembly_efficiency:.1%}",
                f"{calibration.solve_efficiency:.1%}",
            )
            rows.append({
                "device": spec.name,
                "precision": precision.value,
                "assembly_seconds": assembly,
                "solve_seconds": solve,
                "paper_assembly_seconds": anchor.assembly_seconds,
                "paper_solve_seconds": anchor.solve_seconds,
                "assembly_efficiency": calibration.assembly_efficiency,
                "solve_efficiency": calibration.solve_efficiency,
            })
        sections.append(table.render())

    cpu_sp = next(r for r in rows
                  if r["device"] == E5_2630_V3.name and r["precision"] == "single")
    cpu_dp = next(r for r in rows
                  if r["device"] == E5_2630_V3.name and r["precision"] == "double")
    notes = (
        "\nDerived observations (paper Section 3):\n"
        f"  CPU assembly/solve ratio: "
        f"{cpu_sp['assembly_seconds'] / cpu_sp['solve_seconds']:.2f} (sp), "
        f"{cpu_dp['assembly_seconds'] / cpu_dp['solve_seconds']:.2f} (dp) "
        "- paper: between 2.5 and 3.5\n"
        "  Accelerators assemble faster but solve slower than the CPUs,\n"
        "  which is the premise of the hybrid pipeline."
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Assembly and solve times per device",
        text="\n\n".join(sections) + notes,
        rows=rows,
    )
