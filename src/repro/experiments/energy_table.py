"""Energy-to-solution comparison (supplementary experiment).

Beyond the paper: prices every configuration of Tables 3-5 with the
TDP-based power model of :mod:`repro.hardware.energy`.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, TextTable
from repro.hardware.energy import configuration_energy


def run() -> ExperimentResult:
    """Energy and average power per configuration, both precisions."""
    table = TextTable(
        headers=("prec", "configuration", "W [s]", "E [J]", "avg [W]",
                 "vs cpu"),
        title="Energy to solution (TDP model; beyond the paper)",
    )
    rows = []
    for precision in ("single", "double"):
        baseline = configuration_energy(accelerator="none",
                                        precision=precision)
        for accel in ("none", "phi", "k80-half", "k80-dual"):
            estimate = configuration_energy(accelerator=accel,
                                            precision=precision)
            ratio = estimate.total_joules / baseline.total_joules
            table.add_row(
                precision[:2], accel, f"{estimate.wall_time:.2f}",
                f"{estimate.total_joules:.0f}",
                f"{estimate.average_watts:.0f}", f"{ratio:.2f}x",
            )
            rows.append({
                "precision": precision,
                "configuration": accel,
                "wall": estimate.wall_time,
                "joules": estimate.total_joules,
                "energy_ratio_vs_cpu": ratio,
            })
    text = table.render() + (
        "\n\nThe K80 half saves both time and energy; the Xeon Phi, while"
        "\n~2.3x faster, burns MORE energy than the CPU-only run because"
        "\nits 300 W board idles at high power while the host solves —"
        "\na conclusion invisible to the paper's time-only evaluation."
    )
    return ExperimentResult(
        experiment_id="energy",
        title="Energy to solution",
        text=text,
        rows=rows,
    )
