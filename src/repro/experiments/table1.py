"""Table 1: hardware characteristics of the simulated workstation."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, TextTable
from repro.hardware.specs import TABLE1_DEVICES


def run() -> ExperimentResult:
    """Regenerate Table 1 from the device specifications."""
    table = TextTable(
        headers=("device", "TFlops dp", "TFlops sp", "GB/s", "link GB/s"),
        title="Table 1: hardware characteristics (peak)",
    )
    rows = []
    for spec in TABLE1_DEVICES:
        link = f"{spec.link.effective_bandwidth / 1e9:.2f}" if spec.link else "-"
        table.add_row(
            spec.name,
            f"{spec.peak_tflops_double:.1f}",
            f"{spec.peak_tflops_single:.1f}",
            f"{spec.memory_bandwidth_gbs:.0f}",
            link,
        )
        rows.append({
            "device": spec.name,
            "tflops_double": spec.peak_tflops_double,
            "tflops_single": spec.peak_tflops_single,
            "memory_bandwidth_gbs": spec.memory_bandwidth_gbs,
            "link_bandwidth_gbs": (
                spec.link.effective_bandwidth / 1e9 if spec.link else None
            ),
        })
    text = table.render() + (
        "\n\nNote: the link column is the *effective* PCIe bandwidth the "
        "model uses,\nback-solved from the paper's slice-1 overhead rows "
        "(not a Table 1 quantity)."
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Hardware characteristics",
        text=text,
        rows=rows,
    )
