"""Minimal SVG writers (no external plotting dependency).

Produces self-contained SVG documents for the two figure families of
the paper: airfoil outlines (Figures 1-2) and pipeline Gantt charts
(Figures 3-4).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil
from repro.pipeline.task import TaskKind
from repro.pipeline.trace import GanttTrace

#: Figure 3/4 colours from the paper: green assembly, orange copy,
#: blue solve.
KIND_COLORS = {
    TaskKind.ASSEMBLE: "#2ca02c",
    TaskKind.TRANSFER: "#ff7f0e",
    TaskKind.SOLVE: "#1f77b4",
}


def _document(width: int, height: int, body: List[str]) -> str:
    content = "\n".join(body)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">\n'
        f'<rect width="{width}" height="{height}" fill="white"/>\n'
        f"{content}\n</svg>\n"
    )


def airfoil_svg(airfoils: Sequence[Airfoil], *, width: int = 640,
                row_height: int = 120, margin: int = 20,
                show_control_points: bool = True) -> str:
    """Airfoil outlines stacked vertically (Figure 1 / Figure 2 style)."""
    airfoils = list(airfoils)
    body: List[str] = []
    height = margin + len(airfoils) * row_height
    for index, airfoil in enumerate(airfoils):
        low, high = pt.bounding_box(airfoil.points)
        span = np.maximum(high - low, 1e-12)
        scale = min(
            (width - 2 * margin) / span[0],
            (row_height - margin) / span[1],
        )
        y_offset = margin / 2 + index * row_height + row_height / 2
        x_offset = margin

        def to_svg(point, scale=scale, low=low, span=span,
                   x_offset=x_offset, y_offset=y_offset):
            x = x_offset + (point[0] - low[0]) * scale
            y = y_offset + (span[1] / 2 + low[1] - point[1]) * scale
            return x, y

        path = " ".join(
            f"{'M' if i == 0 else 'L'} {x:.2f} {y:.2f}"
            for i, (x, y) in enumerate(map(to_svg, airfoil.points))
        )
        body.append(
            f'<path d="{path} Z" fill="none" stroke="#555" stroke-width="1.2"/>'
        )
        if show_control_points:
            for point in airfoil.control_points:
                x, y = to_svg(point)
                body.append(f'<circle cx="{x:.2f}" cy="{y:.2f}" r="2.5" fill="#d62728"/>')
        body.append(
            f'<text x="{margin}" y="{margin / 2 + index * row_height + 12}" '
            f'font-size="12" font-family="monospace">{airfoil.name}</text>'
        )
    return _document(width, height, body)


def flow_svg(airfoil: Airfoil, streamlines, *, width: int = 720,
             height: int = 420, margin: int = 30) -> str:
    """An airfoil with traced streamlines (flow-visualization figure).

    ``streamlines`` is a sequence of
    :class:`~repro.panel.streamlines.Streamline` objects (or anything
    with a ``points`` attribute holding an ``(m, 2)`` array).
    """
    all_points = [airfoil.points] + [line.points for line in streamlines]
    stacked = np.vstack(all_points)
    low, high = stacked.min(axis=0), stacked.max(axis=0)
    span = np.maximum(high - low, 1e-12)
    scale = min((width - 2 * margin) / span[0], (height - 2 * margin) / span[1])

    def to_svg(point):
        x = margin + (point[0] - low[0]) * scale
        y = height - margin - (point[1] - low[1]) * scale
        return x, y

    body: List[str] = []
    for line in streamlines:
        path = " ".join(
            f"{'M' if index == 0 else 'L'} {x:.2f} {y:.2f}"
            for index, (x, y) in enumerate(map(to_svg, line.points))
        )
        body.append(
            f'<path d="{path}" fill="none" stroke="#1f77b4" '
            f'stroke-width="1.0" opacity="0.8"/>'
        )
    outline = " ".join(
        f"{'M' if index == 0 else 'L'} {x:.2f} {y:.2f}"
        for index, (x, y) in enumerate(map(to_svg, airfoil.points))
    )
    body.append(f'<path d="{outline} Z" fill="#ddd" stroke="#333" '
                f'stroke-width="1.2"/>')
    body.append(
        f'<text x="{margin}" y="{margin - 10}" font-size="13" '
        f'font-family="monospace">{airfoil.name}: streamlines</text>'
    )
    return _document(width, height, body)


def gantt_svg(trace: GanttTrace, *, width: int = 720, row_height: int = 36,
              margin: int = 60) -> str:
    """A pipeline Gantt chart in the paper's Figure 3/4 colour scheme."""
    rows = trace.rows
    height = 2 * margin + len(rows) * row_height
    scale = (width - margin - 20) / max(trace.makespan, 1e-12)
    body: List[str] = [
        f'<text x="{margin}" y="20" font-size="13" '
        f'font-family="monospace">{trace.name} (W = {trace.makespan:.3f} s)</text>'
    ]
    for index, row in enumerate(rows):
        top = margin + index * row_height
        body.append(
            f'<text x="4" y="{top + row_height * 0.6:.1f}" font-size="11" '
            f'font-family="monospace">{row.resource}</text>'
        )
        for segment in row.segments:
            x = margin + segment.start * scale
            bar_width = max(segment.duration * scale, 0.5)
            color = KIND_COLORS[segment.kind]
            body.append(
                f'<rect x="{x:.2f}" y="{top + 4}" width="{bar_width:.2f}" '
                f'height="{row_height - 12}" fill="{color}" stroke="#333" '
                f'stroke-width="0.3"><title>{segment.label}: '
                f"{segment.start:.3f}-{segment.end:.3f}s</title></rect>"
            )
    axis_y = margin + len(rows) * row_height + 8
    body.append(
        f'<line x1="{margin}" y1="{axis_y}" x2="{margin + trace.makespan * scale:.1f}" '
        f'y2="{axis_y}" stroke="#333" stroke-width="1"/>'
    )
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = fraction * trace.makespan
        x = margin + t * scale
        body.append(
            f'<text x="{x:.1f}" y="{axis_y + 16}" font-size="10" '
            f'font-family="monospace" text-anchor="middle">{t:.2f}s</text>'
        )
    legend_x = margin
    for kind, color in KIND_COLORS.items():
        body.append(
            f'<rect x="{legend_x}" y="{axis_y + 26}" width="12" height="12" fill="{color}"/>'
        )
        body.append(
            f'<text x="{legend_x + 16}" y="{axis_y + 36}" font-size="11" '
            f'font-family="monospace">{kind.value}</text>'
        )
        legend_x += 110
    return _document(width, height, body)
