"""Visualization helpers: ASCII terminal plots and standalone SVG."""

from repro.viz.ascii_plot import plot_airfoil, plot_points, plot_series
from repro.viz.charts import bar_chart, comparison_chart
from repro.viz.svg import airfoil_svg, flow_svg, gantt_svg

__all__ = [
    "airfoil_svg",
    "bar_chart",
    "comparison_chart",
    "flow_svg",
    "gantt_svg",
    "plot_airfoil",
    "plot_points",
    "plot_series",
]
