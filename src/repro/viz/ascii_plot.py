"""ASCII rendering of geometry and line series.

The reproduction environment has no plotting stack, so every figure can
be rendered as terminal art (SVG output lives in :mod:`repro.viz.svg`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil


def plot_points(points: np.ndarray, *, width: int = 72, height: int = 18,
                marker: str = "*", connect: bool = False,
                preserve_aspect: bool = True) -> str:
    """Render a 2-D point set (optionally joined) on a character grid."""
    points = pt.as_points(points)
    low, high = pt.bounding_box(points)
    span = np.maximum(high - low, 1e-12)
    if preserve_aspect:
        # Terminal cells are ~2x taller than wide; scale accordingly.
        scale = min((width - 1) / span[0], 2.0 * (height - 1) / span[1])
        x_scale, y_scale = scale, scale / 2.0
    else:
        x_scale = (width - 1) / span[0]
        y_scale = (height - 1) / span[1]
    canvas = [[" "] * width for _ in range(height)]

    def place(point) -> tuple:
        col = int(round((point[0] - low[0]) * x_scale))
        row = height - 1 - int(round((point[1] - low[1]) * y_scale))
        return min(max(row, 0), height - 1), min(max(col, 0), width - 1)

    if connect:
        for a, b in zip(points[:-1], points[1:]):
            steps = max(2, int(np.hypot(*(b - a)) * max(x_scale, y_scale)) + 1)
            for t in np.linspace(0.0, 1.0, steps):
                row, col = place(a + t * (b - a))
                canvas[row][col] = marker
    for point in points:
        row, col = place(point)
        canvas[row][col] = marker
    return "\n".join("".join(line).rstrip() for line in canvas)


def plot_airfoil(airfoil: Airfoil, *, width: int = 72, height: int = 14,
                 show_control_points: bool = False) -> str:
    """Render an airfoil outline (Figure 1 style)."""
    art = plot_points(airfoil.points, width=width, height=height,
                      marker="#", connect=True)
    if show_control_points:
        lines = art.split("\n")
        overlay = plot_points(airfoil.control_points, width=width,
                              height=height, marker="o").split("\n")
        merged = []
        for base, over in zip(lines, overlay):
            row = list(base.ljust(width))
            for index, char in enumerate(over):
                if char != " ":
                    row[index] = char
            merged.append("".join(row).rstrip())
        art = "\n".join(merged)
    return f"{airfoil.name} ({airfoil.n_panels} panels)\n{art}"


def plot_series(x: Sequence[float], y: Sequence[float], *, width: int = 72,
                height: int = 16, title: str = "", marker: str = "*") -> str:
    """Render an ``y(x)`` series with axis annotations."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    body = plot_points(np.column_stack([x, y]), width=width, height=height,
                       marker=marker, connect=True, preserve_aspect=False)
    header = title or "series"
    footer = (f"x: [{x.min():.4g}, {x.max():.4g}]   "
              f"y: [{y.min():.4g}, {y.max():.4g}]")
    return f"{header}\n{body}\n{footer}"
