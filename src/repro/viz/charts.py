"""ASCII charts for terminal reports: bar charts and comparisons.

Used by the experiment reports to show magnitudes at a glance without a
plotting stack — e.g. wall times or joules per configuration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def bar_chart(values: Dict[str, float], *, width: int = 50,
              title: str = "", unit: str = "",
              reference: Optional[str] = None) -> str:
    """Horizontal ASCII bar chart of labelled non-negative values.

    ``reference`` names an entry to annotate the others against
    (printed as a ratio), e.g. the CPU baseline.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if any(value < 0 for value in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    largest = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    reference_value = values.get(reference) if reference else None
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, round(width * value / largest)) if value else ""
        note = ""
        if reference_value:
            note = f"  ({value / reference_value:.2f}x {reference})"
            if label == reference:
                note = "  (reference)"
        lines.append(
            f"{label:>{label_width}} |{bar:<{width}}| "
            f"{value:.3g}{(' ' + unit) if unit else ''}{note}"
        )
    return "\n".join(lines)


def comparison_chart(simulated: Dict[str, float], paper: Dict[str, float], *,
                     width: int = 40, title: str = "") -> str:
    """Paired bars: simulated (``#``) vs paper (``=``) per label."""
    labels = [label for label in simulated if label in paper]
    if not labels:
        raise ValueError("no common labels to compare")
    largest = max(max(simulated[label], paper[label]) for label in labels) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label in labels:
        sim_bar = "#" * max(1, round(width * simulated[label] / largest))
        paper_bar = "=" * max(1, round(width * paper[label] / largest))
        lines.append(f"{label:>{label_width}} sim   |{sim_bar:<{width}}| "
                     f"{simulated[label]:.3g}")
        lines.append(f"{'':>{label_width}} paper |{paper_bar:<{width}}| "
                     f"{paper[label]:.3g}")
    lines.append(f"{'':>{label_width}} legend: # simulated, = paper")
    return "\n".join(lines)
