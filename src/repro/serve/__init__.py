"""repro.serve: the batched airfoil-evaluation service.

Turns the library's batched panel solver into a long-running request
path: a dynamic micro-batcher coalesces concurrent analyze requests
into stacks for the batched LU kernels, a genome-keyed LRU cache
short-circuits repeats, a bounded worker pool sheds load instead of
melting, and a stdlib-only HTTP front end exposes the whole thing as
``python -m repro serve``.

Requests are first-class citizens with a lifecycle: each may carry a
deadline (``X-Repro-Deadline-Ms`` header / ``deadline_ms`` field) and
is dropped at batch-collection time — answered 504, never costing a
solve — once that deadline expires; a timed-out or disconnected
submitter detaches via :meth:`PendingResult.cancel`; and
:class:`ServeClient` can retry shed (503) requests with capped
exponential backoff and full jitter.

The path is observable end to end: every request carries an ID
(``X-Repro-Request-Id``, accepted or generated) and, when sampled,
a span tree recording queue wait, batch collect, cache lookup,
assembly, solve, and serialization.  ``/metrics`` reduces live spans
to the paper's W/A/L/O stage vocabulary (JSON or Prometheus text via
``?format=prometheus`` / ``/metrics/prometheus``), ``/debug/trace``
renders recent requests as an ASCII Gantt, and a structured logger
emits one line per request completion, failure, or shed.

Quickstart (in-process)::

    from repro.serve import AnalysisService

    with AnalysisService(max_batch=16, max_wait=0.002) as service:
        record = service.analyze({"airfoil": "2412", "alpha_degrees": 4.0})
        print(record["cl"], service.metrics_snapshot()["cache"])

Quickstart (over HTTP)::

    from repro.serve import AnalysisService, ServeClient, start_server

    service = AnalysisService()
    server = start_server(service)  # ephemeral port
    client = ServeClient(port=server.port)
    print(client.analyze("2412", 4.0)["cl"])
    server.stop(); service.close()

See ``docs/serving.md`` for architecture and tuning.
"""

from repro.serve.batcher import BatchPolicy, collect_batch, suggested_policy
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.http import AnalysisHTTPServer, start_server
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import AnalysisService
from repro.serve.tracing import Tracer
from repro.serve.workers import PendingResult, WorkerPool

__all__ = [
    "AnalysisHTTPServer",
    "AnalysisService",
    "BatchPolicy",
    "PendingResult",
    "ResultCache",
    "ServeClient",
    "ServiceMetrics",
    "Tracer",
    "WorkerPool",
    "collect_batch",
    "start_server",
    "suggested_policy",
]
