"""Genome-keyed LRU cache of serialized analysis responses.

Keys come from :meth:`repro.core.api.AnalyzeRequest.cache_key` — a
digest of the discretized geometry plus the flow and solver
configuration — so two requests hit the same entry exactly when they
would compute the same record.  Values are the wire-format response
dicts, which are never mutated after insertion.

The counters feed the service's ``/metrics`` endpoint.  A lookup that
returns a value counts as a hit, one that returns ``None`` as a miss;
a duplicate coalesced inside one micro-batch is served from the entry
its batchmate just inserted and therefore counts as a hit too.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.errors import ServeError


class ResultCache:
    """A thread-safe LRU mapping of cache keys to response records.

    Parameters
    ----------
    capacity:
        Maximum number of retained entries.  ``0`` disables caching
        (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int = 1024) -> None:
        capacity = int(capacity)
        if capacity < 0:
            raise ServeError(f"cache capacity cannot be negative, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries retained."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Number of lookups that returned a value."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that returned ``None``."""
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries displaced by the LRU policy."""
        with self._lock:
            return self._evictions

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup.

        Numerator and denominator come from one locked snapshot — an
        unlocked read could pair a pre-lookup ``hits`` with a
        post-lookup ``misses`` and report a rate no counter state ever
        had (including one slightly above 1.0).
        """
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """Counted lookup: refreshes recency and updates hit/miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: str) -> Optional[dict]:
        """Uncounted lookup: no recency refresh, no counter updates."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: dict) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        with self._lock:
            if self._capacity == 0:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counter snapshot for the metrics endpoint."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / total if total else 0.0,
            }
