"""Stdlib-only HTTP front end for the analysis service.

Endpoints (all JSON):

* ``POST /analyze`` — one wire-format request; the response body is the
  :func:`repro.core.api.canonical_json` record, byte-identical to the
  CLI's ``analyze --json`` for the same input.
* ``POST /analyze_batch`` — ``{"requests": [...]}``; responds
  ``{"results": [...]}`` with a record or ``{"error", "type"}`` object
  per item, preserving order.
* ``GET /healthz`` — liveness plus queue depth.
* ``GET /metrics`` — the service's counter snapshot.

Requests may carry a deadline: an ``X-Repro-Deadline-Ms`` header, or a
``deadline_ms`` field in the body (most specific wins — the body field
overrides the header, which overrides the service default).  A request
whose deadline expires before evaluation is dropped at batch
collection and answered ``504 Gateway Timeout``.

Error mapping: malformed input → 400, shed load → 503, expired
deadline → 504, unexpected failure → 500.  The server is a
``ThreadingHTTPServer``; every handler thread just blocks on the
service's :class:`PendingResult`, so the micro-batcher sees all
concurrent requests at once.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.core.api import canonical_json, extract_deadline_ms, validate_deadline_ms
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ServeError,
)
from repro.serve.service import AnalysisService

#: Request header carrying the relative deadline budget in milliseconds.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

#: Maximum accepted request body, a guard against memory-exhaustion.
MAX_BODY_BYTES = 1 << 20


class AnalysisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog of 5 resets connections under a
    # concurrent burst — exactly the workload a micro-batcher exists for.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: AnalysisService, *,
                 request_timeout: float = 60.0) -> None:
        super().__init__(address, _AnalysisHandler)
        self.service = service
        self.request_timeout = request_timeout
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with an ephemeral ``port=0`` bind)."""
        return self.server_address[1]

    def start_background(self) -> "AnalysisHTTPServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ServeError("server is already running")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block on the background acceptor thread; True once it exits."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting connections and join the acceptor thread.

        Safe to call before :meth:`start_background` (and idempotent):
        ``BaseServer.shutdown`` waits on an event that only
        ``serve_forever`` sets, so calling it without a running
        acceptor thread would hang forever — when no thread was ever
        started, only the listening socket needs closing.
        """
        if self._thread is None:
            self.server_close()
            return
        self.shutdown()
        self.server_close()
        self._thread.join(timeout)
        self._thread = None


def start_server(service: AnalysisService, *, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float = 60.0) -> AnalysisHTTPServer:
    """Bind and start a background server; ``port=0`` picks a free port."""
    server = AnalysisHTTPServer((host, port), service,
                                request_timeout=request_timeout)
    return server.start_background()


class _AnalysisHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    timeout = 120.0  # socket inactivity guard for keep-alive connections

    # The default handler logs every request to stderr; a serving
    # process under load must not pay for that.
    def log_message(self, format, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "queue_depth": self.server.service.queue_depth,
            })
        elif self.path == "/metrics":
            self._send_json(200, self.server.service.metrics_snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"})

    def do_POST(self) -> None:
        if self.path == "/analyze":
            self._handle_analyze()
        elif self.path == "/analyze_batch":
            self._handle_analyze_batch()
        else:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"})

    def _header_deadline_ms(self) -> Optional[float]:
        """The validated ``X-Repro-Deadline-Ms`` header, if present."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        return validate_deadline_ms(raw)

    def _handle_analyze(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        service = self.server.service
        try:
            payload, deadline_ms = extract_deadline_ms(payload)
            if deadline_ms is None:
                deadline_ms = self._header_deadline_ms()
            result = service.analyze(payload, timeout=self.server.request_timeout,
                                     deadline_ms=deadline_ms)
        except DeadlineExceededError as error:
            self._send_json(504, _error_body(error))
            return
        except OverloadedError as error:
            self._send_json(503, _error_body(error))
            return
        except ReproError as error:
            self._send_json(400, _error_body(error))
            return
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, _error_body(error))
            return
        self._send_body(200, canonical_json(result).encode("utf-8"))

    def _handle_analyze_batch(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            self._send_json(400, {
                "error": "analyze_batch expects {\"requests\": [...]}",
                "type": "ServeError",
            })
            return
        service = self.server.service
        try:
            header_deadline = self._header_deadline_ms()
        except ServeError as error:
            self._send_json(400, _error_body(error))
            return
        # Submit everything before waiting on anything, so the whole
        # HTTP batch can coalesce into as few solve stacks as possible.
        # A per-item deadline_ms field overrides the header deadline.
        pendings = []
        for item in payload["requests"]:
            try:
                pendings.append(service.submit(item, deadline_ms=None)
                                if header_deadline is None
                                else self._submit_with_default(
                                    service, item, header_deadline))
            except ReproError as error:
                pendings.append(error)
        results = []
        for pending in pendings:
            if isinstance(pending, Exception):
                results.append(_error_body(pending))
                continue
            try:
                results.append(pending.result(timeout=self.server.request_timeout))
            except ReproError as error:
                pending.cancel()  # detach so the worker drops the job
                results.append(_error_body(error))
        self._send_json(200, {"results": results})

    @staticmethod
    def _submit_with_default(service, item, header_deadline: float):
        """Submit one batch item under the header deadline, unless the
        item carries its own ``deadline_ms`` field."""
        if isinstance(item, dict):
            item, item_deadline = extract_deadline_ms(item)
            if item_deadline is not None:
                return service.submit(item, deadline_ms=item_deadline)
        return service.submit(item, deadline_ms=header_deadline)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized request body",
                                  "type": "ServeError"})
            return None
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}",
                                  "type": "ServeError"})
            return None

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_body(status, canonical_json(payload).encode("utf-8"))

    def _send_body(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def _error_body(error: BaseException) -> dict:
    return {"error": str(error), "type": type(error).__name__}
