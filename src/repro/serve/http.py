"""Stdlib-only HTTP front end for the analysis service.

Endpoints:

* ``POST /analyze`` — one wire-format request; the response body is the
  :func:`repro.core.api.canonical_json` record, byte-identical to the
  CLI's ``analyze --json`` for the same input.
* ``POST /analyze_batch`` — ``{"requests": [...]}``; responds
  ``{"request_id", "results": [...]}`` with a record or
  ``{"error", "type"}`` object per item, preserving order.
* ``GET /healthz`` — liveness plus queue depth.
* ``GET /metrics`` — the service's counter snapshot (JSON), including
  the live W/A/L/O ``stages`` section; ``?format=prometheus`` or the
  ``/metrics/prometheus`` alias return text exposition format instead.
* ``GET /debug/trace?n=K`` — ASCII Gantt of the last ``K`` completed
  request traces (``?format=json`` for span trees).
* ``GET /debug/trace/<trace_id>`` — one retained span tree by id (the
  lookup the cluster router stitches distributed traces from).
* ``GET /debug/autotune`` — the autotuner's latest calibration, sweep
  table, and decision journal (404 unless ``--autotune`` is on;
  ``?format=ascii`` for the rendered table).  See ``docs/autotune.md``.

Every request gets a request ID — accepted via ``X-Repro-Request-Id``
or generated — which is echoed in the ``X-Repro-Request-Id`` response
header, in error bodies, and in the ``/analyze_batch`` wrapper.  The
*successful* ``/analyze`` body never carries it: that body is the
canonical analysis record, and staying byte-identical to the CLI's
``--json`` output (and to the untraced path) is a contract.  An
``X-Repro-Trace`` header (see :mod:`repro.obs.context`) propagates a
distributed trace: its head-based sampling decision overrides the
local sampler and the span tree is recorded under the propagated
trace id — never changing a single response byte.

Requests may carry a deadline: an ``X-Repro-Deadline-Ms`` header, or a
``deadline_ms`` field in the body (most specific wins — the body field
overrides the header, which overrides the service default).  A request
whose deadline expires before evaluation is dropped at batch
collection and answered ``504 Gateway Timeout``.

Error mapping: malformed input → 400, shed load → 503, expired
deadline → 504, unexpected failure → 500.  The server is a
``ThreadingHTTPServer``; every handler thread just blocks on the
service's :class:`PendingResult`, so the micro-batcher sees all
concurrent requests at once.  The default per-line stderr access log
stays disabled — the service's structured logger emits one JSON line
per request outcome instead (see :mod:`repro.obs.logging`), which is
what a serving process under load can actually afford.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.core.api import canonical_json, extract_deadline_ms, validate_deadline_ms
from repro.errors import (
    DeadlineExceededError,
    JobNotFoundError,
    OverloadedError,
    ReproError,
    ServeError,
)
from repro.obs.context import TRACE_HEADER, maybe_parse_trace_header
from repro.obs.ids import REQUEST_ID_HEADER, coerce_request_id
from repro.obs.prometheus import render_prometheus
from repro.serve.service import AnalysisService

#: Request header carrying the relative deadline budget in milliseconds.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

#: Maximum accepted request body, a guard against memory-exhaustion.
MAX_BODY_BYTES = 1 << 20

#: Default number of traces rendered by ``/debug/trace``.
DEFAULT_TRACE_COUNT = 16


class AnalysisHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog of 5 resets connections under a
    # concurrent burst — exactly the workload a micro-batcher exists for.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: AnalysisService, *,
                 request_timeout: float = 60.0) -> None:
        super().__init__(address, _AnalysisHandler)
        self.service = service
        self.request_timeout = request_timeout
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with an ephemeral ``port=0`` bind)."""
        return self.server_address[1]

    def start_background(self) -> "AnalysisHTTPServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ServeError("server is already running")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block on the background acceptor thread; True once it exits."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting connections and join the acceptor thread.

        Safe to call before :meth:`start_background` (and idempotent):
        ``BaseServer.shutdown`` waits on an event that only
        ``serve_forever`` sets, so calling it without a running
        acceptor thread would hang forever — when no thread was ever
        started, only the listening socket needs closing.
        """
        if self._thread is None:
            self.server_close()
            return
        self.shutdown()
        self.server_close()
        self._thread.join(timeout)
        self._thread = None


def start_server(service: AnalysisService, *, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float = 60.0) -> AnalysisHTTPServer:
    """Bind and start a background server; ``port=0`` picks a free port."""
    server = AnalysisHTTPServer((host, port), service,
                                request_timeout=request_timeout)
    return server.start_background()


class _AnalysisHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    timeout = 120.0  # socket inactivity guard for keep-alive connections

    # The default handler writes a per-request access line to stderr; a
    # serving process under load must not pay for that.  Request-level
    # visibility comes from the service's structured logger instead
    # (one JSON line per outcome, with request ID and stage breakdown).
    def log_message(self, format, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        parts = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parts.query)
        route = parts.path
        if route == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "queue_depth": self.server.service.queue_depth,
            })
        elif route == "/metrics":
            self._handle_metrics(query)
        elif route == "/metrics/prometheus":
            self._handle_metrics({"format": ["prometheus"]})
        elif route == "/debug/trace":
            self._handle_debug_trace(query)
        elif route.startswith("/debug/trace/"):
            self._handle_debug_trace_lookup(route)
        elif route == "/debug/autotune":
            self._handle_debug_autotune(query)
        elif route == "/jobs" or route.startswith("/jobs/"):
            self._handle_jobs_get(route, query)
        else:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"})

    def do_POST(self) -> None:
        route = urllib.parse.urlsplit(self.path).path
        if route == "/analyze":
            self._handle_analyze()
        elif route == "/analyze_batch":
            self._handle_analyze_batch()
        elif route == "/jobs":
            self._handle_jobs_submit()
        elif route.startswith("/jobs/") and route.endswith("/cancel"):
            self._handle_job_cancel(route)
        else:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"})

    def _handle_metrics(self, query: dict) -> None:
        snapshot = self.server.service.metrics_snapshot()
        fmt = query.get("format", ["json"])[-1]
        if fmt == "prometheus":
            body = render_prometheus(snapshot).encode("utf-8")
            self._send_body(200, body,
                            content_type="text/plain; version=0.0.4; charset=utf-8")
        elif fmt == "json":
            self._send_json(200, snapshot)
        else:
            self._send_json(400, {
                "error": f"unknown metrics format {fmt!r} "
                         "(expected 'json' or 'prometheus')",
                "type": "ServeError",
            })

    def _handle_debug_trace(self, query: dict) -> None:
        service = self.server.service
        try:
            count = int(query.get("n", [DEFAULT_TRACE_COUNT])[-1])
        except ValueError:
            self._send_json(400, {"error": "n must be an integer",
                                  "type": "ServeError"})
            return
        count = max(0, count)
        fmt = query.get("format", ["ascii"])[-1]
        if fmt == "json":
            traces = [trace.to_dict() for trace in service.recent_traces(count)]
            self._send_json(200, {"traces": traces})
        elif fmt == "ascii":
            body = service.render_trace(count).encode("utf-8")
            self._send_body(200, body,
                            content_type="text/plain; charset=utf-8")
        else:
            self._send_json(400, {
                "error": f"unknown trace format {fmt!r} "
                         "(expected 'ascii' or 'json')",
                "type": "ServeError",
            })

    def _handle_debug_autotune(self, query: dict) -> None:
        """``GET /debug/autotune`` — latest sweep, calibration, journal.

        404s when the service was started without ``--autotune``; JSON
        by default, ``?format=ascii`` renders the sweep table.
        """
        autotuner = self.server.service.autotuner
        if autotuner is None:
            self._send_json(404, {"error": "autotuning is not enabled "
                                           "(start with --autotune)",
                                  "type": "NotFound"})
            return
        fmt = query.get("format", ["json"])[-1]
        if fmt == "json":
            self._send_json(200, autotuner.debug_document())
        elif fmt == "ascii":
            self._send_body(200, autotuner.render_table().encode("utf-8"),
                            content_type="text/plain; charset=utf-8")
        else:
            self._send_json(400, {
                "error": f"unknown autotune format {fmt!r} "
                         "(expected 'json' or 'ascii')",
                "type": "ServeError",
            })

    def _handle_debug_trace_lookup(self, route: str) -> None:
        """``GET /debug/trace/<trace_id>`` — one retained span tree.

        The cluster router pulls a replica's half of a distributed
        trace through this route and stitches it into the cluster-wide
        tree; ``monotonic_now`` lets the puller re-anchor the trace's
        monotonic timestamps against its own clock.
        """
        trace_id = route[len("/debug/trace/"):]
        trace = self.server.service.find_trace(trace_id)
        if trace is None:
            self._send_json(404, {
                "error": f"no retained trace with id {trace_id!r}",
                "type": "TraceNotFound",
            })
            return
        self._send_json(200, {"trace": trace.to_dict(),
                              "monotonic_now": time.monotonic()})

    # ------------------------------------------------------------------
    # Jobs routes
    # ------------------------------------------------------------------

    def _jobs_runner(self, request_id: Optional[str] = None):
        """The service's job runner, or ``None`` after sending a 404."""
        runner = self.server.service.jobs
        if runner is None:
            self._send_json(404, {
                "error": "jobs are not enabled "
                         "(start the server with --jobs-dir)",
                "type": "JobError",
            }, request_id=request_id)
        return runner

    def _send_job_error(self, error: BaseException,
                        request_id: Optional[str]) -> None:
        if isinstance(error, JobNotFoundError):
            status = 404
        elif isinstance(error, ReproError):
            status = 400
        else:  # pragma: no cover - defensive
            status = 500
        self._send_json(status, _error_body(error, request_id),
                        request_id=request_id)

    def _handle_jobs_get(self, route: str, query: dict) -> None:
        from repro.jobs import json_safe

        request_id = self._header_request_id()
        runner = self._jobs_runner(request_id)
        if runner is None:
            return
        parts = [part for part in route.split("/") if part]
        try:
            if parts == ["jobs"]:
                jobs = [json_safe(record.to_dict(include_result=False))
                        for record in runner.store.list()]
                self._send_json(200, {"jobs": jobs}, request_id=request_id)
            elif len(parts) == 2:
                record = runner.store.get(parts[1])
                self._send_json(200, json_safe(record.to_dict()),
                                request_id=request_id)
            elif len(parts) == 3 and parts[2] == "events":
                try:
                    since = int(query.get("since", [0])[-1])
                except ValueError:
                    raise ServeError("since must be an integer")
                record = runner.store.get(parts[1])
                events = runner.store.events(parts[1], since=since)
                self._send_json(200, {
                    "id": record.id,
                    "state": record.state,
                    "generations_done": record.generations_done,
                    "events": json_safe(events),
                    "next_since": events[-1]["seq"] if events else since,
                }, request_id=request_id)
            else:
                self._send_json(404, {"error": f"unknown path {self.path}",
                                      "type": "NotFound"},
                                request_id=request_id)
        except ReproError as error:
            self._send_job_error(error, request_id)

    def _handle_jobs_submit(self) -> None:
        from repro.jobs import JobSpec, json_safe

        payload = self._read_json()
        if payload is None:
            return
        request_id = self._header_request_id()
        runner = self._jobs_runner(request_id)
        if runner is None:
            return
        # job_key is transport metadata (the idempotency identity of
        # this submission), not part of the spec — peel it off before
        # spec validation, like deadline_ms on the analyze path.
        job_key = None
        if isinstance(payload, dict) and "job_key" in payload:
            payload = dict(payload)
            job_key = payload.pop("job_key")
        try:
            record = runner.submit(JobSpec.from_dict(payload),
                                   job_key=job_key)
        except ReproError as error:
            self._send_job_error(error, request_id)
            return
        self._send_json(200, json_safe(record.to_dict()),
                        request_id=request_id)

    def _handle_job_cancel(self, route: str) -> None:
        from repro.jobs import json_safe

        self._drain_body()
        request_id = self._header_request_id()
        runner = self._jobs_runner(request_id)
        if runner is None:
            return
        parts = [part for part in route.split("/") if part]
        if len(parts) != 3:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"}, request_id=request_id)
            return
        try:
            record = runner.cancel(parts[1])
        except ReproError as error:
            self._send_job_error(error, request_id)
            return
        self._send_json(200, json_safe(record.to_dict(include_result=False)),
                        request_id=request_id)

    def _header_deadline_ms(self) -> Optional[float]:
        """The validated ``X-Repro-Deadline-Ms`` header, if present."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        return validate_deadline_ms(raw)

    def _header_request_id(self) -> str:
        """The validated ``X-Repro-Request-Id`` header, or a fresh ID."""
        return coerce_request_id(self.headers.get(REQUEST_ID_HEADER))

    def _header_trace_context(self):
        """The validated ``X-Repro-Trace`` header, or ``None``."""
        return maybe_parse_trace_header(self.headers.get(TRACE_HEADER))

    def _handle_analyze(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        service = self.server.service
        request_id = None
        try:
            request_id = self._header_request_id()
            trace_context = self._header_trace_context()
            payload, deadline_ms = extract_deadline_ms(payload)
            if deadline_ms is None:
                deadline_ms = self._header_deadline_ms()
            result = service.analyze(payload, timeout=self.server.request_timeout,
                                     deadline_ms=deadline_ms,
                                     request_id=request_id,
                                     trace_context=trace_context)
        except DeadlineExceededError as error:
            self._send_json(504, _error_body(error, request_id),
                            request_id=request_id)
            return
        except OverloadedError as error:
            self._send_json(503, _error_body(error, request_id),
                            request_id=request_id)
            return
        except ReproError as error:
            self._send_json(400, _error_body(error, request_id),
                            request_id=request_id)
            return
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, _error_body(error, request_id),
                            request_id=request_id)
            return
        self._send_body(200, canonical_json(result).encode("utf-8"),
                        request_id=request_id)

    def _handle_analyze_batch(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            self._send_json(400, {
                "error": "analyze_batch expects {\"requests\": [...]}",
                "type": "ServeError",
            })
            return
        service = self.server.service
        try:
            request_id = self._header_request_id()
            trace_context = self._header_trace_context()
            header_deadline = self._header_deadline_ms()
        except ServeError as error:
            self._send_json(400, _error_body(error))
            return
        # Submit everything before waiting on anything, so the whole
        # HTTP batch can coalesce into as few solve stacks as possible.
        # A per-item deadline_ms field overrides the header deadline;
        # the batch's single request ID tags every item.
        pendings = []
        for item in payload["requests"]:
            try:
                pendings.append(
                    self._submit_item(service, item, header_deadline,
                                      request_id, trace_context))
            except ReproError as error:
                pendings.append(error)
        results = []
        for pending in pendings:
            if isinstance(pending, Exception):
                results.append(_error_body(pending))
                continue
            try:
                results.append(pending.result(timeout=self.server.request_timeout))
            except ReproError as error:
                pending.cancel()  # detach so the worker drops the job
                results.append(_error_body(error))
        self._send_json(200, {"request_id": request_id, "results": results},
                        request_id=request_id)

    @staticmethod
    def _submit_item(service, item, header_deadline: Optional[float],
                     request_id: str, trace_context=None):
        """Submit one batch item; a per-item ``deadline_ms`` field
        overrides the header deadline."""
        if header_deadline is not None and isinstance(item, dict):
            item, item_deadline = extract_deadline_ms(item)
            if item_deadline is not None:
                header_deadline = item_deadline
        return service.submit(item, deadline_ms=header_deadline,
                              request_id=request_id,
                              trace_context=trace_context)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _drain_body(self) -> None:
        """Read and discard a request body (keep-alive hygiene for
        endpoints that take no input, like ``/jobs/<id>/cancel``)."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized request body",
                                  "type": "ServeError"})
            return None
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}",
                                  "type": "ServeError"})
            return None

    def _send_json(self, status: int, payload: dict, *,
                   request_id: Optional[str] = None) -> None:
        self._send_body(status, canonical_json(payload).encode("utf-8"),
                        request_id=request_id)

    def _send_body(self, status: int, body: bytes, *,
                   content_type: str = "application/json",
                   request_id: Optional[str] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header(REQUEST_ID_HEADER, request_id)
        self.end_headers()
        self.wfile.write(body)


def _error_body(error: BaseException,
                request_id: Optional[str] = None) -> dict:
    body = {"error": str(error), "type": type(error).__name__}
    if request_id is not None:
        body["request_id"] = request_id
    return body
