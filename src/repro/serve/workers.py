"""Worker pool with bounded admission and graceful drain.

The pool owns the service's only queue.  Admission is a non-blocking
``put``: when the queue is full the request is *shed* with
:class:`~repro.errors.OverloadedError` instead of building an unbounded
backlog — the paper's pipeline keeps every resource busy precisely
because it never lets work pile up faster than the solver drains it,
and a service under overload should say so rather than time out.

Shutdown is graceful by construction: the drain flag stops new
admissions, a sentinel is enqueued *behind* every accepted request
(FIFO), and each worker that draws the sentinel pushes it back for its
siblings before exiting.  Everything admitted before ``shutdown`` is
therefore still processed.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Callable, List, Optional

from repro.errors import OverloadedError, ServeError
from repro.serve.batcher import BatchPolicy, collect_batch

#: Queue marker that tells workers to exit.
_SENTINEL = object()


class PendingResult:
    """A write-once slot a submitter blocks on.

    Workers call :meth:`resolve` or :meth:`fail`; the submitting thread
    calls :meth:`result`, which re-raises a failure in its own context.
    """

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def resolve(self, value) -> None:
        """Deliver a successful result (first write wins)."""
        if not self._event.is_set():
            self._value = value
            self._event.set()

    def fail(self, error: BaseException) -> None:
        """Deliver a failure (first write wins)."""
        if not self._event.is_set():
            self._error = error
            self._event.set()

    def done(self) -> bool:
        """True once a result or failure has been delivered."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block for the outcome; raise it if it was a failure."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"timed out after {timeout}s waiting for an analysis result"
            )
        if self._error is not None:
            raise self._error
        return self._value


class WorkerPool:
    """Micro-batching workers over one bounded queue.

    Parameters
    ----------
    process:
        Callable invoked with each coalesced micro-batch (a list of
        submitted items).  It must resolve every item itself and should
        not raise; anything it does raise goes to *on_error*.
    policy:
        The :class:`BatchPolicy` workers coalesce under.
    n_workers:
        Worker thread count.  One worker maximizes coalescing; more
        overlap post-processing of separate batches.
    queue_limit:
        Admission bound — the most requests allowed to wait.
    on_error:
        Called as ``on_error(items, exception)`` when *process* raises,
        so the owner can fail the affected items; by default the error
        is re-raised into the worker thread (killing it), so services
        should always pass a handler.
    """

    def __init__(self, process: Callable[[List], None],
                 policy: Optional[BatchPolicy] = None, *,
                 n_workers: int = 2, queue_limit: int = 256,
                 name: str = "repro-serve",
                 on_error: Optional[Callable[[List, BaseException], None]] = None):
        if int(n_workers) < 1:
            raise ServeError(f"n_workers must be at least 1, got {n_workers}")
        if int(queue_limit) < 1:
            raise ServeError(f"queue_limit must be at least 1, got {queue_limit}")
        self._process = process
        self._policy = policy or BatchPolicy()
        self._queue: queue_module.Queue = queue_module.Queue(maxsize=int(queue_limit))
        self._queue_limit = int(queue_limit)
        self._on_error = on_error
        self._draining = threading.Event()
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-worker-{index}",
                             daemon=True)
            for index in range(int(n_workers))
        ]
        for thread in self._threads:
            thread.start()

    @property
    def policy(self) -> BatchPolicy:
        """The batching policy workers coalesce under."""
        return self._policy

    @property
    def queue_limit(self) -> int:
        """The admission bound."""
        return self._queue_limit

    @property
    def queue_depth(self) -> int:
        """Approximate number of requests waiting (racy by nature)."""
        return self._queue.qsize()

    @property
    def draining(self) -> bool:
        """True once shutdown has begun; submissions are refused."""
        return self._draining.is_set()

    def submit(self, item) -> None:
        """Admit one item, or shed it.

        Raises :class:`ServeError` while draining and
        :class:`OverloadedError` when the queue is full.
        """
        if self._draining.is_set():
            raise ServeError("service is shutting down; request refused")
        try:
            self._queue.put_nowait(item)
        except queue_module.Full:
            raise OverloadedError(
                f"service overloaded: {self._queue_limit} requests already "
                "queued; retry with backoff"
            )

    def shutdown(self, timeout: float = 10.0) -> bool:
        """Drain accepted work, stop the workers, and join them.

        Returns True when every worker exited within *timeout*.
        Idempotent: later calls just re-join.
        """
        self._draining.set()
        self._queue.put(_SENTINEL)  # lands behind all admitted work
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        return not any(thread.is_alive() for thread in self._threads)

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SENTINEL:
                self._queue.put(_SENTINEL)  # wake the next worker
                return
            items, saw_sentinel = collect_batch(
                self._queue, first, self._policy, sentinel=_SENTINEL
            )
            try:
                self._process(items)
            except BaseException as error:  # keep the worker alive
                if self._on_error is None:
                    raise
                self._on_error(items, error)
            if saw_sentinel:
                return
