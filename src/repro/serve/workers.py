"""Worker pool with bounded admission and graceful drain.

The pool owns the service's only queue.  Admission is a non-blocking
``put``: when the queue is full the request is *shed* with
:class:`~repro.errors.OverloadedError` instead of building an unbounded
backlog — the paper's pipeline keeps every resource busy precisely
because it never lets work pile up faster than the solver drains it,
and a service under overload should say so rather than time out.

Shutdown is graceful by construction: the drain flag stops new
admissions, a sentinel is enqueued *behind* every accepted request
(FIFO), and each worker that draws the sentinel pushes it back for its
siblings before exiting.  Everything admitted before ``shutdown`` is
therefore still processed.  Admission and drain share one lock, so a
request can never slip in behind the sentinel, and the sentinel put is
bounded by the shutdown timeout, so a wedged queue reports failure
instead of deadlocking.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Callable, List, Optional

from repro.errors import OverloadedError, ServeError
from repro.serve.batcher import BatchPolicy, collect_batch

#: Queue marker that tells workers to exit.
_SENTINEL = object()


class PendingResult:
    """A write-once slot a submitter blocks on.

    Workers call :meth:`resolve` or :meth:`fail`; the submitting thread
    calls :meth:`result`, which re-raises a failure in its own context,
    or :meth:`cancel` to detach (a timed-out or disconnected submitter
    that no longer wants the answer).  Exactly one of the three writes
    wins; the writers learn which from the boolean return value.
    """

    __slots__ = ("_event", "_lock", "_value", "_error", "_cancelled",
                 "request_id")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._value = None
        self._error: Optional[BaseException] = None
        self._cancelled = False
        #: Request ID assigned at admission (set by the service), so
        #: front ends can echo it even for instantly-resolved waiters.
        self.request_id: Optional[str] = None

    def resolve(self, value) -> bool:
        """Deliver a successful result; True if this write won."""
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def fail(self, error: BaseException) -> bool:
        """Deliver a failure; True if this write won."""
        with self._lock:
            if self._event.is_set():
                return False
            self._error = error
            self._event.set()
            return True

    def cancel(self) -> bool:
        """Detach from the outcome; True if nothing had been delivered.

        After a successful cancel the submitter is gone: a later
        :meth:`resolve`/:meth:`fail` is a no-op (and returns False), so
        workers can use that return value to account for answers nobody
        is waiting on, and batch collection can drop the item outright.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._cancelled = True
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        """True once the submitter has detached via :meth:`cancel`."""
        return self._cancelled

    def done(self) -> bool:
        """True once a result, failure, or cancellation has landed."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block for the outcome; raise it if it was a failure.

        A failure is re-raised as a *fresh per-call instance* chained to
        the original (``raise ... from``): one batch failure fans out to
        many waiters, and concurrently raising the same exception object
        in several threads garbles its traceback for all of them.
        """
        if not self._event.wait(timeout):
            raise ServeError(
                f"timed out after {timeout}s waiting for an analysis result"
            )
        if self._cancelled:
            raise ServeError("request was cancelled by its submitter")
        if self._error is not None:
            original = self._error
            try:
                clone = type(original)(*original.args)
            except Exception:
                clone = ServeError(f"{type(original).__name__}: {original}")
            raise clone from original
        return self._value


class WorkerPool:
    """Micro-batching workers over one bounded queue.

    Parameters
    ----------
    process:
        Callable invoked with each coalesced micro-batch (a list of
        submitted items).  It must resolve every item itself and should
        not raise; anything it does raise goes to *on_error*.
    policy:
        The :class:`BatchPolicy` workers coalesce under.
    n_workers:
        Worker thread count.  One worker maximizes coalescing; more
        overlap post-processing of separate batches.
    queue_limit:
        Admission bound — the most requests allowed to wait.
    on_error:
        Called as ``on_error(items, exception)`` when *process* raises,
        so the owner can fail the affected items; by default the error
        is re-raised into the worker thread (killing it), so services
        should always pass a handler.
    drop:
        Optional predicate consulted for every dequeued item before it
        joins a batch (see :func:`~repro.serve.batcher.collect_batch`).
        Return True to discard the item; the callable owns any waiter
        notification and accounting for what it drops.
    on_admit:
        Optional callback invoked with every item the moment it joins
        a forming batch — the tracing stamp that ends the item's queue
        wait.  Must be cheap and must not raise.
    enqueued_at:
        Optional callable mapping an item to the monotonic stamp at
        which it was enqueued; batch collection anchors its flush
        deadline there, so ``max_wait`` bounds the oldest item's total
        wait rather than restarting when a worker picks the batch up
        (see :func:`~repro.serve.batcher.collect_batch`).
    """

    def __init__(self, process: Callable[[List], None],
                 policy: Optional[BatchPolicy] = None, *,
                 n_workers: int = 2, queue_limit: int = 256,
                 name: str = "repro-serve",
                 on_error: Optional[Callable[[List, BaseException], None]] = None,
                 drop: Optional[Callable[[object], bool]] = None,
                 on_admit: Optional[Callable[[object], None]] = None,
                 enqueued_at: Optional[Callable[[object], float]] = None):
        if int(n_workers) < 1:
            raise ServeError(f"n_workers must be at least 1, got {n_workers}")
        if int(queue_limit) < 1:
            raise ServeError(f"queue_limit must be at least 1, got {queue_limit}")
        self._process = process
        self._policy = policy or BatchPolicy()
        self._queue: queue_module.Queue = queue_module.Queue(maxsize=int(queue_limit))
        self._queue_limit = int(queue_limit)
        self._on_error = on_error
        self._drop = drop
        self._on_admit = on_admit
        self._enqueued_at = enqueued_at
        self._draining = threading.Event()
        # Guards the check-drain-then-enqueue pair in submit() against a
        # concurrent shutdown(): without it the sentinel can land between
        # the check and the put, stranding the item behind the sentinel.
        self._admission_lock = threading.Lock()
        self._sentinel_placed = False
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-worker-{index}",
                             daemon=True)
            for index in range(int(n_workers))
        ]
        for thread in self._threads:
            thread.start()

    @property
    def policy(self) -> BatchPolicy:
        """The batching policy workers coalesce under."""
        return self._policy

    def set_policy(self, policy: BatchPolicy) -> None:
        """Swap the batching policy (the autotuner's apply path).

        Workers read ``self._policy`` once per batch collection, so the
        swap is atomic at batch granularity — in-flight batches finish
        under the old policy, the next collection uses the new one.
        Refused while draining: shutdown semantics were negotiated under
        the old policy.
        """
        if not isinstance(policy, BatchPolicy):
            raise ServeError(
                f"set_policy needs a BatchPolicy, got {type(policy).__name__}"
            )
        with self._admission_lock:
            if self._draining.is_set():
                raise ServeError("cannot retune a draining pool")
            self._policy = policy

    @property
    def n_workers(self) -> int:
        """Number of worker threads."""
        return len(self._threads)

    @property
    def queue_limit(self) -> int:
        """The admission bound."""
        return self._queue_limit

    @property
    def queue_depth(self) -> int:
        """Approximate number of requests waiting (racy by nature)."""
        return self._queue.qsize()

    @property
    def draining(self) -> bool:
        """True once shutdown has begun; submissions are refused."""
        return self._draining.is_set()

    def submit(self, item) -> None:
        """Admit one item, or shed it.

        Raises :class:`ServeError` while draining and
        :class:`OverloadedError` when the queue is full.  The drain
        check and the enqueue are atomic with respect to
        :meth:`shutdown`, so an admitted item always precedes the
        shutdown sentinel in the queue.
        """
        with self._admission_lock:
            if self._draining.is_set():
                raise ServeError("service is shutting down; request refused")
            try:
                self._queue.put_nowait(item)
            except queue_module.Full:
                raise OverloadedError(
                    f"service overloaded: {self._queue_limit} requests already "
                    "queued; retry with backoff"
                )

    def shutdown(self, timeout: float = 10.0) -> bool:
        """Drain accepted work, stop the workers, and join them.

        Returns True when the sentinel was placed and every worker
        exited within *timeout*; False means the pool is wedged (for
        example dead workers behind a full queue) and the caller should
        not trust that accepted work was completed.  Idempotent: later
        calls re-join, and re-attempt sentinel placement if an earlier
        call failed to place it.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._admission_lock:
            self._draining.set()
        if not self._sentinel_placed:
            # Bounded put: with dead workers behind a full queue an
            # unbounded put would deadlock forever and ignore *timeout*.
            try:
                self._queue.put(_SENTINEL,
                                timeout=max(0.0, deadline - time.monotonic()))
                self._sentinel_placed = True
            except queue_module.Full:
                return False
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        return not any(thread.is_alive() for thread in self._threads)

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SENTINEL:
                self._queue.put(_SENTINEL)  # wake the next worker
                return
            items, saw_sentinel = collect_batch(
                self._queue, first, self._policy, sentinel=_SENTINEL,
                drop=self._drop, on_admit=self._on_admit,
                enqueued_at=self._enqueued_at,
            )
            if items:
                try:
                    self._process(items)
                except BaseException as error:  # keep the worker alive
                    if self._on_error is None:
                        raise
                    self._on_error(items, error)
            if saw_sentinel:
                return
