"""Synchronous stdlib-only client for the serve HTTP API.

Used by the end-to-end tests and the serving benchmark; also a
reasonable template for real callers.  Transport failures and non-2xx
responses surface as :class:`~repro.errors.ServeError`
(:class:`~repro.errors.OverloadedError` for 503 and
:class:`~repro.errors.DeadlineExceededError` for 504, so callers can
tell "back off and retry" apart from "too late to bother").

Two lifecycle features mirror the server side:

* **Deadlines** — every call accepts ``deadline_ms``, sent as the
  ``X-Repro-Deadline-Ms`` header; the server sheds the request with
  504 if it cannot start evaluating it within that budget.
* **Retry** — when constructed with ``retries > 0`` the client retries
  shed (503) requests with capped exponential backoff and full jitter.
  Only 503 is retried: analyze calls are pure, so resubmitting is
  safe, but a 504 means the caller's budget is already spent and a 400
  will never succeed.

Transport is a pool of **keep-alive connections** (one per calling
thread) rather than a fresh TCP connection per request: the cluster
router proxies every request through a client, so per-request
connect/teardown would be a real hot-path tax.  A connection the
server dropped between requests (keep-alive idle timeout, restart) is
detected by the stale-connection error family and transparently
retried exactly once on a fresh connection — counted in
:attr:`ServeClient.reconnects`.  Note the retried request may have
been *received* by the dying server; analyze calls are pure so this
is safe, and job submissions should carry a ``job_key`` so a replay
is idempotent (see ``docs/jobs.md``).

Errors raised from HTTP responses carry the status code on their
``status`` attribute (transport failures carry ``None``), which is
how the cluster router tells retryable failures (503, unreachable)
from genuine rejections (400/404) it must propagate.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.request
from typing import List, Optional, Sequence, Union

from repro.core.api import AnalyzeRequest, canonical_json
from repro.errors import DeadlineExceededError, OverloadedError, ServeError
from repro.obs.context import TRACE_HEADER, TraceContext
from repro.obs.ids import REQUEST_ID_HEADER, coerce_request_id

RequestLike = Union[AnalyzeRequest, dict]

#: Request header carrying the relative deadline budget in milliseconds.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint.

    Parameters
    ----------
    timeout:
        Socket-level timeout per HTTP attempt, in seconds.
    retries:
        How many times a 503 (shed load) response is retried before
        :class:`~repro.errors.OverloadedError` propagates.  0 (the
        default) preserves fail-fast behaviour.
    backoff_base, backoff_cap:
        Backoff schedule: attempt *k* sleeps ``uniform(0, min(cap,
        base * 2**k))`` seconds (capped exponential growth with full
        jitter, so a thundering herd of shed clients decorrelates).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout: float = 60.0, retries: int = 0,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0) -> None:
        if int(retries) < 0:
            raise ServeError(f"retries cannot be negative, got {retries}")
        if backoff_base < 0.0 or backoff_cap < 0.0:
            raise ServeError("backoff_base and backoff_cap must be >= 0")
        self.host = host
        self.port = int(port)
        self.base_url = f"http://{host}:{int(port)}"
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        # Injection points so tests can drive the retry loop
        # deterministically without real sleeping.
        self._sleep = time.sleep
        self._uniform = random.uniform
        #: Request ID echoed by the server for the most recent call
        #: (from the ``X-Repro-Request-Id`` response header), or None
        #: before any call / when the server sent none.
        self.last_request_id: Optional[str] = None
        #: Stale keep-alive connections transparently replaced so far.
        self.reconnects = 0
        # Keep-alive connection pool: one connection per calling
        # thread (thread-local), all tracked for close().
        self._local = threading.local()
        self._pool_lock = threading.Lock()
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def analyze(self, airfoil: Union[str, RequestLike], alpha_degrees: float = 0.0,
                *, deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None,
                trace_context: Optional[TraceContext] = None,
                **kwargs) -> dict:
        """``POST /analyze``; accepts a designation plus keywords, an
        :class:`AnalyzeRequest`, or a raw wire-format dict."""
        return json.loads(self.analyze_raw(airfoil, alpha_degrees,
                                           deadline_ms=deadline_ms,
                                           request_id=request_id,
                                           trace_context=trace_context,
                                           **kwargs))

    def analyze_raw(self, airfoil: Union[str, RequestLike],
                    alpha_degrees: float = 0.0, *,
                    deadline_ms: Optional[float] = None,
                    request_id: Optional[str] = None,
                    trace_context: Optional[TraceContext] = None,
                    **kwargs) -> str:
        """Like :meth:`analyze` but returns the raw (canonical) body —
        the bytes the byte-identity contract with the CLI is about.

        ``request_id`` (validated client-side, generated when omitted)
        is sent as the ``X-Repro-Request-Id`` header; the server's echo
        lands in :attr:`last_request_id`.  ``trace_context`` (a
        :class:`~repro.obs.context.TraceContext`) opens or continues a
        distributed trace via the ``X-Repro-Trace`` header.
        """
        payload = _as_payload(airfoil, alpha_degrees, kwargs)
        return self._post("/analyze", payload, deadline_ms=deadline_ms,
                          request_id=request_id,
                          trace_context=trace_context)

    def analyze_batch(self, requests: Sequence[RequestLike], *,
                      deadline_ms: Optional[float] = None,
                      request_id: Optional[str] = None,
                      trace_context: Optional[TraceContext] = None) -> List[dict]:
        """``POST /analyze_batch``; one record or error object per item.

        ``deadline_ms`` applies to every item; an item dict carrying
        its own ``deadline_ms`` field overrides it.  One ``request_id``
        covers the whole batch.
        """
        payload = {"requests": [_as_payload(request, 0.0, {})
                                for request in requests]}
        return json.loads(self._post("/analyze_batch", payload,
                                     deadline_ms=deadline_ms,
                                     request_id=request_id,
                                     trace_context=trace_context))["results"]

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return json.loads(self._get("/metrics"))

    def metrics_prometheus(self) -> str:
        """``GET /metrics/prometheus`` — raw text exposition."""
        return self._get("/metrics/prometheus")

    def debug_trace(self, n: int = 16, fmt: str = "ascii"):
        """``GET /debug/trace`` — recent request Gantt.

        ``fmt='ascii'`` returns the rendered chart as a string;
        ``fmt='json'`` returns the parsed trace list.
        """
        raw = self._get(f"/debug/trace?n={int(n)}&format={fmt}")
        return json.loads(raw) if fmt == "json" else raw

    def debug_trace_by_id(self, trace_id: str) -> dict:
        """``GET /debug/trace/<trace_id>`` — one retained span tree
        (``{"trace": ..., "monotonic_now": ...}``); raises
        :class:`~repro.errors.ServeError` when the id is unknown."""
        return json.loads(self._get(f"/debug/trace/{trace_id}"))

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return json.loads(self._get("/healthz"))

    def cluster_status(self) -> dict:
        """``GET /cluster/status`` (when pointed at a cluster router)."""
        return json.loads(self._get("/cluster/status"))

    def wait_until_ready(self, timeout: float = 5.0) -> dict:
        """Poll ``/healthz`` until the server answers (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit_job(self, spec: dict, *, job_key: Optional[str] = None,
                   request_id: Optional[str] = None) -> dict:
        """``POST /jobs`` — submit an optimization job spec.

        ``job_key`` (optional) makes the submission idempotent: a
        duplicate key returns the already-registered job instead of
        starting a second run, which also makes a keep-alive reconnect
        replay of this POST safe.
        """
        payload = dict(spec)
        if job_key is not None:
            payload["job_key"] = job_key
        return json.loads(self._post("/jobs", payload,
                                     request_id=request_id))

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — every job the server knows about."""
        return json.loads(self._get("/jobs"))["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — full record, result included when done."""
        return json.loads(self._get(f"/jobs/{job_id}"))

    def job_events(self, job_id: str, since: int = 0) -> dict:
        """``GET /jobs/<id>/events?since=N`` — progress events after N."""
        return json.loads(self._get(f"/jobs/{job_id}/events?since={int(since)}"))

    def cancel_job(self, job_id: str, *,
                   request_id: Optional[str] = None) -> dict:
        """``POST /jobs/<id>/cancel`` — request cooperative cancellation."""
        return json.loads(self._post(f"/jobs/{job_id}/cancel", {},
                                     request_id=request_id))

    def wait_job(self, job_id: str, *, timeout: float = 60.0,
                 poll: float = 0.05) -> dict:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state."""
        from repro.jobs import JobState

        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in JobState.TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.1f}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _get(self, path: str) -> str:
        return self._request(urllib.request.Request(self.base_url + path))

    def _post(self, path: str, payload: dict, *,
              deadline_ms: Optional[float] = None,
              request_id: Optional[str] = None,
              trace_context: Optional[TraceContext] = None) -> str:
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers[DEADLINE_HEADER] = repr(float(deadline_ms))
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = coerce_request_id(request_id)
        if trace_context is not None:
            headers[TRACE_HEADER] = trace_context.header_value()
        body = canonical_json(payload).encode("utf-8")
        attempt = 0
        while True:
            request = urllib.request.Request(
                self.base_url + path, data=body, headers=headers,
                method="POST",
            )
            try:
                return self._request(request)
            except OverloadedError:
                if attempt >= self.retries:
                    raise
                self._sleep(self._backoff_delay(attempt))
                attempt += 1

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter capped exponential backoff for retry *attempt*."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return self._uniform(0.0, ceiling)

    def close(self) -> None:
        """Close every pooled keep-alive connection (idempotent)."""
        with self._pool_lock:
            connections, self._connections = self._connections, set()
        for connection in connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _connection(self) -> "http.client.HTTPConnection":
        """This thread's keep-alive connection, created on demand."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
        with self._pool_lock:
            # (Re-)track unconditionally: after close() a thread-local
            # connection survives untracked and http.client would
            # silently reopen it, leaking a socket close() cannot see.
            self._connections.add(connection)
        return connection

    def _discard_connection(self) -> None:
        """Drop this thread's connection (it is stale or broken)."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            return
        self._local.connection = None
        with self._pool_lock:
            self._connections.discard(connection)
        try:
            connection.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    #: Errors meaning "the server dropped a previously good keep-alive
    #: connection" — the one failure mode that is safe and sensible to
    #: retry once on a fresh connection.
    _STALE_CONNECTION_ERRORS = (
        http.client.RemoteDisconnected,
        http.client.BadStatusLine,
        http.client.CannotSendRequest,
        ConnectionResetError,
        ConnectionAbortedError,
        BrokenPipeError,
    )

    def _request(self, request: "urllib.request.Request") -> str:
        """Issue one HTTP exchange over this thread's pooled connection.

        Takes a :class:`urllib.request.Request` as the portable
        description of (method, path, headers, body) — tests inject a
        fake ``_request`` with the same signature — but the transport
        underneath is a persistent :class:`http.client.HTTPConnection`
        reused across calls.  A stale connection (server closed its
        keep-alive side between requests) is replaced and the request
        replayed exactly once.
        """
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(request.get_method(), request.selector,
                                   body=request.data,
                                   headers=dict(request.headers))
                response = connection.getresponse()
                body = response.read()
            except self._STALE_CONNECTION_ERRORS as error:
                self._discard_connection()
                if attempt:
                    raise ServeError(
                        f"connection to {self.base_url} dropped twice: {error}"
                    )
                self.reconnects += 1
                continue
            except OSError as error:
                # Includes refused connections and socket timeouts:
                # the server is unreachable, not merely stale.
                self._discard_connection()
                raise ServeError(f"cannot reach {self.base_url}: {error}")
            except (AttributeError, ValueError) as error:
                # http.client internals raise these when close() lands
                # on another thread mid-exchange.  Closing a shared
                # client is allowed; the in-flight request is simply
                # lost — surface it as a transport failure (no replay:
                # the caller chose to close).
                self._discard_connection()
                raise ServeError(
                    f"connection to {self.base_url} closed concurrently: "
                    f"{error}"
                )
            return self._decode_response(response.status,
                                         response.getheader(REQUEST_ID_HEADER),
                                         body)
        raise AssertionError("unreachable")  # pragma: no cover

    def _decode_response(self, status: int, request_id: Optional[str],
                         body: bytes) -> str:
        self.last_request_id = request_id
        if 200 <= status < 300:
            return body.decode("utf-8")
        text = body.decode("utf-8", errors="replace")
        message = _error_message(text) or f"HTTP {status}"
        if status == 503:
            error: ServeError = OverloadedError(message)
        elif status == 504:
            error = DeadlineExceededError(message)
        else:
            error = ServeError(
                f"server rejected request ({status}): {message}"
            )
        error.status = status
        raise error


def _as_payload(request: Union[str, RequestLike], alpha_degrees: float,
                kwargs: dict) -> dict:
    if isinstance(request, AnalyzeRequest):
        if kwargs:
            raise ServeError("keyword arguments cannot amend an AnalyzeRequest")
        return request.to_dict()
    if isinstance(request, dict):
        if kwargs:
            raise ServeError("keyword arguments cannot amend a dict payload")
        return dict(request)
    return AnalyzeRequest(airfoil=request, alpha_degrees=alpha_degrees,
                          **kwargs).to_dict()


def _error_message(body: str) -> Optional[str]:
    try:
        parsed = json.loads(body)
    except json.JSONDecodeError:
        return None
    if isinstance(parsed, dict):
        return parsed.get("error")
    return None
