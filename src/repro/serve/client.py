"""Synchronous stdlib-only client for the serve HTTP API.

Used by the end-to-end tests and the serving benchmark; also a
reasonable template for real callers.  Transport failures and non-2xx
responses surface as :class:`~repro.errors.ServeError`
(:class:`~repro.errors.OverloadedError` for 503 and
:class:`~repro.errors.DeadlineExceededError` for 504, so callers can
tell "back off and retry" apart from "too late to bother").

Two lifecycle features mirror the server side:

* **Deadlines** — every call accepts ``deadline_ms``, sent as the
  ``X-Repro-Deadline-Ms`` header; the server sheds the request with
  504 if it cannot start evaluating it within that budget.
* **Retry** — when constructed with ``retries > 0`` the client retries
  shed (503) requests with capped exponential backoff and full jitter.
  Only 503 is retried: analyze calls are pure, so resubmitting is
  safe, but a 504 means the caller's budget is already spent and a 400
  will never succeed.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import List, Optional, Sequence, Union

from repro.core.api import AnalyzeRequest, canonical_json
from repro.errors import DeadlineExceededError, OverloadedError, ServeError
from repro.obs.ids import REQUEST_ID_HEADER, coerce_request_id

RequestLike = Union[AnalyzeRequest, dict]

#: Request header carrying the relative deadline budget in milliseconds.
DEADLINE_HEADER = "X-Repro-Deadline-Ms"


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint.

    Parameters
    ----------
    timeout:
        Socket-level timeout per HTTP attempt, in seconds.
    retries:
        How many times a 503 (shed load) response is retried before
        :class:`~repro.errors.OverloadedError` propagates.  0 (the
        default) preserves fail-fast behaviour.
    backoff_base, backoff_cap:
        Backoff schedule: attempt *k* sleeps ``uniform(0, min(cap,
        base * 2**k))`` seconds (capped exponential growth with full
        jitter, so a thundering herd of shed clients decorrelates).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout: float = 60.0, retries: int = 0,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0) -> None:
        if int(retries) < 0:
            raise ServeError(f"retries cannot be negative, got {retries}")
        if backoff_base < 0.0 or backoff_cap < 0.0:
            raise ServeError("backoff_base and backoff_cap must be >= 0")
        self.base_url = f"http://{host}:{int(port)}"
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        # Injection points so tests can drive the retry loop
        # deterministically without real sleeping.
        self._sleep = time.sleep
        self._uniform = random.uniform
        #: Request ID echoed by the server for the most recent call
        #: (from the ``X-Repro-Request-Id`` response header), or None
        #: before any call / when the server sent none.
        self.last_request_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def analyze(self, airfoil: Union[str, RequestLike], alpha_degrees: float = 0.0,
                *, deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None, **kwargs) -> dict:
        """``POST /analyze``; accepts a designation plus keywords, an
        :class:`AnalyzeRequest`, or a raw wire-format dict."""
        return json.loads(self.analyze_raw(airfoil, alpha_degrees,
                                           deadline_ms=deadline_ms,
                                           request_id=request_id, **kwargs))

    def analyze_raw(self, airfoil: Union[str, RequestLike],
                    alpha_degrees: float = 0.0, *,
                    deadline_ms: Optional[float] = None,
                    request_id: Optional[str] = None, **kwargs) -> str:
        """Like :meth:`analyze` but returns the raw (canonical) body —
        the bytes the byte-identity contract with the CLI is about.

        ``request_id`` (validated client-side, generated when omitted)
        is sent as the ``X-Repro-Request-Id`` header; the server's echo
        lands in :attr:`last_request_id`.
        """
        payload = _as_payload(airfoil, alpha_degrees, kwargs)
        return self._post("/analyze", payload, deadline_ms=deadline_ms,
                          request_id=request_id)

    def analyze_batch(self, requests: Sequence[RequestLike], *,
                      deadline_ms: Optional[float] = None,
                      request_id: Optional[str] = None) -> List[dict]:
        """``POST /analyze_batch``; one record or error object per item.

        ``deadline_ms`` applies to every item; an item dict carrying
        its own ``deadline_ms`` field overrides it.  One ``request_id``
        covers the whole batch.
        """
        payload = {"requests": [_as_payload(request, 0.0, {})
                                for request in requests]}
        return json.loads(self._post("/analyze_batch", payload,
                                     deadline_ms=deadline_ms,
                                     request_id=request_id))["results"]

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return json.loads(self._get("/metrics"))

    def metrics_prometheus(self) -> str:
        """``GET /metrics/prometheus`` — raw text exposition."""
        return self._get("/metrics/prometheus")

    def debug_trace(self, n: int = 16, fmt: str = "ascii"):
        """``GET /debug/trace`` — recent request Gantt.

        ``fmt='ascii'`` returns the rendered chart as a string;
        ``fmt='json'`` returns the parsed trace list.
        """
        raw = self._get(f"/debug/trace?n={int(n)}&format={fmt}")
        return json.loads(raw) if fmt == "json" else raw

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return json.loads(self._get("/healthz"))

    def wait_until_ready(self, timeout: float = 5.0) -> dict:
        """Poll ``/healthz`` until the server answers (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit_job(self, spec: dict, *,
                   request_id: Optional[str] = None) -> dict:
        """``POST /jobs`` — submit an optimization job spec."""
        return json.loads(self._post("/jobs", dict(spec),
                                     request_id=request_id))

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — every job the server knows about."""
        return json.loads(self._get("/jobs"))["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — full record, result included when done."""
        return json.loads(self._get(f"/jobs/{job_id}"))

    def job_events(self, job_id: str, since: int = 0) -> dict:
        """``GET /jobs/<id>/events?since=N`` — progress events after N."""
        return json.loads(self._get(f"/jobs/{job_id}/events?since={int(since)}"))

    def cancel_job(self, job_id: str, *,
                   request_id: Optional[str] = None) -> dict:
        """``POST /jobs/<id>/cancel`` — request cooperative cancellation."""
        return json.loads(self._post(f"/jobs/{job_id}/cancel", {},
                                     request_id=request_id))

    def wait_job(self, job_id: str, *, timeout: float = 60.0,
                 poll: float = 0.05) -> dict:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state."""
        from repro.jobs import JobState

        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in JobState.TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.1f}s"
                )
            time.sleep(poll)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _get(self, path: str) -> str:
        return self._request(urllib.request.Request(self.base_url + path))

    def _post(self, path: str, payload: dict, *,
              deadline_ms: Optional[float] = None,
              request_id: Optional[str] = None) -> str:
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers[DEADLINE_HEADER] = repr(float(deadline_ms))
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = coerce_request_id(request_id)
        body = canonical_json(payload).encode("utf-8")
        attempt = 0
        while True:
            request = urllib.request.Request(
                self.base_url + path, data=body, headers=headers,
                method="POST",
            )
            try:
                return self._request(request)
            except OverloadedError:
                if attempt >= self.retries:
                    raise
                self._sleep(self._backoff_delay(attempt))
                attempt += 1

    def _backoff_delay(self, attempt: int) -> float:
        """Full-jitter capped exponential backoff for retry *attempt*."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        return self._uniform(0.0, ceiling)

    def _request(self, request: "urllib.request.Request") -> str:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                self.last_request_id = response.headers.get(REQUEST_ID_HEADER)
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            self.last_request_id = error.headers.get(REQUEST_ID_HEADER)
            body = error.read().decode("utf-8", errors="replace")
            message = _error_message(body) or f"HTTP {error.code}"
            if error.code == 503:
                raise OverloadedError(message)
            if error.code == 504:
                raise DeadlineExceededError(message)
            raise ServeError(f"server rejected request ({error.code}): {message}")
        except urllib.error.URLError as error:
            raise ServeError(f"cannot reach {self.base_url}: {error.reason}")


def _as_payload(request: Union[str, RequestLike], alpha_degrees: float,
                kwargs: dict) -> dict:
    if isinstance(request, AnalyzeRequest):
        if kwargs:
            raise ServeError("keyword arguments cannot amend an AnalyzeRequest")
        return request.to_dict()
    if isinstance(request, dict):
        if kwargs:
            raise ServeError("keyword arguments cannot amend a dict payload")
        return dict(request)
    return AnalyzeRequest(airfoil=request, alpha_degrees=alpha_degrees,
                          **kwargs).to_dict()


def _error_message(body: str) -> Optional[str]:
    try:
        parsed = json.loads(body)
    except json.JSONDecodeError:
        return None
    if isinstance(parsed, dict):
        return parsed.get("error")
    return None
