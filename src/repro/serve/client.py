"""Synchronous stdlib-only client for the serve HTTP API.

Used by the end-to-end tests and the serving benchmark; also a
reasonable template for real callers.  Transport failures and non-2xx
responses surface as :class:`~repro.errors.ServeError`
(:class:`~repro.errors.OverloadedError` for 503, so callers can
implement backoff with one ``except`` clause).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import List, Optional, Sequence, Union

from repro.core.api import AnalyzeRequest, canonical_json
from repro.errors import OverloadedError, ServeError

RequestLike = Union[AnalyzeRequest, dict]


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, *,
                 timeout: float = 60.0) -> None:
        self.base_url = f"http://{host}:{int(port)}"
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def analyze(self, airfoil: Union[str, RequestLike], alpha_degrees: float = 0.0,
                **kwargs) -> dict:
        """``POST /analyze``; accepts a designation plus keywords, an
        :class:`AnalyzeRequest`, or a raw wire-format dict."""
        return json.loads(self.analyze_raw(airfoil, alpha_degrees, **kwargs))

    def analyze_raw(self, airfoil: Union[str, RequestLike],
                    alpha_degrees: float = 0.0, **kwargs) -> str:
        """Like :meth:`analyze` but returns the raw (canonical) body —
        the bytes the byte-identity contract with the CLI is about."""
        payload = _as_payload(airfoil, alpha_degrees, kwargs)
        return self._post("/analyze", payload)

    def analyze_batch(self, requests: Sequence[RequestLike]) -> List[dict]:
        """``POST /analyze_batch``; one record or error object per item."""
        payload = {"requests": [_as_payload(request, 0.0, {})
                                for request in requests]}
        return json.loads(self._post("/analyze_batch", payload))["results"]

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return json.loads(self._get("/metrics"))

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return json.loads(self._get("/healthz"))

    def wait_until_ready(self, timeout: float = 5.0) -> dict:
        """Poll ``/healthz`` until the server answers (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _get(self, path: str) -> str:
        return self._request(urllib.request.Request(self.base_url + path))

    def _post(self, path: str, payload: dict) -> str:
        request = urllib.request.Request(
            self.base_url + path,
            data=canonical_json(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(request)

    def _request(self, request: "urllib.request.Request") -> str:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            message = _error_message(body) or f"HTTP {error.code}"
            if error.code == 503:
                raise OverloadedError(message)
            raise ServeError(f"server rejected request ({error.code}): {message}")
        except urllib.error.URLError as error:
            raise ServeError(f"cannot reach {self.base_url}: {error.reason}")


def _as_payload(request: Union[str, RequestLike], alpha_degrees: float,
                kwargs: dict) -> dict:
    if isinstance(request, AnalyzeRequest):
        if kwargs:
            raise ServeError("keyword arguments cannot amend an AnalyzeRequest")
        return request.to_dict()
    if isinstance(request, dict):
        if kwargs:
            raise ServeError("keyword arguments cannot amend a dict payload")
        return dict(request)
    return AnalyzeRequest(airfoil=request, alpha_degrees=alpha_degrees,
                          **kwargs).to_dict()


def _error_message(body: str) -> Optional[str]:
    try:
        parsed = json.loads(body)
    except json.JSONDecodeError:
        return None
    if isinstance(parsed, dict):
        return parsed.get("error")
    return None
