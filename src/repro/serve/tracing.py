"""Per-request tracing for the serving path.

The paper's whole argument is a stage decomposition — where did the
wall time go? — and :mod:`repro.pipeline.metrics` answers it for the
*simulated* pipeline.  This module answers it for the *live* service:
every sampled request carries a :class:`repro.obs.trace.Trace` through
admission, queueing, batch collection, cache lookup, assembly, the
batched solve, and serialization; completed traces land in a bounded
ring buffer for ``/debug/trace`` and are reduced into a running W/A/L/O
aggregate for the ``stages`` section of ``/metrics`` — the same
vocabulary (and the same ``O = W - L`` identity) the simulator's
tables use, so an operator can compare production against Table 3
directly.

Sampling is deterministic stride sampling (an accumulator, not a PRNG):
``sample_rate=1.0`` traces everything, ``0.25`` every fourth request,
``0.0`` nothing.  An unsampled request costs one float-add under a
lock — tracing's fixed overhead is a handful of ``time.monotonic()``
calls per *sampled* request, which is why the default rate can stay 1.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.errors import ServeError
from repro.obs.histogram import StageHistograms
from repro.obs.trace import Trace, walo_summary
from repro.pipeline.trace import GanttRow, GanttSegment, GanttTrace, render_ascii

#: Stage names recorded along the serving path (the span vocabulary).
STAGE_QUEUE_WAIT = "queue_wait"
STAGE_BATCH_COLLECT = "batch_collect"
STAGE_CACHE_LOOKUP = "cache_lookup"
STAGE_ASSEMBLY = "assembly"
STAGE_SOLVE = "solve"
STAGE_POSTPROCESS = "postprocess"
STAGE_SERIALIZE = "serialize"
#: Per-worker-process spans emitted by the process execution backend;
#: the plain ``assembly``/``solve`` stages remain the *wall-time*
#: envelope across shards, so W/A/L/O stays backend-comparable.
STAGE_ASSEMBLY_SHARD = "assembly_shard"
STAGE_SOLVE_SHARD = "solve_shard"
#: One GA generation of a background optimization job (emitted by
#: :mod:`repro.jobs.runner`; folds into the aggregate as
#: ``generation_seconds``).
STAGE_GENERATION = "generation"

#: Gantt glyphs for live serving stages (ASCII rendering).
LIVE_GLYPHS: Dict[str, str] = {
    STAGE_QUEUE_WAIT: "q",
    STAGE_BATCH_COLLECT: "b",
    STAGE_CACHE_LOOKUP: "h",
    STAGE_ASSEMBLY: "a",
    STAGE_SOLVE: "s",
    STAGE_POSTPROCESS: "p",
    STAGE_SERIALIZE: "z",
    STAGE_ASSEMBLY_SHARD: "A",
    STAGE_SOLVE_SHARD: "S",
    STAGE_GENERATION: "g",
}

#: Row titles for the live-stage legend.
LIVE_TITLES: Dict[str, str] = {
    STAGE_QUEUE_WAIT: "queue wait",
    STAGE_BATCH_COLLECT: "batch collect",
    STAGE_CACHE_LOOKUP: "cache lookup",
    STAGE_ASSEMBLY: "assembly",
    STAGE_SOLVE: "solve",
    STAGE_POSTPROCESS: "postprocess",
    STAGE_SERIALIZE: "serialize",
    STAGE_ASSEMBLY_SHARD: "assembly (per shard)",
    STAGE_SOLVE_SHARD: "solve (per shard)",
    STAGE_GENERATION: "GA generation",
}

#: Stage keys always present in :meth:`Tracer.stages_snapshot`.
_CORE_STAGES = (STAGE_QUEUE_WAIT, STAGE_BATCH_COLLECT, STAGE_CACHE_LOOKUP,
                STAGE_ASSEMBLY, STAGE_SOLVE, STAGE_SERIALIZE)


class Tracer:
    """Sampling, retention, and aggregation of completed request traces.

    Parameters
    ----------
    sample_rate:
        Fraction of requests that get a span trace, in ``[0, 1]``.
        Deterministic stride sampling: with rate ``r`` every
        ``1/r``-th request is traced, so tests and benchmarks see a
        stable pattern instead of PRNG noise.
    ring_size:
        Completed traces retained for ``/debug/trace`` (0 keeps none;
        the W/A/L/O aggregate still accumulates).
    """

    def __init__(self, sample_rate: float = 1.0, ring_size: int = 256) -> None:
        rate = float(sample_rate)
        if not 0.0 <= rate <= 1.0:
            raise ServeError(
                f"sample_rate must be within [0, 1], got {sample_rate}"
            )
        if int(ring_size) < 0:
            raise ServeError(f"ring_size cannot be negative, got {ring_size}")
        self.sample_rate = rate
        self.ring_size = int(ring_size)
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._ring: "deque[Trace]" = deque(maxlen=self.ring_size or None)
        self._keep = self.ring_size > 0
        self._finished = 0
        self._evicted = 0
        self._wall = 0.0
        self._stage_seconds: Dict[str, float] = {}
        self.stage_histograms = StageHistograms()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def start(self, trace_id: str,
              sampled: Optional[bool] = None) -> Optional[Trace]:
        """A new :class:`Trace` when this request is sampled, else None.

        *sampled* overrides the local stride decision: a propagated
        trace context's head-based verdict (True forces a trace, False
        forces none) without consuming the stride accumulator, so
        forwarded traffic does not perturb local sampling determinism.
        """
        if sampled is not None:
            return Trace(trace_id) if sampled else None
        if self.sample_rate <= 0.0:
            return None
        with self._lock:
            self._accumulator += self.sample_rate
            if self._accumulator < 1.0:
                return None
            self._accumulator -= 1.0
        return Trace(trace_id)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def finish(self, trace: Trace, outcome: str = "completed") -> Trace:
        """Close *trace*, fold it into the aggregate, retain it."""
        trace.close(outcome)
        stages = trace.stage_seconds()
        with self._lock:
            self._finished += 1
            self._wall += trace.root.duration
            for name, seconds in stages.items():
                self._stage_seconds[name] = (
                    self._stage_seconds.get(name, 0.0) + seconds
                )
            if self._keep:
                if len(self._ring) == self.ring_size:
                    self._evicted += 1
                self._ring.append(trace)
        for name, seconds in stages.items():
            self.stage_histograms.observe(name, seconds * 1000.0,
                                          trace.trace_id)
        return trace

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def recent(self, n: Optional[int] = None) -> List[Trace]:
        """The most recent completed traces, oldest first."""
        with self._lock:
            traces = list(self._ring)
        if n is not None and n >= 0:
            traces = traces[-n:] if n else []
        return traces

    def find(self, trace_id: str) -> Optional[Trace]:
        """The most recent retained trace with *trace_id*, or None."""
        with self._lock:
            for trace in reversed(self._ring):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def stages_snapshot(self) -> dict:
        """The live W/A/L/O aggregate for the ``/metrics`` document.

        ``overhead_seconds`` is ``wall_seconds - solve_seconds`` by
        construction, the identity the paper's tables satisfy; per-stage
        totals beyond the core vocabulary appear under their span name.
        """
        with self._lock:
            stage_seconds = dict(self._stage_seconds)
            snapshot = {
                "traced": self._finished,
                "sample_rate": self.sample_rate,
                "wall_seconds": self._wall,
                "ring": {
                    "capacity": self.ring_size,
                    "size": len(self._ring),
                    "evicted": self._evicted,
                },
            }
        for stage in _CORE_STAGES:
            snapshot[f"{stage}_seconds"] = stage_seconds.pop(stage, 0.0)
        for stage, seconds in sorted(stage_seconds.items()):
            snapshot[f"{stage}_seconds"] = seconds
        snapshot["overhead_seconds"] = (
            snapshot["wall_seconds"] - snapshot["solve_seconds"]
        )
        return snapshot


# ----------------------------------------------------------------------
# Gantt rendering of live traces
# ----------------------------------------------------------------------

def traces_to_gantt(traces: Sequence[Trace], *,
                    name: str = "recent requests") -> GanttTrace:
    """Convert completed request traces into a per-request Gantt.

    Each trace becomes one row (labelled with a shortened request ID),
    each closed child span one segment; times are re-based to the
    earliest root start so the x-axis starts at 0 like the simulator's
    figures.
    """
    closed = [trace for trace in traces if trace.closed]
    if not closed:
        return GanttTrace(name=name, rows=[], makespan=0.0)
    origin = min(trace.root.start for trace in closed)
    makespan = max(trace.root.end for trace in closed) - origin
    rows = []
    for index, trace in enumerate(closed):
        segments = [
            GanttSegment(start=span.start - origin, end=span.end - origin,
                         kind=span.name, label=span.name)
            for span in trace.spans[1:]
            if span.end is not None and span.end > span.start
        ]
        rows.append(GanttRow(resource=_row_label(trace, index),
                             segments=segments))
    return GanttTrace(name=name, rows=rows, makespan=makespan)


def render_recent(traces: Sequence[Trace], *, width: int = 78) -> str:
    """ASCII Gantt of recent request traces (``/debug/trace`` body)."""
    if not traces:
        return "no completed traces yet; send some traffic first"
    return render_ascii(traces_to_gantt(traces), width=width,
                        glyphs=LIVE_GLYPHS, titles=LIVE_TITLES)


def _row_label(trace: Trace, index: int) -> str:
    short = trace.trace_id[:10]
    outcome = (trace.outcome or "?")[:1]
    return f"{index:>2} {short} {outcome}"
