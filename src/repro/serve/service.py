"""The in-process analysis service: cache + micro-batcher + worker pool.

One :class:`AnalysisService` is the whole serving brain; the HTTP front
end (:mod:`repro.serve.http`) is a thin shell around it, and tests and
benchmarks drive it directly.

Request lifecycle:

1. **Admission** — the cache is consulted (a counted lookup); a hit
   resolves immediately, a miss is enqueued through the pool's bounded
   admission (shedding with :class:`~repro.errors.OverloadedError` when
   full).
2. **Coalescing** — a worker drains the queue into a micro-batch under
   the :class:`~repro.serve.batcher.BatchPolicy`.  Requests whose
   deadline has expired, or whose submitter cancelled, are dropped
   *here* — before they cost an assembly+LU solve — and counted in
   ``/metrics`` as ``expired`` / ``cancelled``.
3. **Dedup** — identical cache keys inside the batch collapse to one
   evaluation; the cache is re-checked in case an earlier batch filled
   it while this one queued.
4. **Solve** — unique requests go through
   :func:`repro.core.api.evaluate_requests`, which stacks same-size
   systems and runs the batched LU kernels.
5. **Fan-out** — results are serialized once, inserted into the cache,
   and every waiter (including coalesced duplicates, which count as
   cache hits) is resolved.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.core.api import (
    AnalyzeRequest,
    canonical_json,
    evaluate_requests,
    extract_deadline_ms,
    serialize_analysis,
    validate_deadline_ms,
)
from repro.errors import DeadlineExceededError, ServeError
from repro.serve.batcher import BatchPolicy, suggested_policy
from repro.serve.cache import ResultCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.workers import PendingResult, WorkerPool

RequestLike = Union[AnalyzeRequest, dict]


@dataclasses.dataclass
class _Job:
    """One queued request with its waiter, arrival time, and deadline.

    ``deadline`` is an absolute :func:`time.monotonic` instant (or
    ``None`` for no deadline); ``deadline_ms`` keeps the original
    relative budget for error messages.
    """

    request: AnalyzeRequest
    key: str
    pending: PendingResult
    enqueued: float
    deadline: Optional[float] = None
    deadline_ms: Optional[float] = None


class AnalysisService:
    """A long-running batched airfoil-evaluation service.

    Parameters
    ----------
    max_batch, max_wait:
        Micro-batcher knobs; ``None`` derives either from the pipeline
        slicing heuristics (see :func:`repro.serve.batcher.suggested_policy`).
    cache_size:
        LRU capacity of the result cache (0 disables caching).
    n_workers:
        Worker threads coalescing and solving micro-batches.
    queue_limit:
        Admission bound; requests beyond it are shed.
    n_panels_hint:
        System size the derived batching defaults are tuned for.
    default_deadline_ms:
        Deadline budget applied to requests that do not carry their
        own (``None`` disables).  Expired requests are dropped at
        batch-collection time — they never cost an assembly+LU solve —
        and fail with :class:`~repro.errors.DeadlineExceededError`.
    """

    def __init__(self, *, max_batch: Optional[int] = None,
                 max_wait: Optional[float] = None, cache_size: int = 1024,
                 n_workers: int = 2, queue_limit: int = 256,
                 n_panels_hint: int = 200,
                 default_deadline_ms: Optional[float] = None) -> None:
        self.policy: BatchPolicy = suggested_policy(
            n_panels_hint, max_batch=max_batch, max_wait=max_wait
        )
        self.default_deadline_ms = (
            None if default_deadline_ms is None
            else validate_deadline_ms(default_deadline_ms)
        )
        self.cache = ResultCache(cache_size)
        self.metrics = ServiceMetrics()
        self._pool = WorkerPool(
            self._process_batch, self.policy,
            n_workers=n_workers, queue_limit=queue_limit,
            on_error=self._fail_batch, drop=self._drop_dead,
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Approximate number of requests waiting for a worker."""
        return self._pool.queue_depth

    def submit(self, request: RequestLike, *,
               deadline_ms: Optional[float] = None) -> PendingResult:
        """Admit one request; returns the waiter for its response dict.

        ``deadline_ms`` is the relative budget this request may spend
        queued before it is shed (most specific wins: the explicit
        argument, then a ``deadline_ms`` field in a dict payload, then
        the service's ``default_deadline_ms``).  Raises
        :class:`ServeError` for malformed requests or after
        :meth:`close`, and :class:`~repro.errors.OverloadedError` when
        admission control sheds the request.
        """
        if self._closed:
            raise ServeError("service is closed")
        if isinstance(request, dict):
            request, payload_deadline = extract_deadline_ms(request)
            if deadline_ms is None:
                deadline_ms = payload_deadline
            request = AnalyzeRequest.from_dict(request)
        elif not isinstance(request, AnalyzeRequest):
            raise ServeError(
                f"submit expects an AnalyzeRequest or dict, "
                f"got {type(request).__name__}"
            )
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        else:
            deadline_ms = validate_deadline_ms(deadline_ms)
        key = request.cache_key()
        pending = PendingResult()
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.record_admitted()
            self.metrics.record_completed(0.0)
            pending.resolve(cached)
            return pending
        now = time.monotonic()
        job = _Job(request=request, key=key, pending=pending, enqueued=now,
                   deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
                   deadline_ms=deadline_ms)
        try:
            self._pool.submit(job)
        except ServeError:
            self.metrics.record_shed()
            raise
        self.metrics.record_admitted()
        return pending

    def _await(self, pending: PendingResult,
               timeout: Optional[float]) -> dict:
        """Wait on *pending*, detaching cleanly if the wait times out.

        A wait timeout cancels the pending result, so the worker that
        eventually reaches the job drops it instead of solving for
        nobody.  If the outcome lands between the timeout and the
        cancel attempt, it is returned (or re-raised) as usual.
        """
        try:
            return pending.result(timeout=timeout)
        except ServeError:
            if pending.cancel():
                raise  # a genuine wait timeout; the worker will skip it
            if pending.cancelled:
                raise  # someone else already detached this waiter
            # Delivered in the race window: surface the real outcome.
            return pending.result(timeout=None)

    def analyze(self, request: RequestLike, *,
                timeout: Optional[float] = 60.0,
                deadline_ms: Optional[float] = None) -> dict:
        """Submit and block for the wire-format response dict."""
        return self._await(self.submit(request, deadline_ms=deadline_ms),
                           timeout)

    def analyze_batch(self, requests: Sequence[RequestLike], *,
                      timeout: Optional[float] = 60.0,
                      deadline_ms: Optional[float] = None) -> List[dict]:
        """Submit many requests together and block for all responses.

        Submitting before waiting lets the batcher coalesce the whole
        set into as few stacks as the policy allows.
        """
        pendings = [self.submit(request, deadline_ms=deadline_ms)
                    for request in requests]
        return [self._await(pending, timeout) for pending in pendings]

    def analyze_json(self, request: RequestLike, *,
                     timeout: Optional[float] = 60.0,
                     deadline_ms: Optional[float] = None) -> str:
        """Like :meth:`analyze` but rendered through the canonical JSON."""
        return canonical_json(self.analyze(request, timeout=timeout,
                                           deadline_ms=deadline_ms))

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _drop_dead(self, job: _Job) -> bool:
        """Batch-collection predicate: shed expired or abandoned work.

        Called by the worker for every dequeued job *before* it joins a
        micro-batch — the one place a dead request can still be dropped
        without having cost an assembly+LU solve.
        """
        if job.pending.cancelled:
            self.metrics.record_cancelled()
            return True
        if job.deadline is not None and time.monotonic() >= job.deadline:
            delivered = job.pending.fail(DeadlineExceededError(
                f"deadline of {job.deadline_ms:g} ms expired after "
                f"{1e3 * (time.monotonic() - job.enqueued):.1f} ms in queue; "
                "request dropped before evaluation"
            ))
            if delivered:
                self.metrics.record_expired()
            else:
                self.metrics.record_cancelled()
            return True
        return False

    def _process_batch(self, jobs: List[_Job]) -> None:
        self.metrics.record_flush(len(jobs))
        groups: "collections.OrderedDict[str, List[_Job]]" = collections.OrderedDict()
        for job in jobs:
            groups.setdefault(job.key, []).append(job)

        to_solve: List[List[_Job]] = []
        for key, group in groups.items():
            cached = self.cache.get(key)  # an earlier batch may have filled it
            if cached is not None:
                self._resolve_group(group, cached)
            else:
                to_solve.append(group)
        if not to_solve:
            return

        representatives = [group[0] for group in to_solve]
        stack_sizes = collections.Counter(
            (job.request.n_panels, job.request.precision)
            for job in representatives
        )
        for size in stack_sizes.values():
            self.metrics.record_solve(size)
        outcomes = evaluate_requests([job.request for job in representatives])

        now = time.monotonic()
        for group, outcome in zip(to_solve, outcomes):
            leader = group[0]
            if isinstance(outcome, Exception):
                for job in group:
                    self._fail_job(job, outcome, now)
                continue
            payload = serialize_analysis(leader.request, outcome)
            self.cache.put(leader.key, payload)
            self._complete_job(leader, payload, now)
            for job in group[1:]:  # coalesced duplicates: cache hits
                value = self.cache.get(job.key) or payload
                self._complete_job(job, value, now)

    def _fail_batch(self, jobs: List[_Job], error: BaseException) -> None:
        """Last-resort failure path when batch processing itself raises."""
        wrapped = error if isinstance(error, ServeError) else ServeError(
            f"batch processing failed: {error!r}"
        )
        now = time.monotonic()
        for job in jobs:
            self._fail_job(job, wrapped, now)

    def _resolve_group(self, group: List[_Job], payload: dict) -> None:
        now = time.monotonic()
        for job in group:
            self._complete_job(job, payload, now)

    def _complete_job(self, job: _Job, payload: dict, now: float) -> None:
        """Deliver a result; a detached waiter counts as cancelled."""
        if job.pending.resolve(payload):
            self.metrics.record_completed(now - job.enqueued)
        else:
            self.metrics.record_cancelled()

    def _fail_job(self, job: _Job, error: BaseException, now: float) -> None:
        """Deliver a failure; a detached waiter counts as cancelled."""
        if job.pending.fail(error):
            self.metrics.record_failed(now - job.enqueued)
        else:
            self.metrics.record_cancelled()

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` document: counters, queue depth, cache stats."""
        return self.metrics.snapshot(
            queue_depth=self.queue_depth, cache_stats=self.cache.stats()
        )

    def close(self, timeout: float = 10.0) -> bool:
        """Drain accepted work and stop the workers (idempotent)."""
        self._closed = True
        return self._pool.shutdown(timeout=timeout)

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
