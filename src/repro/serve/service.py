"""The in-process analysis service: cache + micro-batcher + worker pool.

One :class:`AnalysisService` is the whole serving brain; the HTTP front
end (:mod:`repro.serve.http`) is a thin shell around it, and tests and
benchmarks drive it directly.

Request lifecycle:

1. **Admission** — the cache is consulted (a counted lookup); a hit
   resolves immediately, a miss is enqueued through the pool's bounded
   admission (shedding with :class:`~repro.errors.OverloadedError` when
   full).
2. **Coalescing** — a worker drains the queue into a micro-batch under
   the :class:`~repro.serve.batcher.BatchPolicy`.  Requests whose
   deadline has expired, or whose submitter cancelled, are dropped
   *here* — before they cost an assembly+LU solve — and counted in
   ``/metrics`` as ``expired`` / ``cancelled``.
3. **Dedup** — identical cache keys inside the batch collapse to one
   evaluation; the cache is re-checked in case an earlier batch filled
   it while this one queued.
4. **Solve** — unique requests go through
   :func:`repro.core.api.evaluate_requests`, which stacks same-size
   systems and runs the batched LU kernels.
5. **Fan-out** — results are serialized once, inserted into the cache,
   and every waiter (including coalesced duplicates, which count as
   cache hits) is resolved.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.core.api import (
    AnalyzeRequest,
    canonical_json,
    evaluate_requests,
    extract_deadline_ms,
    serialize_analysis,
    validate_deadline_ms,
)
from repro.errors import DeadlineExceededError, ServeError
from repro.obs.context import TraceContext
from repro.obs.ids import coerce_request_id
from repro.obs.logging import StructuredLogger
from repro.obs.slo import SLOTracker
from repro.obs.trace import Trace, walo_summary
from repro.serve.batcher import BatchPolicy, suggested_policy
from repro.serve.cache import ResultCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.tracing import (
    STAGE_BATCH_COLLECT,
    STAGE_CACHE_LOOKUP,
    STAGE_QUEUE_WAIT,
    STAGE_SERIALIZE,
    Tracer,
    render_recent,
)
from repro.serve.workers import PendingResult, WorkerPool

RequestLike = Union[AnalyzeRequest, dict]


@dataclasses.dataclass
class _Job:
    """One queued request with its waiter, arrival time, and deadline.

    ``deadline`` is an absolute :func:`time.monotonic` instant (or
    ``None`` for no deadline); ``deadline_ms`` keeps the original
    relative budget for error messages.  ``request_id`` identifies the
    request across traces, logs, and response headers; ``trace`` is the
    span tree when this request was sampled; ``dequeued`` is stamped by
    the worker's batch collection (the end of the queue wait).
    """

    request: AnalyzeRequest
    key: str
    pending: PendingResult
    enqueued: float
    deadline: Optional[float] = None
    deadline_ms: Optional[float] = None
    request_id: str = ""
    trace: Optional[Trace] = None
    dequeued: Optional[float] = None
    batch_size: Optional[int] = None
    cache_hit: bool = False


class AnalysisService:
    """A long-running batched airfoil-evaluation service.

    Parameters
    ----------
    max_batch, max_wait:
        Micro-batcher knobs; ``None`` derives either from the pipeline
        slicing heuristics (see :func:`repro.serve.batcher.suggested_policy`).
    cache_size:
        LRU capacity of the result cache (0 disables caching).
    n_workers:
        Worker threads coalescing and solving micro-batches.
    queue_limit:
        Admission bound; requests beyond it are shed.
    n_panels_hint:
        System size the derived batching defaults are tuned for.
    default_deadline_ms:
        Deadline budget applied to requests that do not carry their
        own (``None`` disables).  Expired requests are dropped at
        batch-collection time — they never cost an assembly+LU solve —
        and fail with :class:`~repro.errors.DeadlineExceededError`.
    trace_sample:
        Fraction of requests that get a full span trace (deterministic
        stride sampling; 1.0 traces everything, 0.0 disables tracing).
        Sampled-out requests still carry request IDs and structured
        log lines — sampling only controls span recording.
    trace_ring:
        Completed traces retained for ``/debug/trace``.
    logger:
        A :class:`~repro.obs.logging.StructuredLogger` receiving one
        event per request outcome (completed / failed / shed / expired
        / cancelled).  ``None`` logs nothing (the in-process default).
    exec_backend:
        Where micro-batches are assembled and solved: a backend name
        (``"inline"`` / ``"process"``, constructed — and closed — by
        the service), an :class:`~repro.parallel.ExecutionBackend`
        instance (borrowed; the caller closes it), or ``None`` for the
        process-wide default (``REPRO_EXEC_BACKEND``, inline unless
        set).  See the "Execution backends" section of
        ``docs/serving.md``.
    exec_procs:
        Worker-process count when *exec_backend* is the name
        ``"process"``; ignored otherwise.
    assembly_kernel:
        Influence-matrix kernel the service pins for every evaluation
        (``"reference"`` / ``"fused"`` / ``"native"``); ``None`` reads
        ``REPRO_ASSEMBLY_KERNEL`` once at construction (default
        ``fused``).  The resolved name is exposed in
        ``metrics_snapshot()["assembly_kernel"]``.  See
        ``docs/kernels.md``.
    jobs_dir:
        Directory for durable optimization jobs (journal +
        checkpoints); ``None`` (the default) disables the jobs
        subsystem and its HTTP routes.  Unfinished jobs found in the
        directory resume immediately.  See ``docs/jobs.md``.
    job_slots:
        Concurrent job slots when *jobs_dir* is set (default 1).
    slo_latency_ms, slo_target:
        The service-level objectives tracked by the ``slo`` section of
        ``/metrics``: a request is "good" when it completes within
        ``slo_latency_ms`` milliseconds, and the burn rate measures the
        error budget ``1 - slo_target`` being spent.  See
        ``docs/observability.md``.
    autotune:
        Online autotuning mode: ``"off"`` (no controller),
        ``"advise"`` (calibrate + recommend, journal only), or
        ``"apply"`` (additionally swap the live batching policy).
        ``None`` reads ``REPRO_AUTOTUNE`` once at construction
        (default off).  See ``docs/autotune.md``.
    autotune_interval, autotune_min_improvement:
        Control-loop period in seconds and the hysteresis threshold
        (minimum predicted fractional improvement before the
        controller advises or applies anything).
    """

    def __init__(self, *, max_batch: Optional[int] = None,
                 max_wait: Optional[float] = None, cache_size: int = 1024,
                 n_workers: int = 2, queue_limit: int = 256,
                 n_panels_hint: int = 200,
                 default_deadline_ms: Optional[float] = None,
                 trace_sample: float = 1.0, trace_ring: int = 256,
                 logger: Optional[StructuredLogger] = None,
                 exec_backend=None,
                 exec_procs: Optional[int] = None,
                 assembly_kernel: Optional[str] = None,
                 jobs_dir: Optional[str] = None,
                 job_slots: int = 1,
                 slo_latency_ms: float = 250.0,
                 slo_target: float = 0.99,
                 autotune: Optional[str] = None,
                 autotune_interval: float = 30.0,
                 autotune_min_improvement: float = 0.10) -> None:
        self.policy: BatchPolicy = suggested_policy(
            n_panels_hint, max_batch=max_batch, max_wait=max_wait
        )
        self.default_deadline_ms = (
            None if default_deadline_ms is None
            else validate_deadline_ms(default_deadline_ms)
        )
        self.cache = ResultCache(cache_size)
        self.metrics = ServiceMetrics()
        self.tracer = Tracer(sample_rate=trace_sample, ring_size=trace_ring)
        self.slo = SLOTracker(latency_ms=slo_latency_ms, target=slo_target)
        self.logger = logger if logger is not None else StructuredLogger("off")
        from repro.parallel import make_backend, resolve_backend

        if isinstance(exec_backend, str):
            # A named backend is constructed here and owned here: the
            # service closes it (and its worker processes) on close().
            self._exec_backend = make_backend(exec_backend, n_procs=exec_procs)
            self._owns_exec_backend = True
        else:
            self._exec_backend = resolve_backend(exec_backend)
            self._owns_exec_backend = False
        from repro.panel.kernels import resolve_kernel

        #: The assembly kernel every batch (and job) evaluation uses,
        #: resolved once so a later env change cannot split the service
        #: across kernels mid-flight.
        self.assembly_kernel = resolve_kernel(assembly_kernel)
        self._pool = WorkerPool(
            self._process_batch, self.policy,
            n_workers=n_workers, queue_limit=queue_limit,
            on_error=self._fail_batch, drop=self._drop_dead,
            on_admit=self._on_dequeue,
            enqueued_at=lambda job: job.enqueued,
        )
        #: The :class:`~repro.jobs.runner.JobRunner` when *jobs_dir* is
        #: configured, else ``None`` (the HTTP layer 404s job routes).
        self.jobs = None
        if jobs_dir is not None:
            from repro.jobs import JobRunner, JobStore

            store = JobStore(jobs_dir, logger=self.logger)
            self.jobs = JobRunner(
                store, slots=job_slots, exec_backend=self._exec_backend,
                tracer=self.tracer,
            ).start()
        #: The :class:`~repro.tune.AutotuneController` when autotuning
        #: is enabled, else ``None`` (the HTTP layer 404s its route).
        self.autotuner = None
        from repro.tune.controller import AutotuneConfig, resolve_mode

        mode = resolve_mode(autotune)
        if mode != "off":
            from repro.tune.controller import AutotuneController

            self.autotuner = AutotuneController(self, AutotuneConfig(
                mode=mode, interval=autotune_interval,
                min_improvement=autotune_min_improvement,
            ))
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Approximate number of requests waiting for a worker."""
        return self._pool.queue_depth

    @property
    def n_workers(self) -> int:
        """Worker threads coalescing and solving micro-batches."""
        return self._pool.n_workers

    @property
    def draining(self) -> bool:
        """True once shutdown has begun (the autotuner must not act)."""
        return self._closed or self._pool.draining

    @property
    def execution_backend(self):
        """The backend micro-batches run on (borrowed; do not close)."""
        return self._exec_backend

    def apply_policy(self, policy: BatchPolicy) -> None:
        """Swap the live batching policy (the autotuner's apply path).

        Atomic at batch granularity (see
        :meth:`~repro.serve.workers.WorkerPool.set_policy`); refused
        while the service is draining.
        """
        self._pool.set_policy(policy)
        self.policy = policy

    def submit(self, request: RequestLike, *,
               deadline_ms: Optional[float] = None,
               request_id: Optional[str] = None,
               trace_context: Optional[TraceContext] = None) -> PendingResult:
        """Admit one request; returns the waiter for its response dict.

        ``deadline_ms`` is the relative budget this request may spend
        queued before it is shed (most specific wins: the explicit
        argument, then a ``deadline_ms`` field in a dict payload, then
        the service's ``default_deadline_ms``).  ``request_id`` is the
        caller-supplied trace identity (validated); one is generated
        when absent and exposed on the returned waiter's
        ``request_id`` attribute either way.  ``trace_context`` is a
        propagated :class:`~repro.obs.context.TraceContext` from an
        upstream hop (the cluster router, or a client opening a
        distributed trace): its head-based sampling decision overrides
        the local stride sampler, and the span tree is recorded under
        the *propagated* trace id so the upstream hop can pull it back
        by id and stitch it into the cluster-wide tree.  Raises
        :class:`ServeError` for malformed requests or after
        :meth:`close`, and :class:`~repro.errors.OverloadedError` when
        admission control sheds the request.
        """
        request_id = coerce_request_id(request_id)
        if self._closed:
            raise ServeError("service is closed")
        if isinstance(request, dict):
            request, payload_deadline = extract_deadline_ms(request)
            if deadline_ms is None:
                deadline_ms = payload_deadline
            request = AnalyzeRequest.from_dict(request)
        elif not isinstance(request, AnalyzeRequest):
            raise ServeError(
                f"submit expects an AnalyzeRequest or dict, "
                f"got {type(request).__name__}"
            )
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        else:
            deadline_ms = validate_deadline_ms(deadline_ms)
        if trace_context is not None:
            trace = self.tracer.start(trace_context.trace_id,
                                      sampled=trace_context.sampled)
        else:
            trace = self.tracer.start(request_id)
        key = request.cache_key()
        pending = PendingResult()
        pending.request_id = request_id
        lookup_started = time.monotonic()
        cached = self.cache.get(key)
        if cached is not None:
            now = time.monotonic()
            self.metrics.record_admitted()
            self.metrics.record_workload(request.n_panels,
                                         str(request.precision))
            self.metrics.record_completed(
                now - lookup_started,
                trace.trace_id if trace is not None else None,
            )
            self.slo.record(True, 1e3 * (now - lookup_started))
            pending.resolve(cached)
            if trace is not None:
                trace.add_stage(STAGE_CACHE_LOOKUP, lookup_started, now)
                trace.annotate(cache_hit=True, batch_size=0)
                self.tracer.finish(trace, "completed")
            self._log_request(request_id, "completed", cache_hit=True,
                              latency_ms=1e3 * (now - lookup_started),
                              trace=trace)
            return pending
        now = time.monotonic()
        job = _Job(request=request, key=key, pending=pending, enqueued=now,
                   deadline=None if deadline_ms is None else now + deadline_ms / 1e3,
                   deadline_ms=deadline_ms,
                   request_id=request_id, trace=trace)
        if trace is not None:
            trace.add_stage(STAGE_CACHE_LOOKUP, lookup_started, now)
        try:
            self._pool.submit(job)
        except ServeError:
            self.metrics.record_shed()
            self.slo.record(False)
            if trace is not None:
                self.tracer.finish(trace, "shed")
            self._log_request(request_id, "shed", trace=trace)
            raise
        self.metrics.record_admitted()
        self.metrics.record_workload(request.n_panels, str(request.precision))
        return pending

    def _await(self, pending: PendingResult,
               timeout: Optional[float]) -> dict:
        """Wait on *pending*, detaching cleanly if the wait times out.

        A wait timeout cancels the pending result, so the worker that
        eventually reaches the job drops it instead of solving for
        nobody.  If the outcome lands between the timeout and the
        cancel attempt, it is returned (or re-raised) as usual.
        """
        try:
            return pending.result(timeout=timeout)
        except ServeError:
            if pending.cancel():
                raise  # a genuine wait timeout; the worker will skip it
            if pending.cancelled:
                raise  # someone else already detached this waiter
            # Delivered in the race window: surface the real outcome.
            return pending.result(timeout=None)

    def analyze(self, request: RequestLike, *,
                timeout: Optional[float] = 60.0,
                deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None,
                trace_context: Optional[TraceContext] = None) -> dict:
        """Submit and block for the wire-format response dict."""
        return self._await(self.submit(request, deadline_ms=deadline_ms,
                                       request_id=request_id,
                                       trace_context=trace_context),
                           timeout)

    def analyze_batch(self, requests: Sequence[RequestLike], *,
                      timeout: Optional[float] = 60.0,
                      deadline_ms: Optional[float] = None,
                      request_id: Optional[str] = None,
                      trace_context: Optional[TraceContext] = None) -> List[dict]:
        """Submit many requests together and block for all responses.

        Submitting before waiting lets the batcher coalesce the whole
        set into as few stacks as the policy allows.  A shared
        ``request_id`` tags every item of the batch in traces and logs.
        """
        pendings = [self.submit(request, deadline_ms=deadline_ms,
                                request_id=request_id,
                                trace_context=trace_context)
                    for request in requests]
        return [self._await(pending, timeout) for pending in pendings]

    def analyze_json(self, request: RequestLike, *,
                     timeout: Optional[float] = 60.0,
                     deadline_ms: Optional[float] = None) -> str:
        """Like :meth:`analyze` but rendered through the canonical JSON."""
        return canonical_json(self.analyze(request, timeout=timeout,
                                           deadline_ms=deadline_ms))

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _on_dequeue(self, job: _Job) -> None:
        """Batch-collection admit hook: the end of the queue wait."""
        job.dequeued = time.monotonic()

    def _drop_dead(self, job: _Job) -> bool:
        """Batch-collection predicate: shed expired or abandoned work.

        Called by the worker for every dequeued job *before* it joins a
        micro-batch — the one place a dead request can still be dropped
        without having cost an assembly+LU solve.
        """
        if job.pending.cancelled:
            self.metrics.record_cancelled()
            self._finish_job(job, "cancelled")
            return True
        if job.deadline is not None and time.monotonic() >= job.deadline:
            delivered = job.pending.fail(DeadlineExceededError(
                f"deadline of {job.deadline_ms:g} ms expired after "
                f"{1e3 * (time.monotonic() - job.enqueued):.1f} ms in queue; "
                "request dropped before evaluation"
            ))
            if delivered:
                self.metrics.record_expired()
                self.slo.record(False)
                self._finish_job(job, "expired")
            else:
                self.metrics.record_cancelled()
                self._finish_job(job, "cancelled")
            return True
        return False

    def _process_batch(self, jobs: List[_Job]) -> None:
        flushed = time.monotonic()
        self.metrics.record_flush(len(jobs))
        batch_size = len(jobs)
        traced = [job for job in jobs if job.trace is not None]
        for job in jobs:
            job.batch_size = batch_size
        for job in traced:
            dequeued = job.dequeued if job.dequeued is not None else flushed
            job.trace.add_stage(STAGE_QUEUE_WAIT, job.enqueued, dequeued)
            job.trace.add_stage(STAGE_BATCH_COLLECT, dequeued, flushed)
            job.trace.annotate(batch_size=batch_size)
        groups: "collections.OrderedDict[str, List[_Job]]" = collections.OrderedDict()
        for job in jobs:
            groups.setdefault(job.key, []).append(job)

        to_solve: List[List[_Job]] = []
        recheck_started = time.monotonic()
        for key, group in groups.items():
            cached = self.cache.get(key)  # an earlier batch may have filled it
            if cached is not None:
                for job in group:
                    job.cache_hit = True
                self._resolve_group(group, cached)
            else:
                to_solve.append(group)
        recheck_ended = time.monotonic()
        for job in traced:
            job.trace.add_stage(STAGE_CACHE_LOOKUP, recheck_started,
                                recheck_ended)
        if not to_solve:
            return

        representatives = [group[0] for group in to_solve]
        stack_sizes = collections.Counter(
            (job.request.n_panels, job.request.precision)
            for job in representatives
        )
        for size in stack_sizes.values():
            self.metrics.record_solve(size)
        # Stage stamps from the evaluation internals (assembly / solve /
        # postprocess) are shared verbatim by every traced member of the
        # batch: the stack is solved once, so its cost is every rider's
        # cost — exactly how the paper accounts a slice.
        solve_traced = [job for group in to_solve for job in group
                        if job.trace is not None]
        stage_hook = None
        if solve_traced:
            def stage_hook(stage, start, end, count):
                for job in solve_traced:
                    job.trace.add_stage(stage, start, end)
        outcomes = evaluate_requests(
            [job.request for job in representatives], stage_hook=stage_hook,
            backend=self._exec_backend, kernel=self.assembly_kernel,
        )

        now = time.monotonic()
        for group, outcome in zip(to_solve, outcomes):
            leader = group[0]
            if isinstance(outcome, Exception):
                for job in group:
                    self._fail_job(job, outcome, now)
                continue
            serialize_started = time.monotonic()
            payload = serialize_analysis(leader.request, outcome)
            serialize_ended = time.monotonic()
            for job in group:
                if job.trace is not None:
                    job.trace.add_stage(STAGE_SERIALIZE, serialize_started,
                                        serialize_ended)
            self.cache.put(leader.key, payload)
            self._complete_job(leader, payload, now)
            for job in group[1:]:  # coalesced duplicates: cache hits
                value = self.cache.get(job.key) or payload
                job.cache_hit = True
                self._complete_job(job, value, now)

    def _fail_batch(self, jobs: List[_Job], error: BaseException) -> None:
        """Last-resort failure path when batch processing itself raises."""
        wrapped = error if isinstance(error, ServeError) else ServeError(
            f"batch processing failed: {error!r}"
        )
        now = time.monotonic()
        for job in jobs:
            self._fail_job(job, wrapped, now)

    def _resolve_group(self, group: List[_Job], payload: dict) -> None:
        now = time.monotonic()
        for job in group:
            self._complete_job(job, payload, now)

    def _complete_job(self, job: _Job, payload: dict, now: float) -> None:
        """Deliver a result; a detached waiter counts as cancelled."""
        if job.pending.resolve(payload):
            latency = now - job.enqueued
            self.metrics.record_completed(
                latency, job.trace.trace_id if job.trace is not None else None
            )
            self.slo.record(True, 1e3 * latency)
            self._finish_job(job, "completed")
        else:
            self.metrics.record_cancelled()
            self._finish_job(job, "cancelled")

    def _fail_job(self, job: _Job, error: BaseException, now: float) -> None:
        """Deliver a failure; a detached waiter counts as cancelled."""
        if job.pending.fail(error):
            latency = now - job.enqueued
            self.metrics.record_failed(
                latency, job.trace.trace_id if job.trace is not None else None
            )
            self.slo.record(False, 1e3 * latency)
            self._finish_job(job, "failed", error=error)
        else:
            self.metrics.record_cancelled()
            self._finish_job(job, "cancelled")

    def _finish_job(self, job: _Job, outcome: str,
                    error: Optional[BaseException] = None) -> None:
        """Close the job's trace (if sampled) and emit its log line."""
        if job.trace is not None:
            job.trace.annotate(cache_hit=job.cache_hit)
            self.tracer.finish(job.trace, outcome)
        self._log_request(
            job.request_id, outcome, cache_hit=job.cache_hit,
            batch_size=job.batch_size,
            latency_ms=1e3 * (time.monotonic() - job.enqueued),
            error=None if error is None else type(error).__name__,
            trace=job.trace,
        )

    def _log_request(self, request_id: str, outcome: str, *,
                     cache_hit: Optional[bool] = None,
                     batch_size: Optional[int] = None,
                     latency_ms: Optional[float] = None,
                     error: Optional[str] = None,
                     trace: Optional[Trace] = None) -> None:
        """One structured log line per request outcome."""
        if not self.logger.enabled:
            return
        stages = None
        if trace is not None and trace.closed:
            stages = {name: round(1e3 * seconds, 3)
                      for name, seconds in trace.stage_seconds().items()}
        self.logger.event(
            "request", request_id=request_id, outcome=outcome,
            cache_hit=cache_hit, batch_size=batch_size,
            latency_ms=None if latency_ms is None else round(latency_ms, 3),
            error=error, stages_ms=stages,
        )

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` document: counters, queue depth, cache
        stats, and the live W/A/L/O ``stages`` aggregate (same
        vocabulary — and same ``O = W - L`` identity — as the
        simulator's tables)."""
        snapshot = self.metrics.snapshot(
            queue_depth=self.queue_depth, cache_stats=self.cache.stats()
        )
        snapshot["stages"] = self.tracer.stages_snapshot()
        snapshot["stages_hist_ms"] = self.tracer.stage_histograms.snapshot()
        snapshot["slo"] = self.slo.snapshot()
        snapshot["exec_backend"] = self._exec_backend.stats()
        snapshot["assembly_kernel"] = self.assembly_kernel
        if self.jobs is not None:
            snapshot["jobs"] = self.jobs.metrics_snapshot()
        if self.autotuner is not None:
            snapshot["autotune"] = self.autotuner.snapshot()
        return snapshot

    def recent_traces(self, n: Optional[int] = None) -> List[Trace]:
        """The most recent completed request traces, oldest first."""
        return self.tracer.recent(n)

    def find_trace(self, trace_id: str) -> Optional[Trace]:
        """The most recent retained trace with *trace_id*, or None
        (the ``GET /debug/trace/<trace_id>`` lookup the cluster router
        stitches from)."""
        return self.tracer.find(trace_id)

    def render_trace(self, n: int = 16, *, width: int = 78) -> str:
        """ASCII Gantt of the last *n* completed requests
        (the ``/debug/trace`` body)."""
        return render_recent(self.tracer.recent(n), width=width)

    def walo_breakdown(self, n: Optional[int] = None) -> List[dict]:
        """Per-trace W/A/L/O summaries for the most recent requests."""
        return [dict(walo_summary(trace), request_id=trace.trace_id,
                     outcome=trace.outcome)
                for trace in self.tracer.recent(n)]

    def close(self, timeout: float = 10.0) -> bool:
        """Drain accepted work and stop the workers (idempotent).

        The autotuner stops first (a retune must never race a drain),
        then the job runner (running jobs checkpoint and stay
        resumable); a service-owned execution backend is closed only
        after the thread pool drains, so in-flight micro-batches keep
        their worker processes until the last solve lands.
        """
        self._closed = True
        drained = True
        if self.autotuner is not None:
            self.autotuner.close()
        if self.jobs is not None:
            drained = self.jobs.close(timeout=timeout) and drained
            self.jobs.store.close()
        drained = self._pool.shutdown(timeout=timeout) and drained
        if self._owns_exec_backend:
            self._exec_backend.close()
        return drained

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
