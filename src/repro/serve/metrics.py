"""Serving-side accounting, in the spirit of :mod:`repro.pipeline.metrics`.

Where the pipeline module reduces a simulated timeline to the paper's
W/A/L/O numbers, this one reduces the live request path to the numbers
an operator tunes against: admission and shedding counts, micro-batch
and solve-stack size histograms, and a latency quantile sketch.
Everything is cheap enough to update under one lock on every request.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from typing import Optional

from repro.obs.histogram import LatencyHistogram


def percentile(sorted_values, fraction: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sequence (None if empty).

    Nearest-rank convention: the p-th percentile of ``n`` values is the
    value at (1-based) rank ``ceil(p * n)`` — an actually-observed
    sample, never an interpolation, so ``p100`` is the max and ``p50``
    of a single sample is that sample.  This matches what scrapers see
    in ``/metrics`` (``latency_ms.p50/p90/p99``).

    ``fraction`` must lie in ``[0.0, 1.0]``; ``0.0`` returns the true
    minimum and ``1.0`` the true maximum.  Out-of-range fractions raise
    :class:`ValueError` instead of silently clamping — the autotuner
    sweeps quantile grids and a typo'd ``1.5`` must not masquerade as
    the max.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(
            f"percentile fraction must be in [0.0, 1.0], got {fraction!r}"
        )
    if not sorted_values:
        return None
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


class ServiceMetrics:
    """Thread-safe counters for one :class:`~repro.serve.AnalysisService`.

    Parameters
    ----------
    latency_window:
        Number of most-recent request latencies retained for the
        p50/p99 estimates (a sliding window, so quantiles track the
        current load rather than the whole process lifetime).
    """

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._snapshot_seq = 0
        self._accounting_drift = 0
        self._accounting_drift_worst = 0
        self._admitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._expired = 0
        self._cancelled = 0
        self._flushes = 0
        self._solves = 0
        self._solved_systems = 0
        self._batch_sizes: Counter = Counter()
        self._stack_sizes: Counter = Counter()
        self._n_panels_hist: Counter = Counter()
        self._precision_hist: Counter = Counter()
        self._latencies: deque = deque(maxlen=int(latency_window))
        # Log-bucketed tail shape with exemplar trace ids — the point
        # quantiles above answer "how slow", this answers "show me one".
        self.latency_histogram = LatencyHistogram()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_admitted(self) -> None:
        """One request accepted (served from cache or enqueued)."""
        with self._lock:
            self._admitted += 1

    def record_shed(self) -> None:
        """One request rejected by admission control."""
        with self._lock:
            self._shed += 1

    def record_completed(self, latency_seconds: float,
                         trace_id: Optional[str] = None) -> None:
        """One request resolved successfully."""
        with self._lock:
            self._completed += 1
            self._latencies.append(float(latency_seconds))
        self.latency_histogram.observe(1e3 * float(latency_seconds), trace_id)

    def record_failed(self, latency_seconds: float,
                      trace_id: Optional[str] = None) -> None:
        """One request resolved with an error."""
        with self._lock:
            self._failed += 1
            self._latencies.append(float(latency_seconds))
        self.latency_histogram.observe(1e3 * float(latency_seconds), trace_id)

    def record_expired(self) -> None:
        """One admitted request dropped because its deadline passed.

        Expired requests are shed at batch collection, before any
        solve, so their queue time is deliberately kept out of the
        latency window — it would describe dead work, not service.
        """
        with self._lock:
            self._expired += 1

    def record_cancelled(self) -> None:
        """One admitted request whose submitter detached before delivery."""
        with self._lock:
            self._cancelled += 1

    def record_workload(self, n_panels: int, precision: str) -> None:
        """One admitted request's problem shape (autotuner calibration input)."""
        with self._lock:
            self._n_panels_hist[int(n_panels)] += 1
            self._precision_hist[str(precision)] += 1

    def record_flush(self, n_requests: int) -> None:
        """One micro-batch handed to a worker (size = coalesced requests)."""
        with self._lock:
            self._flushes += 1
            self._batch_sizes[int(n_requests)] += 1

    def record_solve(self, stack_size: int) -> None:
        """One batched LU call over ``stack_size`` unique systems."""
        with self._lock:
            self._solves += 1
            self._solved_systems += int(stack_size)
            self._stack_sizes[int(stack_size)] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def batched_solves(self) -> int:
        """Number of batched LU calls issued so far."""
        with self._lock:
            return self._solves

    def snapshot(self, *, queue_depth: int = 0, cache_stats: dict = None) -> dict:
        """One JSON-ready snapshot of every counter.

        ``queue_depth`` and ``cache_stats`` are sampled by the caller
        (they live on the pool and the cache respectively) and merged
        here so ``/metrics`` is a single document.

        Scraper affordances: ``started_at`` (unix seconds) and the
        monotonically increasing ``snapshot_seq`` let a scraper detect
        restarts (``started_at`` changed) and stale scrapes
        (``snapshot_seq`` did not advance); ``uptime_seconds`` comes
        from the monotonic clock, immune to wall-clock steps.  Latency
        quantiles use the nearest-rank convention (see
        :func:`percentile`).

        ``requests.in_flight`` is derived from counters recorded on
        different threads, so a transient negative is possible mid-race
        — and a *persistent* negative means an accounting bug.  The
        value stays clamped at 0, but every snapshot that observes a
        negative raw value increments ``requests.accounting_drift``
        (with the worst magnitude in ``accounting_drift_worst``), so
        bugs surface in ``/metrics`` instead of being hidden by the
        clamp.
        """
        with self._lock:
            self._snapshot_seq += 1
            latencies = sorted(self._latencies)
            in_flight = (self._admitted - self._completed - self._failed
                         - self._expired - self._cancelled)
            if in_flight < 0:
                self._accounting_drift += 1
                self._accounting_drift_worst = max(
                    self._accounting_drift_worst, -in_flight
                )
            snapshot = {
                "started_at": self._started_at,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "snapshot_seq": self._snapshot_seq,
                "requests": {
                    "admitted": self._admitted,
                    "completed": self._completed,
                    "failed": self._failed,
                    "shed": self._shed,
                    "expired": self._expired,
                    "cancelled": self._cancelled,
                    "in_flight": max(0, in_flight),
                    "accounting_drift": self._accounting_drift,
                    "accounting_drift_worst": self._accounting_drift_worst,
                },
                "queue_depth": int(queue_depth),
                "batching": {
                    "flushes": self._flushes,
                    "batched_solves": self._solves,
                    "solved_systems": self._solved_systems,
                    "max_batch": max(self._batch_sizes) if self._batch_sizes else 0,
                    "batch_size_histogram": {
                        str(size): count
                        for size, count in sorted(self._batch_sizes.items())
                    },
                    "stack_size_histogram": {
                        str(size): count
                        for size, count in sorted(self._stack_sizes.items())
                    },
                },
                "workload": {
                    "n_panels_histogram": {
                        str(size): count
                        for size, count in sorted(self._n_panels_hist.items())
                    },
                    "precision_histogram": {
                        name: count
                        for name, count in sorted(self._precision_hist.items())
                    },
                },
                "latency_ms": {
                    "count": len(latencies),
                    "mean": (1e3 * sum(latencies) / len(latencies)
                             if latencies else None),
                    "p50": _ms(percentile(latencies, 0.50)),
                    "p90": _ms(percentile(latencies, 0.90)),
                    "p99": _ms(percentile(latencies, 0.99)),
                    "max": _ms(latencies[-1] if latencies else None),
                },
                "latency_hist_ms": self.latency_histogram.snapshot(),
            }
        if cache_stats is not None:
            snapshot["cache"] = dict(cache_stats)
        return snapshot


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else 1e3 * seconds
