"""Dynamic micro-batching of analyze requests.

Coalescing concurrent requests into stacks is the serving analogue of
the paper's pipeline slicing: the offline pipeline cuts one huge batch
into slices small enough to overlap assembly and solve, while the
service glues many tiny requests into slices big enough to amortize
per-call overhead.  Both land on the same sweet spot, so the default
knobs here are derived from the pipeline's closed-form slicing
heuristic (:func:`repro.pipeline.theory.optimal_slice_count`) rather
than guessed.

Two pieces live here:

* :class:`BatchPolicy` / :func:`suggested_policy` — the max-batch and
  flush-deadline knobs;
* :func:`collect_batch` — the queue-draining loop a worker runs to
  coalesce one micro-batch.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import queue as queue_module
import time
from typing import List, Optional, Tuple

from repro.errors import ServeError

#: Hard ceiling on a micro-batch: beyond this, stacking stops paying
#: for the extra queueing latency at serving concurrency levels.
MAX_BATCH_CEILING = 64

#: Flush-deadline clamp in seconds: never flush so eagerly that a
#: same-millisecond burst is split, never hold a request visibly long.
MIN_WAIT, MAX_WAIT = 5e-4, 5e-2


@dataclasses.dataclass(frozen=True)
class BatchPolicy:
    """The micro-batcher's two knobs.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many requests are coalesced.
    max_wait:
        Flush when the oldest request in the forming batch has waited
        this long (seconds), even if the batch is not full.
    """

    max_batch: int = 32
    max_wait: float = 0.005

    def __post_init__(self) -> None:
        try:
            batch = int(self.max_batch)
        except (TypeError, ValueError):
            raise ServeError(f"max_batch must be an integer, got {self.max_batch!r}")
        if batch != self.max_batch:
            # A fractional max_batch (say 2.7) used to be silently
            # truncated to 2 — flushing earlier than configured, which
            # reads as a throughput regression with no error anywhere.
            raise ServeError(f"max_batch must be an integer, got {self.max_batch!r}")
        if batch < 1:
            raise ServeError(f"max_batch must be at least 1, got {self.max_batch}")
        object.__setattr__(self, "max_batch", batch)
        wait = float(self.max_wait)
        if not math.isfinite(wait) or wait < 0.0:
            raise ServeError(f"max_wait must be finite and >= 0, got {self.max_wait}")
        object.__setattr__(self, "max_wait", wait)


@functools.lru_cache(maxsize=32)
def _heuristic_knobs(n_panels: int) -> Tuple[int, float]:
    """Slice-derived (max_batch, max_wait) defaults for one system size.

    The paper's GA keeps ~4096 candidates in flight; the closed-form
    slicing optimum for that workload on the reference workstation
    gives the per-slice stack size the whole repo is tuned around.
    That stack size (clamped) becomes ``max_batch``, and the simulated
    host time to solve one such slice becomes the flush deadline —
    waiting longer than one slice's worth of work costs more latency
    than the batching saves.
    """
    from repro.hardware.host import paper_workstation
    from repro.pipeline.theory import optimal_slice_count
    from repro.pipeline.workload import Workload
    from repro.precision import Precision

    reference_batch = 4096
    workload = Workload(batch=reference_batch, n=n_panels,
                        precision=Precision.DOUBLE)
    workstation = paper_workstation(sockets=2, accelerator="k80-half")
    n_slices = optimal_slice_count(workload, workstation)
    per_slice = max(1, reference_batch // max(1, n_slices))
    max_batch = max(1, min(MAX_BATCH_CEILING, per_slice))
    slice_solve = workstation.cpu.solve_seconds(per_slice, n_panels)
    max_wait = min(MAX_WAIT, max(MIN_WAIT, slice_solve))
    return max_batch, max_wait


def suggested_policy(n_panels: int = 200, *, max_batch: Optional[int] = None,
                     max_wait: Optional[float] = None) -> BatchPolicy:
    """A :class:`BatchPolicy` seeded by the pipeline slicing heuristics.

    Explicit ``max_batch`` / ``max_wait`` values override the derived
    defaults individually, so operators can pin one knob and let the
    heuristic pick the other.
    """
    if int(n_panels) < 3:
        raise ServeError(f"n_panels must be at least 3, got {n_panels}")
    derived_batch, derived_wait = _heuristic_knobs(int(n_panels))
    return BatchPolicy(
        max_batch=derived_batch if max_batch is None else max_batch,
        max_wait=derived_wait if max_wait is None else max_wait,
    )


def collect_batch(source: "queue_module.Queue", first_item, policy: BatchPolicy, *,
                  sentinel=None, clock=time.monotonic,
                  drop=None, on_admit=None, enqueued_at=None) -> Tuple[List, bool]:
    """Coalesce one micro-batch starting from an already-dequeued item.

    Drains *source* until the batch holds ``policy.max_batch`` items or
    the *oldest admitted item* has waited ``policy.max_wait`` since it
    was enqueued; a backlog present at the deadline is still drained
    without waiting, so a congested queue always flushes full stacks.

    *enqueued_at*, when given, maps an item to the ``clock()`` stamp at
    which it entered the queue; the flush deadline is anchored there.
    This matters whenever the worker dequeues *first_item* later than
    it was submitted (a solve was in flight, say): ``max_wait`` is a
    promise about how long a request may sit waiting for batchmates,
    and anchoring at collection start silently extended that promise by
    the whole queue wait.  Without *enqueued_at* the deadline falls
    back to collection start (the old behavior, correct only when the
    queue wait is negligible).

    *drop*, when given, is consulted for every dequeued item (including
    *first_item*): returning True discards the item instead of batching
    it — this is where expired or cancelled requests are shed *before*
    they cost a solve slot.  The callable owns any accounting or waiter
    notification for what it drops, and dropped items do not count
    toward ``max_batch``, so dead work never displaces live work.

    *on_admit*, when given, is called with every item that joins the
    batch, at the moment it joins — the tracing hook that marks the end
    of a request's queue wait and the start of its batch-collect stage
    (see :mod:`repro.serve.tracing`).  It must be cheap and must not
    raise.

    Returns ``(items, saw_sentinel)``; ``items`` may be empty when
    everything was dropped.  When the shutdown *sentinel* is drawn it
    is pushed back (so sibling workers also observe it), the batch
    collected so far is returned, and ``saw_sentinel`` is True.
    """
    items: List = []
    deadline: Optional[float] = None

    def admit(item) -> None:
        nonlocal deadline
        if drop is None or not drop(item):
            if on_admit is not None:
                on_admit(item)
            items.append(item)
            if deadline is None and enqueued_at is not None:
                # Anchor at the oldest *admitted* item: dropped items
                # never waited for this batch, so they cannot shorten
                # its window.
                deadline = float(enqueued_at(item)) + policy.max_wait

    started = clock()
    admit(first_item)
    while len(items) < policy.max_batch:
        # No anchored deadline yet (no enqueued_at, or everything so
        # far was dropped): fall back to the collection-start anchor.
        effective = deadline if deadline is not None else started + policy.max_wait
        remaining = effective - clock()
        try:
            if remaining <= 0.0:
                item = source.get_nowait()
            else:
                item = source.get(timeout=remaining)
        except queue_module.Empty:
            break
        if sentinel is not None and item is sentinel:
            source.put(item)
            return items, True
        admit(item)
    return items, False
