"""The online autotuning control loops (serve and cluster flavours).

Every K seconds the controller turns one ``/metrics`` window into at
most one decision:

1. **Calibrate** — fit a
   :class:`~repro.tune.calibrate.CalibratedWorkstation` from the window
   (probing the machine's batch-scaling curve once per observed
   workload mix), and validate its prediction against the measured
   latency.
2. **Recommend** — sweep the policy grid
   (:func:`~repro.tune.recommend.recommend_policy`).
3. **Act with hysteresis** — only on a predicted improvement at or
   above the threshold, only when the calibration is within its
   tolerance band, and never while the service is draining.  ``advise``
   mode stops after recording the recommendation; ``apply`` mode swaps
   the live :class:`~repro.serve.batcher.BatchPolicy`.

Every decision — including the held ones — lands in a bounded journal
with the old config, the new config, and the predicted delta; applied
decisions get their *realized* delta filled in from the next window, so
``/debug/autotune`` always shows whether the model's promises came
true.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import TuneError
from repro.tune.calibrate import (
    DEFAULT_MIN_SAMPLES,
    CalibratedWorkstation,
    delta_counter,
    probe_stage_curves,
)
from repro.tune.recommend import (
    DEFAULT_BATCH_GRID,
    DEFAULT_WAIT_GRID_MS,
    TuneRecommendation,
    recommend_policy,
    recommend_weights,
)

#: Accepted autotune modes.
MODES = ("off", "advise", "apply")

#: Environment variable supplying the default mode.
MODE_ENV = "REPRO_AUTOTUNE"


def resolve_mode(mode: Optional[str]) -> str:
    """Normalize an autotune mode (``None`` reads :data:`MODE_ENV`)."""
    if mode is None:
        mode = os.environ.get(MODE_ENV, "off")
    mode = str(mode).strip().lower() or "off"
    if mode not in MODES:
        raise TuneError(
            f"autotune mode must be one of {MODES}, got {mode!r}"
        )
    return mode


@dataclasses.dataclass(frozen=True)
class AutotuneConfig:
    """Knobs of the control loop itself.

    ``min_improvement`` is the hysteresis threshold: predicted
    fractional latency improvement below it holds the current config
    (and for the cluster loop, the fraction of traffic a reweight would
    move).  ``tolerance`` is the calibration validation band — apply
    mode refuses to act on a model whose prediction misses the measured
    latency by more than this fraction either way.
    """

    mode: str = "advise"
    interval: float = 30.0
    min_improvement: float = 0.10
    tolerance: float = 1.0
    min_samples: int = DEFAULT_MIN_SAMPLES
    journal_size: int = 64
    probe: bool = True
    batch_grid: tuple = DEFAULT_BATCH_GRID
    wait_grid_ms: tuple = DEFAULT_WAIT_GRID_MS

    def __post_init__(self) -> None:
        if self.mode not in MODES[1:]:
            raise TuneError(
                f"controller mode must be 'advise' or 'apply', got {self.mode!r}"
            )
        if not self.interval > 0.0:
            raise TuneError(f"interval must be positive, got {self.interval!r}")
        if not 0.0 <= self.min_improvement < 1.0:
            raise TuneError(
                f"min_improvement must be in [0, 1), got {self.min_improvement!r}"
            )
        if not self.tolerance > 0.0:
            raise TuneError(f"tolerance must be positive, got {self.tolerance!r}")

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "interval_seconds": self.interval,
            "min_improvement": self.min_improvement,
            "tolerance": self.tolerance,
            "min_samples": self.min_samples,
            "probe": self.probe,
        }


class _LoopMixin:
    """Shared background-thread plumbing for both controllers."""

    _interval: float

    def _start_loop(self) -> None:
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = threading.Thread(
            target=self._loop, name=f"{type(self).__name__}-loop", daemon=True
        )
        self._thread.start()

    def start(self) -> None:
        """Start the periodic loop (for owners constructed with
        ``start_thread=False`` that defer to their own start())."""
        if getattr(self, "_thread", None) is None:
            self._start_loop()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.run_cycle()
            except Exception as error:  # keep the loop alive; surface in counters
                self._record_cycle_error(error)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the loop (idempotent; never blocks a drain)."""
        thread = getattr(self, "_thread", None)
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout)
        self._thread = None


class AutotuneController(_LoopMixin):
    """Closes the loop for one :class:`~repro.serve.AnalysisService`.

    Construct with ``start_thread=False`` (tests, benchmarks) to drive
    :meth:`run_cycle` manually; the service wires the periodic thread.
    """

    def __init__(self, service, config: AutotuneConfig, *,
                 start_thread: bool = True) -> None:
        self._service = service
        self.config = config
        self._interval = config.interval
        self._lock = threading.RLock()
        self._counters: Dict[str, int] = {
            "cycles": 0, "probes": 0, "applies": 0, "advises": 0,
            "holds": 0, "cycle_errors": 0,
        }
        self._journal: Deque[dict] = deque(maxlen=config.journal_size)
        self._seq = 0
        self._previous_snapshot: Optional[dict] = None
        self._probe_curves = None
        self._probe_mix: Optional[tuple] = None
        self._calibrated: Optional[CalibratedWorkstation] = None
        self._report = None
        self._recommendation: Optional[TuneRecommendation] = None
        self._pending: Optional[dict] = None
        self._last_error: Optional[str] = None
        self._thread = None
        if start_thread:
            self._start_loop()

    # ------------------------------------------------------------------
    # One control cycle
    # ------------------------------------------------------------------

    def run_cycle(self) -> dict:
        """Calibrate, recommend, and decide once; returns the decision."""
        with self._lock:
            return self._cycle_locked()

    def _cycle_locked(self) -> dict:
        self._counters["cycles"] += 1
        snapshot = self._service.metrics_snapshot()
        previous, self._previous_snapshot = self._previous_snapshot, snapshot
        window = self._window_stats(snapshot, previous)
        self._realize_pending(window)

        try:
            calibrated = self._calibrate(snapshot, previous)
        except TuneError as error:
            return self._decide(action="held", reason="insufficient-traffic",
                                detail=str(error), window=window)
        self._calibrated = calibrated
        report = calibrated.validate(
            self._service.policy, n_workers=self._service.n_workers,
            tolerance=self.config.tolerance,
        )
        self._report = report
        recommendation = recommend_policy(
            calibrated, self._service.policy,
            n_workers=self._service.n_workers,
            exec_procs=self._exec_procs(),
            batch_grid=self.config.batch_grid,
            wait_grid_ms=self.config.wait_grid_ms,
        )
        self._recommendation = recommendation

        improvement = recommendation.predicted_improvement
        if improvement < self.config.min_improvement:
            return self._decide(action="held", reason="below-threshold",
                                window=window, recommendation=recommendation,
                                report=report)
        if self.config.mode == "advise":
            return self._decide(action="advised", reason="improvement-predicted",
                                window=window, recommendation=recommendation,
                                report=report)
        # The validation band only means something in the regime the
        # stationary model covers: under predicted overload the measured
        # latency is queue-dominated and unboundedly above any stationary
        # prediction, and holding there would wedge the loop in the one
        # state it most needs to escape.
        if (not report.within_tolerance
                and recommendation.current_prediction.feasible):
            return self._decide(action="held", reason="calibration-out-of-band",
                                window=window, recommendation=recommendation,
                                report=report)
        if self._service.draining:
            return self._decide(action="held", reason="draining", window=window,
                                recommendation=recommendation, report=report)
        self._service.apply_policy(recommendation.best.policy())
        decision = self._decide(action="applied", reason="improvement-predicted",
                                window=window, recommendation=recommendation,
                                report=report)
        self._pending = decision
        return decision

    # ------------------------------------------------------------------
    # Cycle pieces
    # ------------------------------------------------------------------

    def _calibrate(self, snapshot: dict,
                   previous: Optional[dict]) -> CalibratedWorkstation:
        live = CalibratedWorkstation.fit(snapshot, previous,
                                         min_samples=self.config.min_samples)
        if not self.config.probe:
            return live
        mix_key = (live.mix.n_panels, live.mix.precision)
        if self._probe_curves is None or self._probe_mix != mix_key:
            self._probe_curves = probe_stage_curves(
                n_panels=live.mix.n_panels,
                precision=live.mix.precision,
                backend=self._service.execution_backend,
                kernel=self._service.assembly_kernel,
            )
            self._probe_mix = mix_key
            self._counters["probes"] += 1
        return CalibratedWorkstation.fit(snapshot, previous,
                                         probe=self._probe_curves,
                                         min_samples=self.config.min_samples)

    def _exec_procs(self) -> int:
        stats = self._service.execution_backend.stats()
        return int(stats.get("procs", 1) or 1)

    @staticmethod
    def _window_stats(snapshot: dict, previous: Optional[dict]) -> dict:
        seconds = delta_counter(snapshot, previous, "uptime_seconds")
        completed = delta_counter(snapshot, previous, "requests", "completed")
        latency_sum = delta_counter(snapshot, previous,
                                    "latency_hist_ms", "count")
        latency_ms = delta_counter(snapshot, previous,
                                   "latency_hist_ms", "sum_ms")
        return {
            "seconds": round(seconds, 3),
            "completed": completed,
            "throughput_rps": (completed / seconds if seconds > 0.0 else 0.0),
            "mean_latency_ms": (latency_ms / latency_sum
                                if latency_sum > 0.0 else None),
        }

    def _realize_pending(self, window: dict) -> None:
        """Fill the realized delta of the last applied decision."""
        pending, self._pending = self._pending, None
        if pending is None:
            return
        before = pending.get("window", {})
        realized = {
            "throughput_before_rps": round(before.get("throughput_rps", 0.0), 2),
            "throughput_after_rps": round(window.get("throughput_rps", 0.0), 2),
            "latency_before_ms": before.get("mean_latency_ms"),
            "latency_after_ms": window.get("mean_latency_ms"),
        }
        b_lat, a_lat = realized["latency_before_ms"], realized["latency_after_ms"]
        if b_lat and a_lat and b_lat > 0.0:
            pending["realized_improvement"] = round((b_lat - a_lat) / b_lat, 4)
        b_thr = realized["throughput_before_rps"]
        if b_thr > 0.0:
            pending["realized_throughput_gain"] = round(
                realized["throughput_after_rps"] / b_thr, 3
            )
        pending["realized"] = realized

    def _decide(self, *, action: str, reason: str, window: dict,
                recommendation: Optional[TuneRecommendation] = None,
                report=None, detail: Optional[str] = None) -> dict:
        self._seq += 1
        policy = self._service.policy
        decision = {
            "seq": self._seq,
            "at": time.time(),
            "mode": self.config.mode,
            "action": action,
            "reason": reason,
            "old": {"max_batch": policy.max_batch,
                    "max_wait_ms": round(1e3 * policy.max_wait, 3)},
            "new": None,
            "predicted_improvement": None,
            "realized_improvement": None,
            "window": window,
        }
        if detail is not None:
            decision["detail"] = detail
        if recommendation is not None:
            decision["new"] = recommendation.best.to_dict()
            decision["predicted_improvement"] = round(
                recommendation.predicted_improvement, 4
            )
            decision["predicted_delta_ms"] = round(
                recommendation.predicted_delta_ms, 3
            )
            if action == "applied":
                # After apply_policy the service already runs `new`;
                # `old` above was captured... recompute from the sweep's
                # current row instead.
                decision["old"] = recommendation.current.to_dict()
        if report is not None:
            decision["calibration"] = report.to_dict()
        counter = {"applied": "applies", "advised": "advises"}.get(action, "holds")
        self._counters[counter] += 1
        self._journal.append(decision)
        self._service.logger.event("autotune", **{
            key: value for key, value in decision.items()
            if key in ("seq", "action", "reason", "predicted_improvement",
                       "old", "new")
        })
        return decision

    def _record_cycle_error(self, error: BaseException) -> None:
        with self._lock:
            self._counters["cycle_errors"] += 1
            self._last_error = f"{type(error).__name__}: {error}"

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def journal(self) -> list:
        """Decisions, oldest first (bounded by ``journal_size``)."""
        with self._lock:
            return [dict(entry) for entry in self._journal]

    def snapshot(self) -> dict:
        """The ``autotune`` section of ``/metrics``."""
        with self._lock:
            last = self._journal[-1] if self._journal else None
            section = dict(self.config.to_dict())
            section.update(self._counters)
            section["decisions"] = len(self._journal)
            section["last_action"] = last["action"] if last else None
            section["last_reason"] = last["reason"] if last else None
            section["predicted_improvement"] = (
                last.get("predicted_improvement") if last else None
            )
            section["realized_improvement"] = (
                last.get("realized_improvement") if last else None
            )
            if self._report is not None:
                section["calibration"] = self._report.to_dict()
            if self._last_error is not None:
                section["last_error"] = self._last_error
            return section

    def debug_document(self) -> dict:
        """The ``GET /debug/autotune`` body: full sweep + journal."""
        with self._lock:
            document = {
                "config": self.config.to_dict(),
                "calibration": (self._calibrated.to_dict()
                                if self._calibrated else None),
                "validation": (self._report.to_dict()
                               if self._report else None),
                "recommendation": (
                    self._recommendation.to_dict(sweep_limit=None)
                    if self._recommendation else None
                ),
                "journal": [dict(entry) for entry in self._journal],
            }
            calibrated = self._calibrated
        document["paper"] = self._paper_optimum(calibrated)
        return document

    @staticmethod
    def _paper_optimum(calibrated: Optional[CalibratedWorkstation]) -> Optional[dict]:
        """The paper's interleaving optimum, recomputed on fitted rates."""
        if calibrated is None:
            return None
        try:
            from repro.pipeline.autotune import tune_slices
            from repro.pipeline.workload import Workload

            station = calibrated.as_workstation()
            workload = Workload(batch=4096, n=calibrated.mix.n_panels,
                                precision=calibrated.mix.precision)
            result = tune_slices(workload, station)
            return {
                "optimal_slices": result.best_parameter,
                "wall_time_seconds": round(result.best_wall_time, 4),
                "note": "tune_slices on the fitted host throughputs "
                        "(paper reference batch 4096)",
            }
        except Exception as error:
            return {"error": f"{type(error).__name__}: {error}"}

    def render_table(self, *, limit: int = 16) -> str:
        """ASCII sweep table (``GET /debug/autotune?format=ascii``)."""
        with self._lock:
            recommendation = self._recommendation
            journal = list(self._journal)[-6:]
        lines = []
        if recommendation is None:
            lines.append("no sweep yet; waiting for a traffic window")
        else:
            lines.append(f"{'max_batch':>9} {'wait_ms':>8} {'procs':>5} "
                         f"{'batch':>7} {'lat_ms':>9} {'rps':>9} feasible")
            for config, prediction in recommendation.sweep[:limit]:
                marker = " <- best" if config == recommendation.best else ""
                lines.append(
                    f"{config.max_batch:>9} {1e3 * config.max_wait:>8.1f} "
                    f"{config.exec_procs:>5} {prediction.batch_size:>7.1f} "
                    f"{prediction.latency_ms:>9.2f} "
                    f"{prediction.throughput_rps:>9.1f} "
                    f"{str(prediction.feasible):>8}{marker}"
                )
            lines.append("")
            lines.append(
                f"predicted improvement: "
                f"{100.0 * recommendation.predicted_improvement:.1f}%"
            )
        if journal:
            lines.append("")
            lines.append("recent decisions:")
            for entry in journal:
                lines.append(
                    f"  #{entry['seq']} {entry['action']:<8} {entry['reason']}"
                    + (f" predicted={entry['predicted_improvement']}"
                       if entry.get("predicted_improvement") is not None else "")
                    + (f" realized={entry['realized_improvement']}"
                       if entry.get("realized_improvement") is not None else "")
                )
        return "\n".join(lines) + "\n"


class ClusterAutotuner(_LoopMixin):
    """Per-replica weight tuning for one :class:`~repro.cluster.ClusterRouter`.

    Scrapes every replica's ``/metrics`` each cycle, deltas the windows,
    and recommends routing weights proportional to measured service
    rate (:func:`~repro.tune.recommend.recommend_weights`).  ``apply``
    mode reweights the consistent-hash ring — with hysteresis on the
    fraction of traffic that would move, since every reweight costs
    cache locality on the keys that change owner.
    """

    def __init__(self, router, config: AutotuneConfig, *,
                 start_thread: bool = True) -> None:
        self._router = router
        self.config = config
        self._interval = config.interval
        self._lock = threading.RLock()
        self._counters: Dict[str, int] = {
            "cycles": 0, "applies": 0, "advises": 0, "holds": 0,
            "cycle_errors": 0,
        }
        self._journal: Deque[dict] = deque(maxlen=config.journal_size)
        self._seq = 0
        self._previous: Dict[str, Optional[dict]] = {}
        self._recommendation = None
        self._last_error: Optional[str] = None
        self._thread = None
        if start_thread:
            self._start_loop()

    def run_cycle(self) -> dict:
        with self._lock:
            return self._cycle_locked()

    def _cycle_locked(self) -> dict:
        from repro.errors import ServeError

        self._counters["cycles"] += 1
        windows: Dict[str, dict] = {}
        for name, replica in sorted(self._router.replicas.items()):
            try:
                snapshot = replica.client.metrics()
            except ServeError:
                continue
            previous = self._previous.get(name)
            self._previous[name] = snapshot
            windows[name] = {
                "completed": delta_counter(snapshot, previous,
                                           "requests", "completed"),
                "latency_sum_ms": delta_counter(snapshot, previous,
                                                "latency_hist_ms", "sum_ms"),
            }
        observed = sum(window["completed"] for window in windows.values())
        if len(windows) < len(self._router.replicas) or observed < self.config.min_samples:
            return self._decide(action="held", reason="insufficient-traffic",
                                windows=windows)
        recommendation = recommend_weights(windows)
        self._recommendation = recommendation
        current = self._router.current_weights()
        move = 0.5 * sum(
            abs(recommendation.weights[name] - current.get(name, 0.0))
            for name in recommendation.weights
        )
        if move < self.config.min_improvement:
            return self._decide(action="held", reason="below-threshold",
                                windows=windows, recommendation=recommendation,
                                move=move)
        if self.config.mode == "advise":
            return self._decide(action="advised", reason="shift-predicted",
                                windows=windows, recommendation=recommendation,
                                move=move)
        self._router.apply_weights(recommendation.weights)
        return self._decide(action="applied", reason="shift-predicted",
                            windows=windows, recommendation=recommendation,
                            move=move)

    def _decide(self, *, action: str, reason: str, windows: dict,
                recommendation=None, move: Optional[float] = None) -> dict:
        self._seq += 1
        decision = {
            "seq": self._seq,
            "at": time.time(),
            "mode": self.config.mode,
            "action": action,
            "reason": reason,
            "old": self._router.current_weights(),
            "new": (recommendation.weights if recommendation else None),
            "traffic_move": None if move is None else round(move, 4),
            "window_completed": sum(w["completed"] for w in windows.values()),
        }
        counter = {"applied": "applies", "advised": "advises"}.get(action, "holds")
        self._counters[counter] += 1
        self._journal.append(decision)
        self._router.logger.event("autotune", seq=self._seq, action=action,
                                  reason=reason, traffic_move=decision["traffic_move"])
        return decision

    def _record_cycle_error(self, error: BaseException) -> None:
        with self._lock:
            self._counters["cycle_errors"] += 1
            self._last_error = f"{type(error).__name__}: {error}"

    def snapshot(self) -> dict:
        with self._lock:
            last = self._journal[-1] if self._journal else None
            section = dict(self.config.to_dict())
            section.update(self._counters)
            section["decisions"] = len(self._journal)
            section["last_action"] = last["action"] if last else None
            section["last_reason"] = last["reason"] if last else None
            if self._recommendation is not None:
                section["recommendation"] = self._recommendation.to_dict()
            if self._last_error is not None:
                section["last_error"] = self._last_error
            return section

    def debug_document(self) -> dict:
        with self._lock:
            return {
                "config": self.config.to_dict(),
                "weights": self._router.current_weights(),
                "recommendation": (self._recommendation.to_dict()
                                   if self._recommendation else None),
                "journal": [dict(entry) for entry in self._journal],
            }
