"""Fitting the simulator's stage model from live ``/metrics`` windows.

The pipeline simulator and the serving tracer already speak the same
W/A/L/O vocabulary (assembly / solve / postprocess / serialize spans on
both sides); this module closes the loop by *fitting* that model from
production aggregates:

* :func:`fit_stage_means` reduces a ``/metrics`` window (one snapshot,
  or the delta between two) to mean per-request stage costs, the
  request-weighted mean batch and stack sizes, the arrival rate, and
  the dominant ``(n_panels, precision)`` mix — everything the snapshot
  already exposes, nothing instrumented twice.
* :func:`probe_stage_curves` measures the *shape* of each stage's cost
  versus batch size (fixed per-flush setup + per-request marginal) by
  timing the service's own evaluation path at a few batch sizes.  A
  single steady operating point cannot identify setup separately from
  marginal cost — every live batch has the same size — so the probe
  supplies the curve and the live window pins its level.
* :class:`CalibratedWorkstation` combines the two into per-stage
  :class:`StageCost` models whose :meth:`~CalibratedWorkstation.simulate`
  predicts per-request latency and throughput capacity for *any*
  :class:`~repro.serve.batcher.BatchPolicy`, and whose
  :meth:`~CalibratedWorkstation.validate` checks the prediction against
  the measured latency of the window before anyone is allowed to act
  on it.

The fitted throughputs also flow back into the paper's own tuner:
:meth:`CalibratedWorkstation.as_workstation` rebuilds a simulator
:class:`~repro.hardware.host.Workstation` around the measured host
throughputs (via :func:`repro.hardware.calibration.calibrate_from_measurement`)
so ``tune_slices`` can recompute the paper's interleaving optimum for
the hardware actually serving traffic.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TuneError
from repro.serve.batcher import BatchPolicy

#: Stage names the serving path records and the model fits.
FITTED_STAGES = ("assembly", "solve", "postprocess", "serialize")

#: Minimum traced requests in a window before a fit is attempted.
DEFAULT_MIN_SAMPLES = 16


# ----------------------------------------------------------------------
# Window reduction (pure /metrics arithmetic)
# ----------------------------------------------------------------------

def delta_counter(snapshot: dict, previous: Optional[dict],
                  *path: str) -> float:
    """A cumulative counter's increase over the window (>= 0)."""
    def walk(document: Optional[dict]) -> float:
        node = document
        for key in path:
            if not isinstance(node, dict) or key not in node:
                return 0.0
            node = node[key]
        return float(node) if isinstance(node, (int, float)) else 0.0

    return max(0.0, walk(snapshot) - (walk(previous) if previous else 0.0))


def _delta_histogram(snapshot: dict, previous: Optional[dict],
                     *path: str) -> Dict[int, float]:
    """Window delta of a ``{str(size): count}`` histogram."""
    def walk(document: Optional[dict]) -> dict:
        node = document
        for key in path:
            if not isinstance(node, dict):
                return {}
            node = node.get(key)
        return node if isinstance(node, dict) else {}

    current, earlier = walk(snapshot), walk(previous)
    window: Dict[int, float] = {}
    for size, count in current.items():
        gained = float(count) - float(earlier.get(size, 0))
        if gained > 0.0:
            window[int(size)] = gained
    return window


def _request_weighted_mean(histogram: Dict[int, float]) -> float:
    """Mean size *as a request experiences it* (size-weighted).

    A flush histogram counts batches; a request rides a batch with
    probability proportional to that batch's size, so the mean batch
    size seen by requests is ``sum(size^2 * flushes) / sum(size *
    flushes)``.
    """
    weight = sum(size * count for size, count in histogram.items())
    if weight <= 0.0:
        return 1.0
    return sum(size * size * count for size, count in histogram.items()) / weight


def _stage_window(snapshot: dict, previous: Optional[dict],
                  stage: str) -> Tuple[float, float]:
    """(observations, mean seconds per observation) for one stage."""
    count = delta_counter(snapshot, previous, "stages_hist_ms", stage, "count")
    sum_ms = delta_counter(snapshot, previous, "stages_hist_ms", stage, "sum_ms")
    if count <= 0.0:
        return 0.0, 0.0
    return count, sum_ms / count / 1e3


def _dominant(histogram: Dict[int, float], default: int) -> int:
    if not histogram:
        return default
    return max(histogram.items(), key=lambda item: (item[1], item[0]))[0]


@dataclasses.dataclass(frozen=True)
class ObservedMix:
    """What the window's traffic looked like.

    ``mean_batch`` and ``mean_stack`` are request-weighted (see
    :func:`_request_weighted_mean`); ``measured_latency_ms`` is the
    mean over *solved* requests — cache hits resolve in microseconds
    and would otherwise drag the mean below anything a solve model
    could predict.
    """

    window_seconds: float
    admitted: float
    completed: float
    arrival_rate: float
    cache_hit_fraction: float
    mean_batch: float
    mean_stack: float
    traced: float
    n_panels: int
    precision: str
    measured_latency_ms: Optional[float]

    @property
    def concurrency(self) -> float:
        """Mean in-flight requests over the window (Little's law).

        ``arrival_rate * latency`` counts the requests that are queued
        or in service at any instant.  Under light load this is well
        below 1 and changes nothing; under a standing queue (closed-loop
        clients, overload) it is the population the batcher can actually
        drain per flush — information the arrival-rate fixed point alone
        cannot see, because a saturated system's measured arrival rate
        equals its throughput.
        """
        if self.measured_latency_ms is None or self.arrival_rate <= 0.0:
            return 0.0
        return self.arrival_rate * (self.measured_latency_ms / 1e3)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class StageMeans:
    """Mean per-request span seconds at the window's operating point."""

    seconds: Dict[str, float]
    observations: Dict[str, float]
    mix: ObservedMix

    def mean(self, stage: str) -> float:
        return self.seconds.get(stage, 0.0)


def fit_stage_means(snapshot: dict, previous: Optional[dict] = None, *,
                    min_samples: int = DEFAULT_MIN_SAMPLES,
                    default_n_panels: int = 200) -> StageMeans:
    """Reduce a ``/metrics`` window to per-stage mean costs and the mix.

    *snapshot* (and optionally *previous*, for a delta window) are
    ``AnalysisService.metrics_snapshot()`` documents.  Raises
    :class:`~repro.errors.TuneError` when the window holds fewer than
    *min_samples* traced solve observations — fitting throughputs from
    a handful of spans would just launder noise into decisions.
    """
    solve_count, solve_mean = _stage_window(snapshot, previous, "solve")
    if solve_count < min_samples:
        raise TuneError(
            f"window has {int(solve_count)} traced solve spans; need at "
            f"least {min_samples} to fit stage throughputs"
        )
    seconds: Dict[str, float] = {}
    observations: Dict[str, float] = {}
    for stage in FITTED_STAGES:
        count, mean = _stage_window(snapshot, previous, stage)
        seconds[stage] = mean
        observations[stage] = count

    window_seconds = delta_counter(snapshot, previous, "uptime_seconds")
    admitted = delta_counter(snapshot, previous, "requests", "admitted")
    completed = delta_counter(snapshot, previous, "requests", "completed")
    hits = delta_counter(snapshot, previous, "cache", "hits")
    arrival_rate = admitted / window_seconds if window_seconds > 0.0 else 0.0
    hit_fraction = min(1.0, hits / admitted) if admitted > 0.0 else 0.0

    batch_hist = _delta_histogram(snapshot, previous,
                                  "batching", "batch_size_histogram")
    stack_hist = _delta_histogram(snapshot, previous,
                                  "batching", "stack_size_histogram")
    workload = snapshot.get("workload", {})
    n_hist = _delta_histogram(snapshot, previous,
                              "workload", "n_panels_histogram")
    precision_hist: Dict[str, float] = {}
    current = workload.get("precision_histogram", {})
    earlier = (previous or {}).get("workload", {}).get("precision_histogram", {})
    for name, count in current.items():
        gained = float(count) - float(earlier.get(name, 0))
        if gained > 0.0:
            precision_hist[str(name)] = gained
    precision = (max(precision_hist.items(), key=lambda item: item[1])[0]
                 if precision_hist else "double")

    # Mean latency of solved (non-cache-hit) requests: the latency
    # histogram sums over everything, so subtract the (tiny) hit
    # latencies by count — hits complete in ~microseconds.
    latency_count = delta_counter(snapshot, previous, "latency_hist_ms", "count")
    latency_sum = delta_counter(snapshot, previous, "latency_hist_ms", "sum_ms")
    solved_requests = latency_count - hits
    measured = (latency_sum / solved_requests
                if solved_requests > 0.0 else None)

    mix = ObservedMix(
        window_seconds=window_seconds,
        admitted=admitted,
        completed=completed,
        arrival_rate=arrival_rate,
        cache_hit_fraction=hit_fraction,
        mean_batch=_request_weighted_mean(batch_hist),
        mean_stack=_request_weighted_mean(stack_hist),
        traced=solve_count,
        n_panels=_dominant(n_hist, default_n_panels),
        precision=precision,
        measured_latency_ms=measured,
    )
    return StageMeans(seconds=seconds, observations=observations, mix=mix)


# ----------------------------------------------------------------------
# Probing (measuring the batch-scaling curve on the real machine)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StageCost:
    """One stage's cost model: fixed per-flush setup + per-request unit."""

    setup: float
    unit: float

    def __post_init__(self) -> None:
        if (not math.isfinite(self.setup) or not math.isfinite(self.unit)
                or self.setup < 0.0 or self.unit < 0.0):
            raise TuneError(
                f"stage costs must be finite and >= 0, "
                f"got setup={self.setup!r} unit={self.unit!r}"
            )

    def batch_seconds(self, batch: float) -> float:
        """Seconds one flush of *batch* requests spends in this stage."""
        return self.setup + batch * self.unit

    def scaled(self, factor: float) -> "StageCost":
        return StageCost(setup=self.setup * factor, unit=self.unit * factor)

    def to_dict(self) -> dict:
        return {"setup_ms": 1e3 * self.setup, "unit_ms": 1e3 * self.unit}


def probe_stage_curves(*, n_panels: int, precision: str = "double",
                       backend=None, kernel: Optional[str] = None,
                       sizes: Sequence[int] = (1, 8), repeats: int = 2,
                       timer: Callable[[], float] = time.perf_counter,
                       ) -> Dict[str, StageCost]:
    """Measure per-stage (setup, unit) costs by timing real evaluations.

    Runs the service's own evaluation path
    (:func:`repro.core.api.evaluate_requests`, same backend and
    assembly kernel) at each batch size in *sizes* and fits one
    ``setup + batch * unit`` line per stage through the best-of-
    *repeats* timings.  Cost is bounded: ``sum(sizes) * repeats``
    inviscid evaluations, a few milliseconds at serving problem sizes.
    """
    from repro.core.api import AnalyzeRequest, evaluate_requests

    sizes = sorted({int(size) for size in sizes})
    if len(sizes) < 2 or sizes[0] < 1:
        raise TuneError(
            f"probe sizes must be >= 2 distinct positive batch sizes, "
            f"got {sizes!r}"
        )
    samples: Dict[str, List[Tuple[float, float]]] = {
        stage: [] for stage in FITTED_STAGES
    }
    for size in sizes:
        best: Dict[str, float] = {}
        for repeat in range(max(1, int(repeats))):
            requests = [
                AnalyzeRequest("0012", alpha_degrees=0.25 * index + 0.1 * repeat,
                               reynolds=None, n_panels=int(n_panels),
                               precision=precision)
                for index in range(size)
            ]
            spans: Dict[str, float] = {}

            def hook(stage, start, end, count=0):
                if stage in samples:
                    spans[stage] = spans.get(stage, 0.0) + (end - start)

            started = timer()
            evaluate_requests(requests, stage_hook=hook, backend=backend,
                              kernel=kernel)
            elapsed = timer() - started
            spans.setdefault("serialize", 0.0)
            # The response-shaping tail (everything outside the hooked
            # spans) stands in for the serving path's serialize stage.
            spans["serialize"] += max(
                0.0, elapsed - sum(spans.get(s, 0.0)
                                   for s in ("assembly", "solve", "postprocess"))
            )
            for stage, span_seconds in spans.items():
                if stage not in best or span_seconds < best[stage]:
                    best[stage] = span_seconds
        for stage in FITTED_STAGES:
            samples[stage].append((float(size), best.get(stage, 0.0)))

    curves: Dict[str, StageCost] = {}
    for stage, points in samples.items():
        curves[stage] = _fit_line(points)
    return curves


def _fit_line(points: Sequence[Tuple[float, float]]) -> StageCost:
    """Least-squares ``setup + batch * unit`` through (batch, seconds)."""
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var <= 0.0:
        return StageCost(setup=0.0, unit=max(0.0, mean_y / max(mean_x, 1.0)))
    unit = sum((x - mean_x) * (y - mean_y) for x, y in points) / var
    setup = mean_y - unit * mean_x
    # Timing noise can tip either coefficient slightly negative; clamp
    # and fold the mass into the other term so predictions stay sane.
    if unit < 0.0:
        return StageCost(setup=max(0.0, mean_y), unit=0.0)
    return StageCost(setup=max(0.0, setup), unit=unit)


# ----------------------------------------------------------------------
# The calibrated model
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ServingPrediction:
    """What the model expects one policy to do under the observed mix."""

    policy: BatchPolicy
    exec_procs: int
    batch_size: float
    service_seconds: float
    latency_seconds: float
    throughput_rps: float
    feasible: bool
    utilization: float

    @property
    def latency_ms(self) -> float:
        return 1e3 * self.latency_seconds

    def to_dict(self) -> dict:
        return {
            "max_batch": self.policy.max_batch,
            "max_wait_ms": 1e3 * self.policy.max_wait,
            "exec_procs": self.exec_procs,
            "predicted_batch": round(self.batch_size, 2),
            "predicted_latency_ms": round(self.latency_ms, 3),
            "predicted_throughput_rps": round(self.throughput_rps, 1),
            "feasible": self.feasible,
            "utilization": round(self.utilization, 3),
        }


@dataclasses.dataclass(frozen=True)
class CalibrationReport:
    """Predicted-vs-measured check gating the apply path."""

    predicted_latency_ms: float
    measured_latency_ms: Optional[float]
    tolerance: float

    @property
    def ratio(self) -> Optional[float]:
        if not self.measured_latency_ms or self.measured_latency_ms <= 0.0:
            return None
        return self.predicted_latency_ms / self.measured_latency_ms

    @property
    def within_tolerance(self) -> bool:
        ratio = self.ratio
        if ratio is None:
            return False
        band = 1.0 + self.tolerance
        return (1.0 / band) <= ratio <= band

    def to_dict(self) -> dict:
        return {
            "predicted_latency_ms": round(self.predicted_latency_ms, 3),
            "measured_latency_ms": (
                None if self.measured_latency_ms is None
                else round(self.measured_latency_ms, 3)
            ),
            "ratio": None if self.ratio is None else round(self.ratio, 3),
            "tolerance": self.tolerance,
            "within_tolerance": self.within_tolerance,
        }


@dataclasses.dataclass(frozen=True)
class CalibratedWorkstation:
    """The simulator's stage model, fitted to one machine's live traffic.

    ``costs`` maps each :data:`FITTED_STAGES` name to a
    :class:`StageCost`; ``mix`` is the traffic window the fit came
    from; ``source`` records whether a probe supplied the batch-scaling
    curve (``"live+probe"``) or the model is the zero-setup live fit
    (``"live"``, which cannot see batching gains and is only good for
    validation).
    """

    costs: Dict[str, StageCost]
    mix: ObservedMix
    source: str = "live"

    @classmethod
    def fit(cls, snapshot: dict, previous: Optional[dict] = None, *,
            probe: Optional[Dict[str, StageCost]] = None,
            min_samples: int = DEFAULT_MIN_SAMPLES) -> "CalibratedWorkstation":
        """Fit from a ``/metrics`` window, optionally shaped by a probe.

        The live window pins each stage's *level*: the mean traced span
        equals ``setup + mean_batch * unit`` at the observed operating
        point (batch spans are shared verbatim with every request that
        rode the batch).  With a probe, its (setup, unit) pair is
        rescaled so the curve passes through the live point; without
        one, setup is zero and the whole mean is marginal cost.
        """
        means = fit_stage_means(snapshot, previous, min_samples=min_samples)
        costs: Dict[str, StageCost] = {}
        for stage in FITTED_STAGES:
            anchor = means.mix.mean_stack if stage == "solve" else means.mix.mean_batch
            live_mean = means.mean(stage)
            if probe is not None and stage in probe:
                curve = probe[stage]
                predicted_at_anchor = curve.batch_seconds(anchor)
                if predicted_at_anchor > 0.0 and live_mean > 0.0:
                    costs[stage] = curve.scaled(live_mean / predicted_at_anchor)
                else:
                    costs[stage] = curve
            else:
                costs[stage] = StageCost(setup=0.0,
                                         unit=live_mean / max(anchor, 1.0))
        return cls(costs=costs, mix=means.mix,
                   source="live+probe" if probe else "live")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def service_seconds(self, batch: float, *, exec_procs: int = 1) -> float:
        """Predicted seconds one worker spends on a *batch*-sized flush.

        ``exec_procs > 1`` models the process backend sharding assembly
        across workers at 80% parallel efficiency — advisory only; the
        controller never hot-swaps backends.
        """
        stack = batch * (self.mix.mean_stack / max(self.mix.mean_batch, 1.0))
        stack = max(1.0, min(batch, stack))
        total = 0.0
        for stage, cost in self.costs.items():
            span = cost.batch_seconds(stack if stage == "solve" else batch)
            if stage == "assembly" and exec_procs > 1:
                span = cost.setup + (span - cost.setup) / (
                    1.0 + 0.8 * (exec_procs - 1)
                )
            total += span
        return total

    def simulate(self, policy: BatchPolicy, *,
                 arrival_rate: Optional[float] = None,
                 n_workers: int = 1,
                 exec_procs: int = 1) -> ServingPrediction:
        """Steady-state prediction for *policy* under the observed mix.

        The expected flush size is the fixed point of ``B = min(max_batch,
        max(1, rate * max(max_wait, service(B))))`` — under light load
        batches only grow while the oldest request is willing to wait,
        under saturation they grow to the service time itself (arrivals
        accumulate while the worker is busy), capped by the policy.

        The window's measured in-flight population
        (:attr:`ObservedMix.concurrency`) then floors the flush size: a
        standing queue is drained ``min(max_batch, pending)`` at a time
        no matter how short ``max_wait`` is, and the arrival-rate fixed
        point alone cannot see that queue because a saturated system
        admits exactly as fast as it completes.  The same population
        bounds latency from below via Little's law (``pending /
        throughput``), which is what the closed-loop clients actually
        observe.
        """
        rate = self.mix.arrival_rate if arrival_rate is None else float(arrival_rate)
        batch = 1.0
        for _ in range(32):
            window = max(policy.max_wait,
                         self.service_seconds(batch, exec_procs=exec_procs)
                         / max(1, int(n_workers)))
            target = min(float(policy.max_batch), max(1.0, rate * window))
            if abs(target - batch) < 1e-6:
                batch = target
                break
            batch = target
        pending = self.mix.concurrency
        if pending > batch:
            batch = min(float(policy.max_batch), pending)
        service = self.service_seconds(batch, exec_procs=exec_procs)
        throughput = max(1, int(n_workers)) * batch / service if service > 0.0 else math.inf
        # Mean wait for the batch to fill: half the fill window, bounded
        # by the flush deadline.
        fill = (batch - 1.0) / rate if rate > 0.0 else 0.0
        wait = min(policy.max_wait, fill) / 2.0
        latency = wait + service
        if pending > 0.0 and throughput > 0.0:
            latency = max(latency, pending / throughput)
        utilization = rate / throughput if throughput > 0.0 else math.inf
        return ServingPrediction(
            policy=policy,
            exec_procs=int(exec_procs),
            batch_size=batch,
            service_seconds=service,
            latency_seconds=latency,
            throughput_rps=throughput,
            feasible=utilization <= 1.0,
            utilization=utilization,
        )

    def validate(self, policy: BatchPolicy, *, n_workers: int = 1,
                 tolerance: float = 0.5) -> CalibrationReport:
        """Check the model against the window's measured latency."""
        prediction = self.simulate(policy, n_workers=n_workers)
        return CalibrationReport(
            predicted_latency_ms=prediction.latency_ms,
            measured_latency_ms=self.mix.measured_latency_ms,
            tolerance=float(tolerance),
        )

    # ------------------------------------------------------------------
    # Back to the paper's tuner
    # ------------------------------------------------------------------

    def as_workstation(self, *, accelerator: str = "k80-half"):
        """A simulator Workstation whose host runs at the *fitted* rates.

        Lets the paper's own :func:`repro.pipeline.autotune.tune_slices`
        recompute the interleaving optimum (Figures 3-4) for the
        measured host throughputs; the accelerator stays the paper's,
        since serving has none to measure.
        """
        from repro.hardware.calibration import calibrate_from_measurement
        from repro.hardware.host import paper_workstation

        station = paper_workstation(sockets=2, accelerator=accelerator,
                                    precision=self.mix.precision)
        fitted = calibrate_from_measurement(
            station.cpu.spec, self.mix.precision,
            assembly_seconds=self.costs["assembly"].unit,
            solve_seconds=self.costs["solve"].unit,
            batch=1, n=self.mix.n_panels,
        )
        return station.with_cpu_calibration(fitted)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "stages": {stage: cost.to_dict()
                       for stage, cost in sorted(self.costs.items())},
            "mix": self.mix.to_dict(),
        }
