"""Online autotuning: calibrate the simulator from production, close the loop.

``repro.tune`` turns the paper's offline tuners into a serving-path
control loop:

- :mod:`repro.tune.calibrate` fits per-stage unit throughputs from live
  ``/metrics`` windows (plus an optional in-process microprobe for the
  batch-scaling curve) into a :class:`CalibratedWorkstation` that can
  both predict serving latency and re-anchor the paper's simulator.
- :mod:`repro.tune.recommend` sweeps the serving-knob grid —
  ``BatchPolicy(max_batch, max_wait)``, backend procs, per-replica
  weights — exactly the way :func:`repro.pipeline.autotune.tune_slices`
  sweeps slice counts.
- :mod:`repro.tune.controller` runs the periodic advise/apply loop with
  hysteresis and a decision journal, for both the single-node service
  and the cluster router.
"""

from repro.tune.calibrate import (
    CalibratedWorkstation,
    CalibrationReport,
    ObservedMix,
    ServingPrediction,
    StageCost,
    fit_stage_means,
    probe_stage_curves,
)
from repro.tune.controller import (
    AutotuneConfig,
    AutotuneController,
    ClusterAutotuner,
    resolve_mode,
)
from repro.tune.recommend import (
    CandidateConfig,
    TuneRecommendation,
    WeightRecommendation,
    recommend_policy,
    recommend_weights,
)

__all__ = [
    "AutotuneConfig",
    "AutotuneController",
    "CalibratedWorkstation",
    "CalibrationReport",
    "CandidateConfig",
    "ClusterAutotuner",
    "ObservedMix",
    "ServingPrediction",
    "StageCost",
    "TuneRecommendation",
    "WeightRecommendation",
    "fit_stage_means",
    "probe_stage_curves",
    "recommend_policy",
    "recommend_weights",
    "resolve_mode",
]
