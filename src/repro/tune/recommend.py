"""Grid sweeps over serving knobs, ranked by the calibrated model.

The same shape as the paper's :func:`repro.pipeline.autotune.tune_slices`
— validate the candidate grid up front, simulate every candidate, rank
by predicted wall time — but the "simulator" is a
:class:`~repro.tune.calibrate.CalibratedWorkstation` fitted from live
traffic and the knobs are the serving ones: ``BatchPolicy(max_batch,
max_wait)`` and (advisorily) the process-backend worker count.  Cluster
mode adds :func:`recommend_weights`, the serving analogue of
:func:`repro.pipeline.heterogeneous.balanced_fractions`: per-replica
routing weights proportional to each replica's measured service rate.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TuneError
from repro.serve.batcher import MAX_BATCH_CEILING, BatchPolicy
from repro.tune.calibrate import CalibratedWorkstation, ServingPrediction

#: Default max-batch sweep (clamped to the batcher's hard ceiling).
DEFAULT_BATCH_GRID = (1, 2, 4, 8, 16, 24, 32, 48, 64)

#: Default flush-deadline sweep, milliseconds.
DEFAULT_WAIT_GRID_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0)


@dataclasses.dataclass(frozen=True)
class CandidateConfig:
    """One point of the serving-knob grid."""

    max_batch: int
    max_wait: float
    exec_procs: int = 1

    def policy(self) -> BatchPolicy:
        return BatchPolicy(max_batch=self.max_batch, max_wait=self.max_wait)

    def to_dict(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": round(1e3 * self.max_wait, 3),
            "exec_procs": self.exec_procs,
        }


def _validated_batch_grid(candidates: Iterable[int]) -> List[int]:
    grid = list(candidates)
    if not grid:
        raise TuneError("no feasible max_batch candidates: empty grid")
    for value in grid:
        if value != int(value) or int(value) < 1:
            raise TuneError(
                f"invalid max_batch {value!r} in grid {tuple(grid)}: "
                "batch sizes must be positive integers"
            )
    unique = sorted({int(value) for value in grid})
    feasible = [value for value in unique if value <= MAX_BATCH_CEILING]
    if not feasible:
        raise TuneError(
            f"every max_batch in grid {tuple(unique)} exceeds the batcher "
            f"ceiling {MAX_BATCH_CEILING}; nothing to tune over"
        )
    return feasible


def _validated_wait_grid(candidates_ms: Iterable[float]) -> List[float]:
    grid = list(candidates_ms)
    if not grid:
        raise TuneError("no feasible max_wait candidates: empty grid")
    for value in grid:
        if not (0.0 <= float(value) < 1e4):
            raise TuneError(
                f"invalid max_wait {value!r} ms in grid {tuple(grid)}: "
                "flush deadlines must be in [0, 10000) milliseconds"
            )
    return sorted({float(value) for value in grid})


@dataclasses.dataclass(frozen=True)
class TuneRecommendation:
    """A ranked sweep with the predicted gain over the current config."""

    current: CandidateConfig
    current_prediction: ServingPrediction
    best: CandidateConfig
    best_prediction: ServingPrediction
    sweep: List[Tuple[CandidateConfig, ServingPrediction]]
    objective: str = "latency"

    @property
    def predicted_improvement(self) -> float:
        """Fractional predicted latency reduction (0.25 = 25% faster).

        An infeasible current config (predicted capacity below the
        arrival rate) has unbounded real latency regardless of its
        nominal service time, so escaping it into any feasible config
        counts as a full improvement; between two infeasible configs
        the comparison falls back to predicted capacity.
        """
        now, best = self.current_prediction, self.best_prediction
        if not now.feasible:
            if best.feasible:
                return 1.0
            if now.throughput_rps <= 0.0:
                return 0.0
            return max(0.0, 1.0 - now.throughput_rps / best.throughput_rps)
        now_latency = now.latency_seconds
        if now_latency <= 0.0:
            return 0.0
        return (now_latency - best.latency_seconds) / now_latency

    @property
    def predicted_delta_ms(self) -> float:
        """Predicted per-request wall-time delta, milliseconds (< 0 = faster)."""
        return (self.best_prediction.latency_ms
                - self.current_prediction.latency_ms)

    def to_dict(self, *, sweep_limit: Optional[int] = 12) -> dict:
        rows = self.sweep if sweep_limit is None else self.sweep[:sweep_limit]
        return {
            "objective": self.objective,
            "current": self.current.to_dict(),
            "current_prediction": self.current_prediction.to_dict(),
            "best": self.best.to_dict(),
            "best_prediction": self.best_prediction.to_dict(),
            "predicted_improvement": round(self.predicted_improvement, 4),
            "predicted_delta_ms": round(self.predicted_delta_ms, 3),
            "sweep": [
                {"config": config.to_dict(), **prediction.to_dict()}
                for config, prediction in rows
            ],
            "sweep_size": len(self.sweep),
        }


def recommend_policy(calibrated: CalibratedWorkstation,
                     current: BatchPolicy, *,
                     arrival_rate: Optional[float] = None,
                     n_workers: int = 1,
                     exec_procs: int = 1,
                     batch_grid: Iterable[int] = DEFAULT_BATCH_GRID,
                     wait_grid_ms: Iterable[float] = DEFAULT_WAIT_GRID_MS,
                     procs_grid: Optional[Iterable[int]] = None,
                     ) -> TuneRecommendation:
    """Sweep the policy grid and rank candidates by predicted latency.

    Infeasible candidates (predicted capacity below the arrival rate —
    the queue would grow without bound) rank strictly after feasible
    ones regardless of their nominal latency.  ``procs_grid`` defaults
    to just the current ``exec_procs``; larger values are advisory
    (the controller never hot-swaps the execution backend).
    """
    batches = _validated_batch_grid(batch_grid)
    waits = [ms / 1e3 for ms in _validated_wait_grid(wait_grid_ms)]
    procs = sorted({int(p) for p in (procs_grid or (exec_procs,)) if int(p) >= 1})
    if not procs:
        raise TuneError("no feasible exec_procs candidates: empty grid")

    sweep: List[Tuple[CandidateConfig, ServingPrediction]] = []
    for n_procs in procs:
        for max_batch in batches:
            for max_wait in waits:
                config = CandidateConfig(max_batch=max_batch,
                                         max_wait=max_wait,
                                         exec_procs=n_procs)
                prediction = calibrated.simulate(
                    config.policy(), arrival_rate=arrival_rate,
                    n_workers=n_workers, exec_procs=n_procs,
                )
                sweep.append((config, prediction))

    def rank(item: Tuple[CandidateConfig, ServingPrediction]):
        _config, prediction = item
        if prediction.feasible:
            return (0, prediction.latency_seconds)
        # All-infeasible regime: nominal latency is meaningless under
        # overload; prefer whatever drains the queue fastest.
        return (1, -prediction.throughput_rps)

    sweep.sort(key=rank)
    current_config = CandidateConfig(max_batch=current.max_batch,
                                     max_wait=current.max_wait,
                                     exec_procs=exec_procs)
    current_prediction = calibrated.simulate(
        current, arrival_rate=arrival_rate,
        n_workers=n_workers, exec_procs=exec_procs,
    )
    best_config, best_prediction = sweep[0]
    return TuneRecommendation(
        current=current_config,
        current_prediction=current_prediction,
        best=best_config,
        best_prediction=best_prediction,
        sweep=sweep,
    )


# ----------------------------------------------------------------------
# Cluster mode: per-replica weights
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class WeightRecommendation:
    """Routing weights proportional to measured per-replica service rate.

    ``shift`` is half the L1 distance from the uniform split — the
    fraction of traffic that would move if the weights were applied —
    which is what the cluster controller's hysteresis thresholds on.
    """

    weights: Dict[str, float]
    rates: Dict[str, float]
    shift: float

    def to_dict(self) -> dict:
        return {
            "weights": {name: round(weight, 4)
                        for name, weight in sorted(self.weights.items())},
            "service_rates_rps": {name: round(rate, 2)
                                  for name, rate in sorted(self.rates.items())},
            "shift": round(self.shift, 4),
        }


def recommend_weights(replica_windows: Dict[str, dict]) -> WeightRecommendation:
    """Per-replica weights from ``/metrics`` windows.

    *replica_windows* maps replica name to a dict with the window's
    ``completed`` count and ``latency_sum_ms`` (the cluster controller
    deltas these from successive scrapes).  A replica's service rate is
    ``completed / in-request seconds`` — requests finished per second
    of time actually spent serving them — the live analogue of
    :func:`repro.pipeline.heterogeneous.balanced_fractions`'s
    throughput-proportional split.  Replicas with no completions in the
    window keep a uniform share (no evidence either way).
    """
    if not replica_windows:
        raise TuneError("no replica windows to recommend weights from")
    rates: Dict[str, float] = {}
    for name, window in replica_windows.items():
        completed = float(window.get("completed", 0.0))
        busy_seconds = float(window.get("latency_sum_ms", 0.0)) / 1e3
        rates[name] = completed / busy_seconds if busy_seconds > 0.0 else 0.0
    positive = [rate for rate in rates.values() if rate > 0.0]
    fallback = (sum(positive) / len(positive)) if positive else 1.0
    effective = {name: (rate if rate > 0.0 else fallback)
                 for name, rate in rates.items()}
    total = sum(effective.values())
    weights = {name: rate / total for name, rate in effective.items()}
    uniform = 1.0 / len(weights)
    shift = 0.5 * sum(abs(weight - uniform) for weight in weights.values())
    return WeightRecommendation(weights=weights, rates=rates, shift=shift)
