"""Chordwise sampling distributions for airfoil discretization.

Panel methods are sensitive to how control points cluster near the
leading and trailing edges.  The classical choice is cosine spacing,
which concentrates points where the surface curvature (and the velocity
gradient) is largest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def uniform_spacing(count: int) -> np.ndarray:
    """``count`` chord fractions uniformly spaced on [0, 1]."""
    _require_at_least_two(count)
    return np.linspace(0.0, 1.0, count)


def cosine_spacing(count: int) -> np.ndarray:
    """Chord fractions clustered at both the leading and trailing edge.

    Uses ``x = (1 - cos(beta)) / 2`` with ``beta`` uniform on [0, pi],
    the standard full-cosine rule.
    """
    _require_at_least_two(count)
    beta = np.linspace(0.0, np.pi, count)
    return 0.5 * (1.0 - np.cos(beta))


def half_cosine_spacing(count: int) -> np.ndarray:
    """Chord fractions clustered at the leading edge only.

    Uses ``x = 1 - cos(beta)`` with ``beta`` uniform on [0, pi/2].
    """
    _require_at_least_two(count)
    beta = np.linspace(0.0, 0.5 * np.pi, count)
    return 1.0 - np.cos(beta)


_SPACING_FUNCTIONS = {
    "uniform": uniform_spacing,
    "cosine": cosine_spacing,
    "half-cosine": half_cosine_spacing,
}


def spacing(kind: str, count: int) -> np.ndarray:
    """Dispatch to a spacing rule by name.

    ``kind`` is one of ``"uniform"``, ``"cosine"``, ``"half-cosine"``.
    """
    try:
        function = _SPACING_FUNCTIONS[kind]
    except KeyError:
        known = ", ".join(sorted(_SPACING_FUNCTIONS))
        raise GeometryError(f"unknown spacing kind {kind!r}; expected one of {known}")
    return function(count)


def _require_at_least_two(count: int) -> None:
    if count < 2:
        raise GeometryError(f"need at least 2 sample points, got {count}")
