"""PARSEC airfoil parametrization.

PARSEC (Sobieczky 1998) describes each airfoil surface as a sum of six
half-integer powers of the chord fraction,

    y(x) = sum_{k=1..6} a_k x^(k - 1/2),

with the coefficients determined from *aerodynamically meaningful*
design parameters: leading-edge radius, crest position and curvature,
trailing-edge ordinate and angles.  It is the standard alternative to
B-splines in the airfoil-GA literature the paper draws on, and is
provided here so the optimizer can be run over either parametrization.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import GeometryError
from repro.geometry.airfoil import Airfoil
from repro.geometry.sampling import cosine_spacing

#: Exponents of the PARSEC basis.
_EXPONENTS = np.arange(1, 7) - 0.5  # 1/2, 3/2, ..., 11/2


def _surface_coefficients(*, le_radius: float, crest_x: float, crest_y: float,
                          crest_curvature: float, te_y: float,
                          te_slope: float) -> np.ndarray:
    """Solve the 6x6 linear system defining one surface's coefficients.

    Conditions: leading-edge radius (via ``a_1 = sqrt(2 r_le)``), the
    surface passing through its crest with zero slope and the given
    curvature, and the trailing-edge ordinate and slope at ``x = 1``.
    """
    if le_radius <= 0.0:
        raise GeometryError(f"leading-edge radius must be positive, got {le_radius}")
    if not 0.05 < crest_x < 0.95:
        raise GeometryError(f"crest position {crest_x} outside (0.05, 0.95)")
    e = _EXPONENTS
    matrix = np.zeros((6, 6))
    rhs = np.zeros(6)
    # a_1 fixes the leading-edge radius.
    matrix[0, 0] = 1.0
    rhs[0] = math.sqrt(2.0 * le_radius)
    # Trailing-edge ordinate: y(1) = te_y.
    matrix[1] = 1.0
    rhs[1] = te_y
    # Trailing-edge slope: y'(1) = te_slope.
    matrix[2] = e
    rhs[2] = te_slope
    # Crest ordinate, slope, curvature.
    matrix[3] = crest_x**e
    rhs[3] = crest_y
    matrix[4] = e * crest_x ** (e - 1.0)
    rhs[4] = 0.0
    matrix[5] = e * (e - 1.0) * crest_x ** (e - 2.0)
    rhs[5] = crest_curvature
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        raise GeometryError("degenerate PARSEC conditions (singular system)")


@dataclasses.dataclass(frozen=True)
class ParsecAirfoil:
    """A PARSEC-parametrized airfoil.

    Parameters follow the standard PARSEC-11 set (with a sharp trailing
    edge, i.e. zero trailing-edge thickness): leading-edge radii of the
    two surfaces, upper/lower crest positions/ordinates/curvatures, and
    the trailing-edge direction and wedge angles (radians).
    """

    le_radius_upper: float = 0.015
    le_radius_lower: float = 0.010
    upper_crest_x: float = 0.40
    upper_crest_y: float = 0.065
    upper_crest_curvature: float = -0.45
    lower_crest_x: float = 0.35
    lower_crest_y: float = -0.045
    lower_crest_curvature: float = 0.35
    te_direction: float = math.radians(-6.0)  # mean camber angle at TE
    te_wedge: float = math.radians(12.0)  # included angle between surfaces
    name: str = "PARSEC airfoil"

    def upper_coefficients(self) -> np.ndarray:
        """Polynomial coefficients of the upper surface.

        The upper surface meets the trailing edge *below* the mean
        direction by half the wedge angle (it closes from above).
        """
        slope = math.tan(self.te_direction - 0.5 * self.te_wedge)
        return _surface_coefficients(
            le_radius=self.le_radius_upper,
            crest_x=self.upper_crest_x,
            crest_y=self.upper_crest_y,
            crest_curvature=self.upper_crest_curvature,
            te_y=0.0,
            te_slope=slope,
        )

    def lower_coefficients(self) -> np.ndarray:
        """Polynomial coefficients of the lower surface.

        Mirror of the upper surface: half the wedge angle *above* the
        mean trailing-edge direction (it closes from below).
        """
        slope = math.tan(self.te_direction + 0.5 * self.te_wedge)
        return _surface_coefficients(
            le_radius=self.le_radius_lower,
            crest_x=self.lower_crest_x,
            crest_y=self.lower_crest_y,
            crest_curvature=self.lower_crest_curvature,
            te_y=0.0,
            te_slope=slope,
        )

    def surface_heights(self, x: np.ndarray, *, upper: bool) -> np.ndarray:
        """``y(x)`` of one surface at chord fractions *x*."""
        x = np.asarray(x, dtype=np.float64)
        coefficients = (self.upper_coefficients() if upper
                        else self.lower_coefficients())
        powers = x[:, None] ** _EXPONENTS[None, :]
        return powers @ coefficients

    def to_airfoil(self, n_panels: int = 200) -> Airfoil:
        """Discretize into an :class:`Airfoil` with *n_panels* panels."""
        if n_panels < 4 or n_panels % 2:
            raise GeometryError(f"n_panels must be an even number >= 4, got {n_panels}")
        x = cosine_spacing(n_panels // 2 + 1)
        upper = np.column_stack([x, self.surface_heights(x, upper=True)])
        lower = np.column_stack([x, self.surface_heights(x, upper=False)])
        upper[0] = lower[0] = (0.0, 0.0)
        upper[-1] = lower[-1] = (1.0, 0.0)
        return Airfoil.from_surfaces(upper, lower, name=self.name)

    def max_thickness(self, samples: int = 256) -> float:
        """Approximate maximum thickness of the section."""
        x = np.linspace(0.0, 1.0, samples)
        thickness = (self.surface_heights(x, upper=True)
                     - self.surface_heights(x, upper=False))
        return float(thickness.max())

    def is_feasible(self, *, min_thickness: float = 0.0,
                    samples: int = 65) -> bool:
        """True when the interior thickness stays above the floor.

        The sharp trailing edge closes linearly, so the check covers the
        front 90 % of the chord (plus a positivity check on the rest).
        """
        x = np.linspace(0.0, 0.9, samples)[1:]
        thickness = (self.surface_heights(x, upper=True)
                     - self.surface_heights(x, upper=False))
        if not np.all(thickness > min_thickness):
            return False
        aft = np.linspace(0.9, 1.0, 17)[:-1]
        aft_thickness = (self.surface_heights(aft, upper=True)
                         - self.surface_heights(aft, upper=False))
        return bool(np.all(aft_thickness > 0.0))
