"""Geometric sanity checks for candidate airfoils.

The genetic optimizer produces arbitrary B-spline shapes; before an
expensive panel analysis each candidate is screened here.  Each check
returns a :class:`ValidationIssue` rather than raising, so callers can
collect every problem at once.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil


@dataclasses.dataclass(frozen=True)
class ValidationIssue:
    """A single problem found in an airfoil outline."""

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """The outcome of validating one airfoil."""

    airfoil_name: str
    issues: List[ValidationIssue]

    @property
    def ok(self) -> bool:
        """True when no issues were found."""
        return not self.issues

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"{self.airfoil_name}: ok"
        summary = "; ".join(str(issue) for issue in self.issues)
        return f"{self.airfoil_name}: {summary}"


def validate_airfoil(
    airfoil: Airfoil,
    *,
    min_thickness: float = 1e-3,
    min_area: float = 1e-4,
    max_panel_length_ratio: float = 150.0,
    check_self_intersection: bool = True,
) -> ValidationReport:
    """Run every geometric check and collect the issues.

    Parameters
    ----------
    min_thickness:
        Minimum acceptable maximum thickness (chord fractions).
    min_area:
        Minimum enclosed area (chord-squared units).
    max_panel_length_ratio:
        Maximum allowed ratio between the longest and shortest panel;
        extreme ratios destabilize the influence-coefficient matrix.
    check_self_intersection:
        The O(n^2) crossing test can be disabled for speed when
        screening large populations whose construction already
        guarantees simple outlines.
    """
    issues: List[ValidationIssue] = []

    thickness = airfoil.max_thickness
    if thickness < min_thickness:
        issues.append(ValidationIssue(
            "thin", f"max thickness {thickness:.5f} below minimum {min_thickness:.5f}"
        ))

    area = airfoil.area
    if area < min_area:
        issues.append(ValidationIssue(
            "area", f"enclosed area {area:.6f} below minimum {min_area:.6f}"
        ))

    lengths = airfoil.panel_lengths
    ratio = float(lengths.max() / lengths.min())
    if ratio > max_panel_length_ratio:
        issues.append(ValidationIssue(
            "panels", f"panel length ratio {ratio:.1f} exceeds {max_panel_length_ratio:.1f}"
        ))

    if check_self_intersection and pt.polyline_self_intersects(airfoil.points):
        issues.append(ValidationIssue("crossing", "outline self-intersects"))

    negative = _negative_thickness_fraction(airfoil)
    if negative is not None and negative > 0.0:
        issues.append(ValidationIssue(
            "inverted", f"surfaces crossed over {negative:.0%} of the chord"
        ))

    return ValidationReport(airfoil_name=airfoil.name, issues=issues)


def _negative_thickness_fraction(airfoil: Airfoil) -> Optional[float]:
    """Fraction of chord stations where lower surface sits above upper.

    Returns ``None`` when the surfaces do not overlap in x at all
    (a degenerate shape caught by the other checks anyway).
    """
    upper, lower = airfoil.surfaces()
    lo = max(upper[:, 0].min(), lower[:, 0].min())
    hi = min(upper[:, 0].max(), lower[:, 0].max())
    if hi <= lo:
        return None
    stations = np.linspace(lo, hi, 129)[1:-1]
    y_up = np.interp(stations, upper[:, 0], upper[:, 1])
    y_lo = np.interp(stations, lower[:, 0], lower[:, 1])
    return float(np.mean((y_up - y_lo) < -1e-9))
