"""Geometry substrate: points, airfoils, NACA sections, B-splines.

This package provides every geometric building block the panel method
and the genetic optimizer rely on.  The central type is
:class:`~repro.geometry.airfoil.Airfoil`, an immutable closed polyline
with cached panel quantities.
"""

from repro.geometry.airfoil import Airfoil
from repro.geometry.bspline import BSplineAirfoil, BSplineCurve, open_uniform_knots
from repro.geometry.io import read_dat, read_dat_string, to_dat_string, write_dat
from repro.geometry.naca import naca, naca4, naca5
from repro.geometry.parsec import ParsecAirfoil
from repro.geometry.refine import outline_curvature, repanel
from repro.geometry.sampling import (
    cosine_spacing,
    half_cosine_spacing,
    spacing,
    uniform_spacing,
)
from repro.geometry.transforms import normalize_chord, pitch, rotate, scale, translate
from repro.geometry.validate import ValidationIssue, ValidationReport, validate_airfoil

__all__ = [
    "Airfoil",
    "BSplineAirfoil",
    "BSplineCurve",
    "ParsecAirfoil",
    "ValidationIssue",
    "ValidationReport",
    "cosine_spacing",
    "half_cosine_spacing",
    "naca",
    "naca4",
    "naca5",
    "normalize_chord",
    "outline_curvature",
    "open_uniform_knots",
    "pitch",
    "read_dat",
    "read_dat_string",
    "repanel",
    "rotate",
    "scale",
    "spacing",
    "to_dat_string",
    "translate",
    "uniform_spacing",
    "validate_airfoil",
    "write_dat",
]
