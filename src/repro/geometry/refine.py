"""Curvature-adaptive repaneling of airfoil outlines.

Panel methods converge fastest when panels concentrate where the
surface curves — the nose, primarily.  Cosine spacing does this well
for conventional sections; for arbitrary outlines (GA products, file
imports) this module redistributes a fixed panel budget proportionally
to the local curvature, which measurably improves lift-coefficient
convergence at the same cost (the test suite quantifies it on a
deliberately badly-paneled section).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil


def outline_curvature(airfoil: Airfoil) -> np.ndarray:
    """Discrete curvature magnitude at each outline point (cyclic).

    Uses the circumscribed-circle (Menger) curvature of consecutive
    point triples; endpoints wrap around the closed outline.
    """
    closed = airfoil.points[:-1]  # drop the duplicate closing point
    before = np.roll(closed, 1, axis=0)
    after = np.roll(closed, -1, axis=0)
    a = np.linalg.norm(closed - before, axis=1)
    b = np.linalg.norm(after - closed, axis=1)
    c = np.linalg.norm(after - before, axis=1)
    cross = np.abs(pt.cross_z(closed - before, after - closed))
    denominator = a * b * c
    curvature = np.where(denominator > 1e-300, 2.0 * cross / denominator, 0.0)
    return curvature


def repanel(airfoil: Airfoil, n_panels: int = None, *,
            curvature_weight: float = 1.0,
            smoothing_passes: int = 2) -> Airfoil:
    """Redistribute panels along the outline by local curvature.

    Parameters
    ----------
    airfoil:
        The outline to resample (shape is preserved: new nodes are
        linear interpolants of the old outline).
    n_panels:
        New panel budget (defaults to the current count).
    curvature_weight:
        0 gives uniform arc-length spacing; larger values concentrate
        nodes at high curvature.  The node density is proportional to
        ``1 + w * kappa / mean(kappa)``.
    smoothing_passes:
        Neighbour-averaging sweeps applied to the curvature signal so
        noise in a coarse outline does not fragment the distribution.
    """
    if n_panels is None:
        n_panels = airfoil.n_panels
    if n_panels < 4:
        raise GeometryError(f"need at least 4 panels, got {n_panels}")
    if curvature_weight < 0.0:
        raise GeometryError("curvature weight cannot be negative")

    points = airfoil.points
    arc = pt.arc_length_parameter(points)
    curvature = outline_curvature(airfoil)
    curvature = np.append(curvature, curvature[0])  # value at closing point
    for _ in range(smoothing_passes):
        curvature = (np.roll(curvature, 1) + curvature + np.roll(curvature, -1)) / 3.0

    mean_curvature = curvature.mean()
    if mean_curvature <= 0.0:
        density = np.ones_like(curvature)
    else:
        density = 1.0 + curvature_weight * curvature / mean_curvature

    # Cumulative "node mass" along the outline; resampling at equal
    # mass increments concentrates nodes where the density is high.
    increments = 0.5 * (density[1:] + density[:-1]) * np.diff(arc)
    mass = np.concatenate([[0.0], np.cumsum(increments)])
    targets = np.linspace(0.0, mass[-1], n_panels + 1)
    new_arc = np.interp(targets, mass, arc)
    new_x = np.interp(new_arc, arc, points[:, 0])
    new_y = np.interp(new_arc, arc, points[:, 1])
    resampled = np.column_stack([new_x, new_y])
    resampled[0] = points[0]
    resampled[-1] = points[0]
    return Airfoil(points=resampled, name=airfoil.name)
