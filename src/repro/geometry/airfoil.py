"""The :class:`Airfoil` container used by the panel method.

An airfoil is a closed polyline ``x_0, x_1, ..., x_n`` with
``x_n == x_0`` and the trailing edge at ``x_0`` (the paper's Section 2
convention).  Points are ordered counter-clockwise: from the trailing
edge over the upper surface to the leading edge and back along the
lower surface — the standard Selig ordering.
"""

from __future__ import annotations

import dataclasses
from functools import cached_property

import numpy as np

from repro.errors import GeometryError
from repro.geometry import points as pt


@dataclasses.dataclass(frozen=True)
class Airfoil:
    """A discretized airfoil outline.

    Parameters
    ----------
    points:
        ``(n + 1, 2)`` array of outline coordinates with
        ``points[0] == points[-1]`` (closed) and the trailing edge at
        index 0.  Counter-clockwise orientation is required; use
        :meth:`from_points` to normalize arbitrary input.
    name:
        Optional human-readable label used in reports and plots.

    Notes
    -----
    The instance is immutable: the coordinate array is copied and set
    non-writeable so cached panel quantities can never go stale.
    """

    points: np.ndarray
    name: str = "airfoil"

    def __post_init__(self) -> None:
        raw = np.asarray(self.points)
        dtype = raw.dtype if np.issubdtype(raw.dtype, np.floating) else np.float64
        points = pt.as_points(raw, dtype=dtype)
        if len(points) < 4:
            raise GeometryError(
                f"an airfoil needs at least 3 panels, got {len(points) - 1}"
            )
        if not np.allclose(points[0], points[-1], atol=1e-12):
            raise GeometryError("airfoil outline must be closed (points[0] == points[-1])")
        if pt.is_clockwise(points):
            raise GeometryError(
                "airfoil points must be ordered counter-clockwise "
                "(trailing edge -> upper surface -> leading edge -> lower surface); "
                "use Airfoil.from_points to reorder automatically"
            )
        lengths = pt.segment_lengths(points)
        if np.any(lengths <= 0.0):
            raise GeometryError("airfoil outline contains zero-length panels")
        points = points.copy()
        points.setflags(write=False)
        object.__setattr__(self, "points", points)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points, name: str = "airfoil") -> "Airfoil":
        """Build an airfoil from raw coordinates, normalizing as needed.

        Closes the outline if the first point is not repeated, reverses
        clockwise input, and drops consecutive duplicate points.
        """
        points = pt.as_points(points)
        keep = np.ones(len(points), dtype=bool)
        keep[1:] = pt.norms(np.diff(points, axis=0)) > 1e-14
        points = points[keep]
        if not np.allclose(points[0], points[-1], atol=1e-12):
            points = np.vstack([points, points[0]])
        if pt.is_clockwise(points):
            points = points[::-1].copy()
        return cls(points=points, name=name)

    @classmethod
    def from_surfaces(cls, upper, lower, name: str = "airfoil") -> "Airfoil":
        """Build an airfoil from separate upper and lower surface arrays.

        Both surfaces run from the leading edge to the trailing edge.
        The shared leading-edge point and, if coincident, the shared
        trailing-edge point are deduplicated.
        """
        upper = pt.as_points(upper)
        lower = pt.as_points(lower)
        if not np.allclose(upper[0], lower[0], atol=1e-9):
            raise GeometryError("upper and lower surfaces must share a leading edge")
        outline = np.vstack([upper[::-1], lower[1:]])
        if not np.allclose(outline[0], outline[-1], atol=1e-12):
            outline = np.vstack([outline, outline[0]])
        return cls.from_points(outline, name=name)

    # ------------------------------------------------------------------
    # Panel quantities
    # ------------------------------------------------------------------

    @property
    def n_panels(self) -> int:
        """Number of straight panels in the discretization."""
        return len(self.points) - 1

    @cached_property
    def panel_vectors(self) -> np.ndarray:
        """``h_i = x_{i+1} - x_i`` for every panel, shape ``(n, 2)``."""
        return np.diff(self.points, axis=0)

    @cached_property
    def panel_lengths(self) -> np.ndarray:
        """``|h_i|`` for every panel."""
        return pt.norms(self.panel_vectors)

    @cached_property
    def control_points(self) -> np.ndarray:
        """Panel midpoints ``x_{i+1/2}`` where the boundary condition holds."""
        return pt.midpoints(self.points)

    @cached_property
    def tangents(self) -> np.ndarray:
        """Unit tangent of each panel, in traversal direction."""
        return pt.normalize(self.panel_vectors)

    @cached_property
    def normals(self) -> np.ndarray:
        """Outward unit normal of each panel."""
        return pt.normalize(pt.perpendicular(self.panel_vectors))

    # ------------------------------------------------------------------
    # Global shape quantities
    # ------------------------------------------------------------------

    @property
    def trailing_edge(self) -> np.ndarray:
        """Coordinates of the trailing edge (point index 0)."""
        return self.points[0]

    @cached_property
    def leading_edge_index(self) -> int:
        """Index of the outline point farthest from the trailing edge."""
        offsets = self.points[:-1] - self.trailing_edge
        return int(np.argmax(pt.dot(offsets, offsets)))

    @property
    def leading_edge(self) -> np.ndarray:
        """Coordinates of the point farthest from the trailing edge."""
        return self.points[self.leading_edge_index]

    @property
    def chord(self) -> float:
        """Distance from the leading to the trailing edge."""
        return float(np.linalg.norm(self.trailing_edge - self.leading_edge))

    @property
    def area(self) -> float:
        """Enclosed (positive) cross-sectional area."""
        return abs(pt.signed_polygon_area(self.points))

    @cached_property
    def perimeter(self) -> float:
        """Total outline length."""
        return float(self.panel_lengths.sum())

    @cached_property
    def max_thickness(self) -> float:
        """Maximum thickness measured between the two surfaces.

        Computed by interpolating upper and lower surface ``y`` at
        common chordwise stations; assumes a conventional (roughly
        chord-aligned) airfoil.
        """
        upper, lower = self.surfaces()
        stations = np.linspace(
            max(upper[:, 0].min(), lower[:, 0].min()),
            min(upper[:, 0].max(), lower[:, 0].max()),
            256,
        )
        y_up = np.interp(stations, upper[:, 0], upper[:, 1])
        y_lo = np.interp(stations, lower[:, 0], lower[:, 1])
        return float(np.max(y_up - y_lo))

    def surfaces(self) -> tuple:
        """Split the outline into (upper, lower) surfaces.

        Both returned arrays run from the leading edge to the trailing
        edge and are sorted by increasing ``x`` for interpolation.
        """
        le = self.leading_edge_index
        upper = self.points[: le + 1][::-1]  # TE -> LE reversed to LE -> TE
        lower = self.points[le:]  # LE -> TE (includes closing point)
        upper = upper[np.argsort(upper[:, 0], kind="stable")]
        lower = lower[np.argsort(lower[:, 0], kind="stable")]
        return upper, lower

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_name(self, name: str) -> "Airfoil":
        """A copy of this airfoil carrying a different label."""
        return dataclasses.replace(self, name=name)

    def astype(self, dtype) -> "Airfoil":
        """A copy with the coordinate array cast to *dtype*."""
        return Airfoil(points=np.asarray(self.points, dtype=dtype), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Airfoil(name={self.name!r}, n_panels={self.n_panels}, chord={self.chord:.4g})"
