"""Rigid and affine transforms for point sets and airfoils.

The panel solver keeps the airfoil fixed and rotates the free-stream
instead, but reporting, plotting, and geometry generation frequently
need explicit transforms.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil


def rotation_matrix(angle: float) -> np.ndarray:
    """2x2 counter-clockwise rotation matrix for *angle* radians."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s], [s, c]])


def rotate(points: np.ndarray, angle: float, center=(0.0, 0.0)) -> np.ndarray:
    """Rotate points counter-clockwise by *angle* radians about *center*."""
    points = pt.as_points(points)
    center = np.asarray(center, dtype=np.float64)
    return (points - center) @ rotation_matrix(angle).T + center


def translate(points: np.ndarray, offset) -> np.ndarray:
    """Translate points by the 2-vector *offset*."""
    return pt.as_points(points) + np.asarray(offset, dtype=np.float64)


def scale(points: np.ndarray, factor, center=(0.0, 0.0)) -> np.ndarray:
    """Scale points about *center*; *factor* may be scalar or per-axis."""
    points = pt.as_points(points)
    center = np.asarray(center, dtype=np.float64)
    return (points - center) * np.asarray(factor, dtype=np.float64) + center


def normalize_chord(airfoil: Airfoil) -> Airfoil:
    """Rescale and shift an airfoil to the unit chord convention.

    The leading edge moves to the origin and the trailing edge to
    ``(1, 0)``: translation, rotation, and uniform scaling only.
    """
    le, te = airfoil.leading_edge, airfoil.trailing_edge
    chord_vector = te - le
    chord = float(np.linalg.norm(chord_vector))
    angle = float(np.arctan2(chord_vector[1], chord_vector[0]))
    points = translate(airfoil.points, -le)
    points = rotate(points, -angle)
    points = scale(points, 1.0 / chord)
    return Airfoil.from_points(points, name=airfoil.name)


def pitch(airfoil: Airfoil, angle: float, center=(0.25, 0.0)) -> Airfoil:
    """Rotate an airfoil nose-up by *angle* radians about *center*.

    Nose-up (positive incidence) corresponds to a clockwise rotation of
    the geometry, equivalent to increasing the angle of attack when the
    free-stream is held horizontal.
    """
    return Airfoil.from_points(
        rotate(airfoil.points, -angle, center=center), name=airfoil.name
    )
