"""Generators for NACA 4-digit and 5-digit airfoil sections.

The paper's Figure 1 shows a NACA 2412; these generators provide the
classical analytic definitions so every experiment can construct its
geometry from scratch.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.airfoil import Airfoil
from repro.geometry.sampling import spacing

# Coefficients of the NACA thickness polynomial.
_THICKNESS_COEFFS = (0.2969, -0.1260, -0.3516, 0.2843)
_TE_COEFF_OPEN = -0.1015  # original: finite trailing-edge thickness
_TE_COEFF_CLOSED = -0.1036  # modified: exactly closed trailing edge


def thickness_distribution(x: np.ndarray, thickness: float, *, closed_te: bool = True) -> np.ndarray:
    """Half-thickness ``y_t(x)`` of a NACA section.

    ``x`` holds chord fractions on [0, 1]; ``thickness`` is the maximum
    thickness as a fraction of chord (e.g. 0.12 for a NACA xx12).
    """
    a4 = _TE_COEFF_CLOSED if closed_te else _TE_COEFF_OPEN
    a0, a1, a2, a3 = _THICKNESS_COEFFS
    x = np.asarray(x, dtype=np.float64)
    return 5.0 * thickness * (
        a0 * np.sqrt(x) + a1 * x + a2 * x**2 + a3 * x**3 + a4 * x**4
    )


def camber_line_4digit(x: np.ndarray, camber: float, camber_pos: float) -> tuple:
    """Camber line ``y_c(x)`` and slope ``dy_c/dx`` of a 4-digit section.

    ``camber`` is the maximum camber (fraction of chord) and
    ``camber_pos`` its chordwise position (fraction of chord).
    """
    x = np.asarray(x, dtype=np.float64)
    y_c = np.zeros_like(x)
    dy_dx = np.zeros_like(x)
    if camber == 0.0 or camber_pos == 0.0:
        return y_c, dy_dx
    m, p = camber, camber_pos
    front = x < p
    y_c[front] = m / p**2 * (2.0 * p * x[front] - x[front] ** 2)
    dy_dx[front] = 2.0 * m / p**2 * (p - x[front])
    rear = ~front
    y_c[rear] = m / (1.0 - p) ** 2 * ((1.0 - 2.0 * p) + 2.0 * p * x[rear] - x[rear] ** 2)
    dy_dx[rear] = 2.0 * m / (1.0 - p) ** 2 * (p - x[rear])
    return y_c, dy_dx


def camber_line_5digit(x: np.ndarray, designation: str) -> tuple:
    """Camber line and slope of a standard (non-reflex) 5-digit section.

    Only the classical 210-250 camber families are supported.
    """
    profiles = {
        # camber code -> (m, k1) from the NACA report tabulation
        "210": (0.0580, 361.400),
        "220": (0.1260, 51.640),
        "230": (0.2025, 15.957),
        "240": (0.2900, 6.643),
        "250": (0.3910, 3.230),
    }
    code = designation[:3]
    if code not in profiles:
        known = ", ".join(sorted(profiles))
        raise GeometryError(f"unsupported 5-digit camber code {code!r}; known: {known}")
    m, k1 = profiles[code]
    x = np.asarray(x, dtype=np.float64)
    y_c = np.zeros_like(x)
    dy_dx = np.zeros_like(x)
    front = x < m
    xf = x[front]
    y_c[front] = k1 / 6.0 * (xf**3 - 3.0 * m * xf**2 + m**2 * (3.0 - m) * xf)
    dy_dx[front] = k1 / 6.0 * (3.0 * xf**2 - 6.0 * m * xf + m**2 * (3.0 - m))
    rear = ~front
    y_c[rear] = k1 * m**3 / 6.0 * (1.0 - x[rear])
    dy_dx[rear] = -k1 * m**3 / 6.0
    return y_c, dy_dx


def _surface_points(x, y_c, dy_dx, y_t) -> tuple:
    """Upper/lower surfaces offset perpendicular to the camber line."""
    theta = np.arctan(dy_dx)
    upper = np.column_stack([x - y_t * np.sin(theta), y_c + y_t * np.cos(theta)])
    lower = np.column_stack([x + y_t * np.sin(theta), y_c - y_t * np.cos(theta)])
    # Pin the shared endpoints so the outline closes exactly.
    upper[0] = lower[0] = (0.0, float(y_c[0]))
    upper[-1] = lower[-1] = (1.0, float(y_c[-1]))
    return upper, lower


def naca4(designation: str, n_panels: int = 200, *, spacing_kind: str = "cosine",
          closed_te: bool = True) -> Airfoil:
    """Generate a NACA 4-digit airfoil such as ``"2412"``.

    ``n_panels`` is the total number of panels around the outline; it
    must be even so both surfaces get the same resolution.  Chord length
    is 1 with the trailing edge at ``(1, 0)``.
    """
    digits = designation.strip()
    if len(digits) != 4 or not digits.isdigit():
        raise GeometryError(f"not a 4-digit NACA designation: {designation!r}")
    if n_panels < 4 or n_panels % 2:
        raise GeometryError(f"n_panels must be an even number >= 4, got {n_panels}")
    camber = int(digits[0]) / 100.0
    camber_pos = int(digits[1]) / 10.0
    thickness = int(digits[2:]) / 100.0
    if thickness == 0.0:
        raise GeometryError("zero-thickness sections cannot be paneled; use >= 01")
    x = spacing(spacing_kind, n_panels // 2 + 1)
    y_t = thickness_distribution(x, thickness, closed_te=closed_te)
    y_c, dy_dx = camber_line_4digit(x, camber, camber_pos)
    upper, lower = _surface_points(x, y_c, dy_dx, y_t)
    return Airfoil.from_surfaces(upper, lower, name=f"NACA {digits}")


def naca5(designation: str, n_panels: int = 200, *, spacing_kind: str = "cosine",
          closed_te: bool = True) -> Airfoil:
    """Generate a NACA 5-digit airfoil such as ``"23012"``."""
    digits = designation.strip()
    if len(digits) != 5 or not digits.isdigit():
        raise GeometryError(f"not a 5-digit NACA designation: {designation!r}")
    if n_panels < 4 or n_panels % 2:
        raise GeometryError(f"n_panels must be an even number >= 4, got {n_panels}")
    thickness = int(digits[3:]) / 100.0
    if thickness == 0.0:
        raise GeometryError("zero-thickness sections cannot be paneled; use >= 01")
    x = spacing(spacing_kind, n_panels // 2 + 1)
    y_t = thickness_distribution(x, thickness, closed_te=closed_te)
    y_c, dy_dx = camber_line_5digit(x, digits)
    upper, lower = _surface_points(x, y_c, dy_dx, y_t)
    return Airfoil.from_surfaces(upper, lower, name=f"NACA {digits}")


def naca(designation: str, n_panels: int = 200, **kwargs) -> Airfoil:
    """Generate a 4- or 5-digit NACA airfoil, dispatching on length."""
    digits = designation.strip()
    if len(digits) == 4:
        return naca4(digits, n_panels, **kwargs)
    if len(digits) == 5:
        return naca5(digits, n_panels, **kwargs)
    raise GeometryError(f"unsupported NACA designation: {designation!r}")
