"""B-spline curves and B-spline airfoil parametrization.

The paper's genetic optimizer mutates B-spline coefficients one at a
time; this module implements the required machinery from scratch:
Cox–de Boor basis evaluation, open-uniform knot vectors, curve
evaluation and derivatives, and a compact airfoil parametrization whose
degrees of freedom are the control-point heights of the upper and lower
surfaces.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import GeometryError
from repro.geometry.airfoil import Airfoil
from repro.geometry.sampling import cosine_spacing


def open_uniform_knots(n_control: int, degree: int) -> np.ndarray:
    """Open-uniform (clamped) knot vector for *n_control* points.

    The first and last knots repeat ``degree + 1`` times so the curve
    interpolates its end control points.
    """
    if n_control <= degree:
        raise GeometryError(
            f"need more control points ({n_control}) than the degree ({degree})"
        )
    n_interior = n_control - degree - 1
    interior = np.linspace(0.0, 1.0, n_interior + 2)[1:-1]
    return np.concatenate([
        np.zeros(degree + 1),
        interior,
        np.ones(degree + 1),
    ])


def basis_functions(knots: np.ndarray, degree: int, parameters: np.ndarray) -> np.ndarray:
    """Evaluate all B-spline basis functions at the given parameters.

    Returns an array of shape ``(len(parameters), n_control)`` where
    ``n_control = len(knots) - degree - 1``, built with the Cox–de Boor
    recursion.  The conventional right-end fix makes the basis sum to
    one at ``t = 1`` as well.
    """
    knots = np.asarray(knots, dtype=np.float64)
    t = np.atleast_1d(np.asarray(parameters, dtype=np.float64))
    if np.any(t < knots[0]) or np.any(t > knots[-1]):
        raise GeometryError("parameter outside the knot range")
    n_control = len(knots) - degree - 1
    # Degree-0 basis: indicator of the half-open knot span.
    n_basis0 = len(knots) - 1
    basis = np.zeros((len(t), n_basis0))
    for i in range(n_basis0):
        left, right = knots[i], knots[i + 1]
        if right > left:
            basis[:, i] = (t >= left) & (t < right)
    # Right-end fix: the last non-empty span is closed at t == knots[-1].
    at_end = t == knots[-1]
    if np.any(at_end):
        last = np.max(np.nonzero(np.diff(knots) > 0.0))
        basis[at_end, last] = 1.0
    # Cox–de Boor recursion up to the requested degree.
    for p in range(1, degree + 1):
        new_basis = np.zeros((len(t), n_basis0 - p))
        for i in range(n_basis0 - p):
            denom_left = knots[i + p] - knots[i]
            denom_right = knots[i + p + 1] - knots[i + 1]
            term = np.zeros(len(t))
            if denom_left > 0.0:
                term += (t - knots[i]) / denom_left * basis[:, i]
            if denom_right > 0.0:
                term += (knots[i + p + 1] - t) / denom_right * basis[:, i + 1]
            new_basis[:, i] = term
        basis = new_basis
    return basis[:, :n_control]


@dataclasses.dataclass(frozen=True)
class BSplineCurve:
    """A clamped B-spline curve in the plane (or on a scalar axis).

    Parameters
    ----------
    control_points:
        ``(m, d)`` array of control points (``d`` is usually 1 or 2).
    degree:
        Polynomial degree (cubic by default).
    """

    control_points: np.ndarray
    degree: int = 3

    def __post_init__(self) -> None:
        control = np.atleast_2d(np.asarray(self.control_points, dtype=np.float64))
        if len(control) <= self.degree:
            raise GeometryError(
                f"a degree-{self.degree} spline needs at least "
                f"{self.degree + 1} control points, got {len(control)}"
            )
        control = control.copy()
        control.setflags(write=False)
        object.__setattr__(self, "control_points", control)

    @property
    def knots(self) -> np.ndarray:
        """The clamped open-uniform knot vector of the curve."""
        return open_uniform_knots(len(self.control_points), self.degree)

    def evaluate(self, parameters) -> np.ndarray:
        """Points on the curve at the given parameter values in [0, 1]."""
        basis = basis_functions(self.knots, self.degree, parameters)
        return basis @ self.control_points

    def derivative(self) -> "BSplineCurve":
        """The first-derivative curve (degree reduced by one)."""
        p = self.degree
        knots = self.knots
        control = self.control_points
        diffs = np.diff(control, axis=0)
        spans = knots[p + 1:len(control) + p] - knots[1:len(control)]
        scaled = p * diffs / spans[:, None]
        return BSplineCurve(control_points=scaled, degree=p - 1)

    def __len__(self) -> int:
        return len(self.control_points)


@dataclasses.dataclass(frozen=True)
class BSplineAirfoil:
    """Airfoil parametrized by B-spline control-point heights.

    The upper and lower surfaces are cubic B-splines over chord
    fractions.  The ``x`` locations of the control points are fixed
    (uniform in chord); the free parameters — the genome of the genetic
    optimizer — are the ``y`` heights of the interior control points.
    Leading and trailing edges are pinned at ``(0, 0)`` and ``(1, 0)``.

    Parameters
    ----------
    upper_heights / lower_heights:
        Heights of the interior control points of each surface, from
        just aft of the leading edge to just ahead of the trailing edge.
    degree:
        Spline degree (cubic by default).
    """

    upper_heights: np.ndarray
    lower_heights: np.ndarray
    degree: int = 3
    name: str = "b-spline airfoil"

    def __post_init__(self) -> None:
        for attr in ("upper_heights", "lower_heights"):
            heights = np.asarray(getattr(self, attr), dtype=np.float64).ravel().copy()
            if len(heights) < self.degree:
                raise GeometryError(
                    f"{attr} needs at least {self.degree} interior control points"
                )
            heights.setflags(write=False)
            object.__setattr__(self, attr, heights)

    @property
    def n_parameters(self) -> int:
        """Total number of free coefficients (the genome length)."""
        return len(self.upper_heights) + len(self.lower_heights)

    def coefficients(self) -> np.ndarray:
        """The flat parameter vector: upper heights then lower heights."""
        return np.concatenate([self.upper_heights, self.lower_heights])

    @classmethod
    def from_coefficients(cls, coefficients, n_upper: int, *, degree: int = 3,
                          name: str = "b-spline airfoil") -> "BSplineAirfoil":
        """Rebuild a parametrization from a flat coefficient vector."""
        coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
        return cls(
            upper_heights=coefficients[:n_upper],
            lower_heights=coefficients[n_upper:],
            degree=degree,
            name=name,
        )

    def _surface_curve(self, heights: np.ndarray) -> BSplineCurve:
        m = len(heights) + 2
        x_control = np.linspace(0.0, 1.0, m)
        y_control = np.concatenate([[0.0], heights, [0.0]])
        return BSplineCurve(
            control_points=np.column_stack([x_control, y_control]),
            degree=self.degree,
        )

    def upper_curve(self) -> BSplineCurve:
        """The upper-surface spline (leading edge to trailing edge)."""
        return self._surface_curve(self.upper_heights)

    def lower_curve(self) -> BSplineCurve:
        """The lower-surface spline (leading edge to trailing edge)."""
        return self._surface_curve(self.lower_heights)

    def to_airfoil(self, n_panels: int = 200) -> Airfoil:
        """Discretize into an :class:`Airfoil` with *n_panels* panels.

        Surface points use cosine clustering in the spline parameter so
        panels concentrate near the leading and trailing edges.
        """
        if n_panels < 4 or n_panels % 2:
            raise GeometryError(f"n_panels must be an even number >= 4, got {n_panels}")
        parameters = cosine_spacing(n_panels // 2 + 1)
        upper = self.upper_curve().evaluate(parameters)
        lower = self.lower_curve().evaluate(parameters)
        return Airfoil.from_surfaces(upper, lower, name=self.name)

    def thickness_at(self, stations) -> np.ndarray:
        """Upper-minus-lower surface height at the given chord stations.

        Uses the spline parameter as a chord proxy, which is accurate
        because the control-point ``x`` values are uniform.
        """
        stations = np.atleast_1d(np.asarray(stations, dtype=np.float64))
        upper = self.upper_curve().evaluate(stations)[:, 1]
        lower = self.lower_curve().evaluate(stations)[:, 1]
        return upper - lower

    def is_feasible(self, *, min_thickness: float = 0.0, stations: int = 33) -> bool:
        """True when the section has positive thickness everywhere.

        ``min_thickness`` sets a floor on the interior thickness (the
        pinned leading/trailing edges are excluded from the check).
        """
        interior = np.linspace(0.0, 1.0, stations)[1:-1]
        return bool(np.all(self.thickness_at(interior) > min_thickness))
