"""Reading and writing airfoil coordinate files.

Supports the ubiquitous Selig ``.dat`` format: an optional name line
followed by ``x y`` coordinate pairs running from the trailing edge over
the upper surface to the leading edge and back.
"""

from __future__ import annotations

import io
import os
from typing import TextIO, Union

import numpy as np

from repro.errors import GeometryError
from repro.geometry.airfoil import Airfoil

PathOrFile = Union[str, os.PathLike, TextIO]


def _parse_lines(lines, default_name: str) -> Airfoil:
    name = default_name
    coordinates = []
    for index, raw in enumerate(lines):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            values = [float(part) for part in parts[:2]]
            if len(values) != 2:
                raise ValueError
        except ValueError:
            if index == 0 and not coordinates:
                name = line
                continue
            raise GeometryError(f"cannot parse coordinate line {index + 1}: {raw!r}")
        coordinates.append(values)
    if len(coordinates) < 4:
        raise GeometryError("coordinate file holds fewer than 4 points")
    return Airfoil.from_points(np.array(coordinates), name=name)


def read_dat(source: PathOrFile, name: str = "") -> Airfoil:
    """Read an airfoil from a Selig-format ``.dat`` file or file object."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
        default_name = name or "airfoil"
    else:
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        default_name = name or os.path.splitext(os.path.basename(source))[0]
    return _parse_lines(lines, default_name)


def read_dat_string(text: str, name: str = "airfoil") -> Airfoil:
    """Read an airfoil from an in-memory Selig-format string."""
    return read_dat(io.StringIO(text), name=name)


def write_dat(airfoil: Airfoil, destination: PathOrFile, *, digits: int = 6) -> None:
    """Write an airfoil in Selig format.

    The closing point (a repeat of the trailing edge) is written, so a
    round trip through :func:`read_dat` reproduces the outline exactly
    up to the formatting precision.
    """
    lines = [airfoil.name]
    fmt = f"{{:.{digits}f}} {{:.{digits}f}}"
    lines.extend(fmt.format(x, y) for x, y in airfoil.points)
    text = "\n".join(lines) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)


def to_dat_string(airfoil: Airfoil, *, digits: int = 6) -> str:
    """Render an airfoil as a Selig-format string."""
    buffer = io.StringIO()
    write_dat(airfoil, buffer, digits=digits)
    return buffer.getvalue()
