"""Primitive operations on 2-D points and vectors.

Throughout the library a "point array" is a NumPy array of shape
``(n, 2)`` whose rows are ``(x, y)`` coordinates.  These helpers keep
the rest of the code free of axis bookkeeping.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import GeometryError

ArrayLike2D = Union[np.ndarray, Sequence[Sequence[float]], Iterable]


def as_points(data: ArrayLike2D, dtype=np.float64) -> np.ndarray:
    """Coerce *data* to a contiguous ``(n, 2)`` float array.

    Raises :class:`GeometryError` if the input cannot be interpreted as
    a sequence of 2-D points.
    """
    points = np.ascontiguousarray(data, dtype=dtype)
    if points.ndim == 1 and points.size == 2:
        points = points.reshape(1, 2)
    if points.ndim != 2 or points.shape[1] != 2:
        raise GeometryError(
            f"expected an (n, 2) array of points, got shape {points.shape}"
        )
    return points


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise dot product of two ``(..., 2)`` arrays."""
    return np.einsum("...i,...i->...", a, b)


def cross_z(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """z-component of the cross product of row vectors ``a`` and ``b``."""
    return a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]


def norms(vectors: np.ndarray) -> np.ndarray:
    """Euclidean length of each row vector."""
    return np.sqrt(dot(vectors, vectors))


def normalize(vectors: np.ndarray) -> np.ndarray:
    """Unit vectors parallel to each row of *vectors*.

    Raises :class:`GeometryError` if any row has zero length.
    """
    lengths = norms(vectors)
    if np.any(lengths == 0.0):
        raise GeometryError("cannot normalize a zero-length vector")
    return vectors / lengths[..., None]


def perpendicular(vectors: np.ndarray) -> np.ndarray:
    """Rotate each row vector by -90 degrees (clockwise).

    For panels traversed counter-clockwise around an airfoil (the
    convention of this library, matching the Selig point order: trailing
    edge, over the upper surface to the leading edge, and back along the
    lower surface), the clockwise perpendicular of the panel tangent
    points *outward*, into the flow domain, matching the paper's
    outward-pointing ``h_perp``.
    """
    perp = np.empty_like(vectors)
    perp[..., 0] = vectors[..., 1]
    perp[..., 1] = -vectors[..., 0]
    return perp


def segment_lengths(points: np.ndarray) -> np.ndarray:
    """Lengths of the polyline segments joining consecutive points."""
    points = as_points(points)
    return norms(np.diff(points, axis=0))


def polyline_length(points: np.ndarray) -> float:
    """Total arc length of the open polyline through *points*."""
    return float(segment_lengths(points).sum())


def arc_length_parameter(points: np.ndarray) -> np.ndarray:
    """Cumulative arc length at each point, starting at zero."""
    lengths = segment_lengths(points)
    parameter = np.empty(len(lengths) + 1, dtype=lengths.dtype)
    parameter[0] = 0.0
    np.cumsum(lengths, out=parameter[1:])
    return parameter


def midpoints(points: np.ndarray) -> np.ndarray:
    """Midpoints of consecutive point pairs (the panel control points)."""
    points = as_points(points)
    return 0.5 * (points[:-1] + points[1:])


def signed_polygon_area(points: np.ndarray) -> float:
    """Signed area of the polygon through *points* (shoelace formula).

    Positive for counter-clockwise orientation.  The first point does
    not need to be repeated at the end; a repeated closing point is
    handled correctly because its contribution is zero.
    """
    points = as_points(points)
    x, y = points[:, 0], points[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def is_clockwise(points: np.ndarray) -> bool:
    """True when the polygon through *points* is traversed clockwise."""
    return signed_polygon_area(points) < 0.0


def centroid(points: np.ndarray) -> np.ndarray:
    """Arithmetic mean of the points (not the area centroid)."""
    return as_points(points).mean(axis=0)


def bounding_box(points: np.ndarray) -> tuple:
    """``(min_xy, max_xy)`` corners of the axis-aligned bounding box."""
    points = as_points(points)
    return points.min(axis=0), points.max(axis=0)


def segments_intersect(p1, p2, q1, q2, *, tol: float = 1e-12) -> bool:
    """True if open segments ``p1-p2`` and ``q1-q2`` properly intersect.

    Shared endpoints do not count as an intersection, so consecutive
    polyline segments are never reported as intersecting.
    """
    p1 = np.asarray(p1, dtype=np.float64)
    p2 = np.asarray(p2, dtype=np.float64)
    q1 = np.asarray(q1, dtype=np.float64)
    q2 = np.asarray(q2, dtype=np.float64)
    r = p2 - p1
    s = q2 - q1
    denom = cross_z(r, s)
    if abs(denom) < tol:
        return False  # parallel or collinear: treated as non-crossing
    t = cross_z(q1 - p1, s) / denom
    u = cross_z(q1 - p1, r) / denom
    return tol < t < 1.0 - tol and tol < u < 1.0 - tol


def polyline_self_intersects(points: np.ndarray) -> bool:
    """True if any two non-adjacent segments of the polyline cross.

    Quadratic in the number of segments; intended for validation of
    airfoil outlines (a few hundred panels at most).
    """
    points = as_points(points)
    n = len(points) - 1
    closed = bool(np.allclose(points[0], points[-1]))
    for i in range(n):
        for j in range(i + 2, n):
            if closed and i == 0 and j == n - 1:
                continue  # first and last segment share the closing point
            if segments_intersect(points[i], points[i + 1], points[j], points[j + 1]):
                return True
    return False
