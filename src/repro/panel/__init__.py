"""The panel method: the paper's inner solver.

Public surface:

* :class:`PanelSolver` / :func:`solve_airfoil` — solve a configuration.
* :class:`PanelSolution` — vortex strengths plus lift, pressure, moment.
* :func:`assemble` / :func:`assemble_batch` — raw system assembly (what
  the accelerators compute in the paper).
* :class:`Freestream`, :class:`Closure` — problem definition.
"""

from repro.panel.assembly import (
    Closure,
    PanelSystem,
    assemble,
    assemble_batch,
    influence_matrix,
)
from repro.panel.freestream import Freestream
from repro.panel.influence import (
    ASSEMBLY_FLOPS_PER_ENTRY,
    assembly_flops,
    stream_influence_matrix,
    velocity_influence,
)
from repro.panel.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNEL_NAMES,
    native_status,
    resolve_kernel,
)
from repro.panel.hess_smith import (
    HessSmithSolution,
    solve_hess_smith,
    source_velocity_influence,
)
from repro.panel.multielement import MultiElementSolution, solve_multielement
from repro.panel.solution import PanelSolution
from repro.panel.solver import PanelSolver, solve_airfoil
from repro.panel.streamlines import Streamline, trace_streamline, trace_streamlines

__all__ = [
    "ASSEMBLY_FLOPS_PER_ENTRY",
    "DEFAULT_KERNEL",
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "native_status",
    "resolve_kernel",
    "Closure",
    "Freestream",
    "HessSmithSolution",
    "MultiElementSolution",
    "PanelSolution",
    "PanelSolver",
    "PanelSystem",
    "Streamline",
    "assemble",
    "assemble_batch",
    "assembly_flops",
    "influence_matrix",
    "solve_airfoil",
    "solve_hess_smith",
    "solve_multielement",
    "source_velocity_influence",
    "stream_influence_matrix",
    "trace_streamline",
    "trace_streamlines",
    "velocity_influence",
]
