"""Influence-coefficient kernels: reference, fused, and native.

The paper's central measurement is that filling the influence matrix
dominates CPU time — per entry the closed-form panel integral costs
two ``log`` and two ``arctan2`` evaluations.  This module implements
that integral three ways behind one selection knob:

``reference``
    Straight-line NumPy written for readability: one array per named
    subexpression, exactly mirroring the derivation.  It is the
    *bit-parity oracle* the other kernels are tested against.
``fused``
    The default.  Algebraically identical, but it exploits the panel
    structure: panel ``i``'s end point is panel ``i+1``'s start point,
    so the per-endpoint ``log |x - x_k|^2`` terms are computed once on
    the ``(points, n+1)`` endpoint grid and sliced twice (n+1 logs
    instead of 2n), and the two ``arctan2`` of the reference collapse
    into one via the subtended-angle identity (below).  Intermediate
    buffers are reused in place.  The elementwise operation sequence is
    kept identical to ``reference``, which is what makes the two
    kernels ``tobytes()``-identical in both precisions (NumPy ufuncs
    are value-deterministic: the same scalar inputs produce the same
    rounded outputs regardless of array shape or slicing).
``native``
    Opt-in C kernel compiled at first use with the host's C compiler
    and loaded through :mod:`ctypes`; import-time behaviour is
    stdlib-only and nothing is compiled until the kernel is actually
    selected.  When no compiler is available (or compilation fails)
    the kernel silently falls back to ``fused`` and records why in
    :func:`native_status`.  The C loop streams the shared endpoint
    terms through the inner loop (the same n+1-log structure as
    ``fused``) and always computes in ``double``, rounding once to the
    target dtype on store — so its ``float32`` output matches the
    double-precision reference rounded to ``float32`` (precision
    tiering).  Because C ``libm`` and NumPy's vectorized ``log`` /
    ``arctan2`` may differ in the last ulp, ``native`` is validated
    within tight tolerances rather than byte equality; see
    ``docs/kernels.md`` for the exact guarantees.

Both the stream-function and the velocity kernels use the
**subtended-angle identity**: with ``p_s = <d_s, h>``,
``p_e = <d_e, h>`` and ``I = <d_s, h_perp>`` (the same for both
endpoints since ``<h_perp, h> = 0``),

    arctan2(I, p_e) - arctan2(I, p_s) = arctan2(I |h|^2, p_s p_e + I^2)

because ``p_s - p_e = |h|^2`` and the subtended angle always lies in
``(-pi, pi)``.  One ``arctan2`` replaces two, and the signed-zero
behaviour of ``arctan2`` keeps the on-panel principal values: for a
point on the panel interior ``I = +-0`` and ``p_s p_e < 0``, so the
identity returns ``+-pi`` exactly as the two-call difference does.  At
an exact endpoint every argument vanishes and the angle term is zero.

Kernel selection: the ``REPRO_ASSEMBLY_KERNEL`` environment variable
(``reference`` / ``fused`` / ``native``) supplies the default;
explicit ``kernel=`` arguments (threaded through
:func:`repro.panel.influence.stream_influence_matrix`,
:func:`repro.panel.assembly.assemble`, the execution backends, the
:class:`~repro.serve.service.AnalysisService`, and the ``serve`` /
``analyze`` CLI flags) take precedence.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Callable, Optional

import numpy as np

from repro.errors import PanelMethodError
from repro.geometry import points as pt

#: Environment variable selecting the default kernel when no explicit
#: ``kernel=`` argument is passed.
KERNEL_ENV = "REPRO_ASSEMBLY_KERNEL"

#: Environment variable overriding the C compiler used for ``native``.
CC_ENV = "REPRO_NATIVE_CC"

#: Environment variable overriding where the compiled library is cached.
CACHE_ENV = "REPRO_NATIVE_CACHE"

#: Recognized kernel names, in documentation order.
KERNEL_NAMES = ("reference", "fused", "native")

#: The kernel used when neither the argument nor the environment says.
DEFAULT_KERNEL = "fused"


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Coerce a kernel selection to a validated name.

    ``None`` reads ``REPRO_ASSEMBLY_KERNEL`` (default ``fused``);
    anything else must be one of :data:`KERNEL_NAMES`.
    """
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV, "").strip() or DEFAULT_KERNEL
    name = str(kernel).strip().lower()
    if name not in KERNEL_NAMES:
        raise PanelMethodError(
            f"unknown assembly kernel {kernel!r}; "
            f"expected one of {', '.join(KERNEL_NAMES)}"
        )
    return name


def degenerate_floor(dtype) -> np.floating:
    """Smallest normal magnitude of *dtype* — the degeneracy threshold.

    Used both to mask ``log r^2`` (a squared distance below the floor
    means the point coincides with an endpoint at this precision) and
    to clamp panel-length denominators (a panel shorter than the floor
    has collapsed at this precision; its influence is zero, not NaN).
    """
    dtype = np.dtype(dtype)
    return np.finfo(dtype).tiny.astype(dtype)


def safe_log_sq(r_sq: np.ndarray, dtype) -> np.ndarray:
    """``log(r^2)`` with the convention ``0 * log(0) = 0``.

    At a panel endpoint the prefactor ``<x - x_k, h>`` vanishes, so
    replacing ``log(0)`` by zero yields the correct limit.  The guard
    is dtype-aware: any ``r_sq`` below the smallest *normal* value of
    *dtype* is treated as zero, because a subnormal squared distance
    means the point and the endpoint coincide at this precision and
    the huge-magnitude logarithm would otherwise poison the float32
    path (near-duplicate outline points collapse to exact duplicates
    when cast to single precision).
    """
    out = np.zeros_like(r_sq)
    positive = r_sq >= degenerate_floor(r_sq.dtype)
    np.log(r_sq, where=positive, out=out)
    return out.astype(dtype, copy=False)


# ----------------------------------------------------------------------
# Reference NumPy kernels (the bit-parity oracle)
# ----------------------------------------------------------------------
#
# NOTE: the ``fused`` kernels below perform the *same elementwise
# operation sequence* on the same values; any change here must be
# mirrored there or the tobytes() parity property test will fail.

def _reference_stream(points: np.ndarray, airfoil, dtype) -> np.ndarray:
    """Readable per-panel evaluation of the stream influence."""
    target = pt.as_points(points, dtype=dtype)
    start = np.asarray(airfoil.points[:-1], dtype=dtype)  # x_i
    end = np.asarray(airfoil.points[1:], dtype=dtype)  # x_{i+1}
    h = end - start
    h_perp = pt.perpendicular(h)
    h_len_sq = pt.dot(h, h)
    h_len = np.sqrt(h_len_sq)
    safe_len = np.maximum(h_len, degenerate_floor(dtype))

    # Broadcast to the (points, panels) grid.  Projections are spelled
    # as explicit component sums (not einsum) so signed zeros at exact
    # endpoints come out identical to the fused kernel's: einsum's
    # accumulator starts at +0.0 and turns (-0.0) + (-0.0) into +0.0,
    # which the two-operand sum does not.
    d_start = target[:, None, :] - start[None, :, :]  # x - x_i
    d_end = target[:, None, :] - end[None, :, :]  # x - x_{i+1}

    proj_start = (d_start[..., 0] * h[None, :, 0]
                  + d_start[..., 1] * h[None, :, 1])  # <x - x_i, h>
    proj_end = (d_end[..., 0] * h[None, :, 0]
                + d_end[..., 1] * h[None, :, 1])  # <x - x_{i+1}, h>
    normal = (d_start[..., 0] * h_perp[None, :, 0]
              + d_start[..., 1] * h_perp[None, :, 1])  # I

    r_start_sq = (d_start[..., 0] * d_start[..., 0]
                  + d_start[..., 1] * d_start[..., 1])
    r_end_sq = (d_end[..., 0] * d_end[..., 0]
                + d_end[..., 1] * d_end[..., 1])
    log_start = safe_log_sq(r_start_sq, dtype)
    log_end = safe_log_sq(r_end_sq, dtype)

    # Subtended-angle identity: one arctan2 for the angle difference.
    delta = np.arctan2(normal * h_len_sq,
                       proj_start * proj_end + normal * normal)

    bracket = (
        0.5 * (proj_start * log_start - proj_end * log_end)
        + normal * delta
        - h_len_sq[None, :]
    )
    two_pi = np.asarray(2.0 * np.pi, dtype=dtype)
    return (bracket / (two_pi * safe_len[None, :])).astype(dtype, copy=False)


def _reference_velocity(points: np.ndarray, airfoil, dtype) -> np.ndarray:
    """Readable per-panel evaluation of the velocity influence."""
    target = pt.as_points(points, dtype=dtype)
    start = np.asarray(airfoil.points[:-1], dtype=dtype)
    end = np.asarray(airfoil.points[1:], dtype=dtype)
    h = end - start
    h_len = np.sqrt(pt.dot(h, h))
    safe_len = np.maximum(h_len, degenerate_floor(dtype))
    tangent = h / safe_len[:, None]
    # Right-handed local frame: eta along the +90-degree rotation of the
    # tangent (the *inward* normal for CCW outlines).  A left-handed
    # frame would silently mirror the induced rotation direction.
    normal_dir = -pt.perpendicular(tangent)

    # Component-sum projections (see the note in _reference_stream on
    # why einsum would flip signed zeros at exact endpoints).
    d_start = target[:, None, :] - start[None, :, :]
    d_end = target[:, None, :] - end[None, :, :]
    xi_start = (d_start[..., 0] * tangent[None, :, 0]
                + d_start[..., 1] * tangent[None, :, 1])
    xi_end = (d_end[..., 0] * tangent[None, :, 0]
              + d_end[..., 1] * tangent[None, :, 1])
    eta = (d_start[..., 0] * normal_dir[None, :, 0]
           + d_start[..., 1] * normal_dir[None, :, 1])

    r_start_sq = (d_start[..., 0] * d_start[..., 0]
                  + d_start[..., 1] * d_start[..., 1])
    r_end_sq = (d_end[..., 0] * d_end[..., 0]
                + d_end[..., 1] * d_end[..., 1])
    log_ratio = 0.5 * (safe_log_sq(r_start_sq, dtype)
                       - safe_log_sq(r_end_sq, dtype))
    # theta_end - theta_start by the same subtended-angle identity
    # (xi_start - xi_end = |h|, the panel length, in the panel frame).
    delta = np.arctan2(eta * safe_len, xi_start * xi_end + eta * eta)

    two_pi = np.asarray(2.0 * np.pi, dtype=dtype)
    u_tangential = -delta / two_pi
    u_normal = log_ratio / two_pi
    velocity = (
        u_tangential[..., None] * tangent[None, :, :]
        + u_normal[..., None] * normal_dir[None, :, :]
    )
    return velocity.astype(dtype, copy=False)


# ----------------------------------------------------------------------
# Fused NumPy kernels (the default)
# ----------------------------------------------------------------------

def _fused_stream(points: np.ndarray, airfoil, dtype) -> np.ndarray:
    """Endpoint-sharing, buffer-reusing twin of :func:`_reference_stream`."""
    target = pt.as_points(points, dtype=dtype)
    outline = np.asarray(airfoil.points, dtype=dtype)
    h = outline[1:] - outline[:-1]
    h_len_sq = pt.dot(h, h)
    h_len = np.sqrt(h_len_sq)
    safe_len = np.maximum(h_len, degenerate_floor(dtype))

    # One (points, n+1) endpoint grid: panel i's end is panel i+1's
    # start, so every log is computed once and sliced twice.
    d = target[:, None, :] - outline[None, :, :]
    dx = d[..., 0]
    dy = d[..., 1]
    r_sq = dx * dx + dy * dy
    log_r = safe_log_sq(r_sq, dtype)

    dxs, dys = dx[:, :-1], dy[:, :-1]
    dxe, dye = dx[:, 1:], dy[:, 1:]
    hx, hy = h[:, 0], h[:, 1]
    proj_start = dxs * hx + dys * hy
    proj_end = dxe * hx + dye * hy
    normal = dxs * hy + dys * (-hx)  # <d_start, h_perp>, h_perp=(hy,-hx)

    delta = np.arctan2(normal * h_len_sq,
                       proj_start * proj_end + normal * normal)

    # In-place chain replaying the reference's elementwise op order:
    # 0.5*(ps*ls - pe*le) + I*delta - |h|^2.
    bracket = proj_start * log_r[:, :-1]
    bracket -= proj_end * log_r[:, 1:]
    bracket *= 0.5
    bracket += normal * delta
    bracket -= h_len_sq
    two_pi = np.asarray(2.0 * np.pi, dtype=dtype)
    bracket /= two_pi * safe_len[None, :]
    return bracket.astype(dtype, copy=False)


def _fused_velocity(points: np.ndarray, airfoil, dtype) -> np.ndarray:
    """Endpoint-sharing twin of :func:`_reference_velocity`."""
    target = pt.as_points(points, dtype=dtype)
    outline = np.asarray(airfoil.points, dtype=dtype)
    h = outline[1:] - outline[:-1]
    h_len = np.sqrt(pt.dot(h, h))
    safe_len = np.maximum(h_len, degenerate_floor(dtype))
    tangent = h / safe_len[:, None]
    normal_dir = -pt.perpendicular(tangent)

    d = target[:, None, :] - outline[None, :, :]
    dx = d[..., 0]
    dy = d[..., 1]
    r_sq = dx * dx + dy * dy
    log_r = safe_log_sq(r_sq, dtype)

    dxs, dys = dx[:, :-1], dy[:, :-1]
    dxe, dye = dx[:, 1:], dy[:, 1:]
    tx, ty = tangent[:, 0], tangent[:, 1]
    nx, ny = normal_dir[:, 0], normal_dir[:, 1]
    xi_start = dxs * tx + dys * ty
    xi_end = dxe * tx + dye * ty
    eta = dxs * nx + dys * ny

    log_ratio = 0.5 * (log_r[:, :-1] - log_r[:, 1:])
    delta = np.arctan2(eta * safe_len, xi_start * xi_end + eta * eta)

    two_pi = np.asarray(2.0 * np.pi, dtype=dtype)
    u_tangential = -delta / two_pi
    u_normal = log_ratio / two_pi
    velocity = (
        u_tangential[..., None] * tangent[None, :, :]
        + u_normal[..., None] * normal_dir[None, :, :]
    )
    return velocity.astype(dtype, copy=False)


# ----------------------------------------------------------------------
# Native C kernel (opt-in, compiled at first use)
# ----------------------------------------------------------------------

_C_SOURCE = r"""
#include <math.h>

static const double TWO_PI = 6.283185307179586476925286766559;

/* Stream-function influence: out[j*n + i] = F_i(target_j).
 *
 * Streams the shared endpoint terms (d, log r^2) through the inner
 * loop -- n+1 logs per point, one atan2 per entry via the subtended-
 * angle identity.  Always computes in double; `single` selects the
 * store dtype (precision tiering).  `tiny` is the target dtype's
 * smallest normal value, matching the NumPy kernels' degeneracy
 * guards.
 */
void stream_influence(const double *target, long n_points,
                      const double *outline, long n_panels,
                      double tiny, void *out, int single)
{
    double *out_d = (double *) out;
    float *out_f = (float *) out;
    long i, j;
    for (j = 0; j < n_points; ++j) {
        const double px = target[2 * j];
        const double py = target[2 * j + 1];
        double dxs = px - outline[0];
        double dys = py - outline[1];
        double r_sq = dxs * dxs + dys * dys;
        double log_s = r_sq >= tiny ? log(r_sq) : 0.0;
        for (i = 0; i < n_panels; ++i) {
            const double hx = outline[2 * i + 2] - outline[2 * i];
            const double hy = outline[2 * i + 3] - outline[2 * i + 1];
            const double h_sq = hx * hx + hy * hy;
            const double h_len = sqrt(h_sq);
            const double safe_len = h_len >= tiny ? h_len : tiny;
            const double dxe = px - outline[2 * i + 2];
            const double dye = py - outline[2 * i + 3];
            const double proj_s = dxs * hx + dys * hy;
            const double proj_e = dxe * hx + dye * hy;
            const double cross = dxs * hy - dys * hx;
            double log_e, delta, bracket;
            r_sq = dxe * dxe + dye * dye;
            log_e = r_sq >= tiny ? log(r_sq) : 0.0;
            delta = atan2(cross * h_sq, proj_s * proj_e + cross * cross);
            bracket = 0.5 * (proj_s * log_s - proj_e * log_e)
                      + cross * delta - h_sq;
            if (single)
                out_f[j * n_panels + i] = (float) (bracket / (TWO_PI * safe_len));
            else
                out_d[j * n_panels + i] = bracket / (TWO_PI * safe_len);
            dxs = dxe;
            dys = dye;
            log_s = log_e;
        }
    }
}

/* Velocity influence: out[(j*n + i)*2 + {0,1}] = V_i(target_j). */
void velocity_influence(const double *target, long n_points,
                        const double *outline, long n_panels,
                        double tiny, void *out, int single)
{
    double *out_d = (double *) out;
    float *out_f = (float *) out;
    long i, j;
    for (j = 0; j < n_points; ++j) {
        const double px = target[2 * j];
        const double py = target[2 * j + 1];
        double dxs = px - outline[0];
        double dys = py - outline[1];
        double r_sq = dxs * dxs + dys * dys;
        double log_s = r_sq >= tiny ? log(r_sq) : 0.0;
        for (i = 0; i < n_panels; ++i) {
            const double hx = outline[2 * i + 2] - outline[2 * i];
            const double hy = outline[2 * i + 3] - outline[2 * i + 1];
            const double h_len = sqrt(hx * hx + hy * hy);
            const double safe_len = h_len >= tiny ? h_len : tiny;
            const double tan_x = hx / safe_len;
            const double tan_y = hy / safe_len;
            const double nrm_x = -tan_y;   /* inward normal (CCW outline) */
            const double nrm_y = tan_x;
            const double dxe = px - outline[2 * i + 2];
            const double dye = py - outline[2 * i + 3];
            const double xi_s = dxs * tan_x + dys * tan_y;
            const double xi_e = dxe * tan_x + dye * tan_y;
            const double eta = dxs * nrm_x + dys * nrm_y;
            double log_e, delta, u_t, u_n;
            long base;
            r_sq = dxe * dxe + dye * dye;
            log_e = r_sq >= tiny ? log(r_sq) : 0.0;
            delta = atan2(eta * safe_len, xi_s * xi_e + eta * eta);
            u_t = -delta / TWO_PI;
            u_n = 0.5 * (log_s - log_e) / TWO_PI;
            base = (j * n_panels + i) * 2;
            if (single) {
                out_f[base] = (float) (u_t * tan_x + u_n * nrm_x);
                out_f[base + 1] = (float) (u_t * tan_y + u_n * nrm_y);
            } else {
                out_d[base] = u_t * tan_x + u_n * nrm_x;
                out_d[base + 1] = u_t * tan_y + u_n * nrm_y;
            }
            dxs = dxe;
            dys = dye;
            log_s = log_e;
        }
    }
}
"""

#: Compile flags: keep the arithmetic IEEE-faithful (no contraction,
#: no unsafe reassociation) so the kernel's numbers are stable across
#: hosts and compilers.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off",
           "-fno-unsafe-math-optimizations")


class _NativeState:
    """Outcome of the one-shot native build: a loaded library or the
    reason there is none, plus a fallback counter for metrics."""

    __slots__ = ("lib", "path", "compiler", "reason", "fallbacks")

    def __init__(self, lib=None, path=None, compiler=None, reason=None):
        self.lib = lib
        self.path = path
        self.compiler = compiler
        self.reason = reason
        self.fallbacks = 0


_NATIVE: Optional[_NativeState] = None
_NATIVE_LOCK = threading.Lock()


def _find_compiler() -> Optional[str]:
    """The C compiler to use, or ``None`` when the host has none."""
    explicit = os.environ.get(CC_ENV, "").strip()
    if explicit:
        return explicit if shutil.which(explicit) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> str:
    configured = os.environ.get(CACHE_ENV, "").strip()
    if configured:
        return configured
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}")


def _build_native() -> _NativeState:
    """Compile (or reuse) and load the shared library; never raises."""
    compiler = _find_compiler()
    if compiler is None:
        return _NativeState(reason=(
            "no C compiler found (need cc/gcc/clang on PATH, "
            f"or set {CC_ENV})"
        ))
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    directory = _cache_dir()
    lib_path = os.path.join(directory, f"repro_kernels_{digest}.so")
    try:
        if not os.path.exists(lib_path):
            os.makedirs(directory, exist_ok=True)
            src_path = os.path.join(
                directory, f"repro_kernels_{digest}_{os.getpid()}.c"
            )
            tmp_path = src_path[:-2] + ".so.tmp"
            with open(src_path, "w") as handle:
                handle.write(_C_SOURCE)
            try:
                completed = subprocess.run(
                    [compiler, *_CFLAGS, "-o", tmp_path, src_path, "-lm"],
                    capture_output=True, text=True, timeout=120.0,
                )
                if completed.returncode != 0:
                    detail = (completed.stderr or completed.stdout).strip()
                    return _NativeState(compiler=compiler, reason=(
                        f"{compiler} failed ({detail[:200]})"
                    ))
                os.replace(tmp_path, lib_path)  # atomic: racers agree
            finally:
                for leftover in (src_path, tmp_path):
                    try:
                        os.unlink(leftover)
                    except OSError:
                        pass
        lib = ctypes.CDLL(lib_path)
        for symbol in ("stream_influence", "velocity_influence"):
            fn = getattr(lib, symbol)
            fn.restype = None
            fn.argtypes = [
                ctypes.c_void_p, ctypes.c_long,
                ctypes.c_void_p, ctypes.c_long,
                ctypes.c_double, ctypes.c_void_p, ctypes.c_int,
            ]
        return _NativeState(lib=lib, path=lib_path, compiler=compiler)
    except Exception as error:  # missing toolchain, RO filesystem, ...
        return _NativeState(compiler=compiler,
                            reason=f"{type(error).__name__}: {error}")


def _ensure_native() -> _NativeState:
    """Build the native library once per process (thread-safe)."""
    global _NATIVE
    if _NATIVE is None:
        with _NATIVE_LOCK:
            if _NATIVE is None:
                _NATIVE = _build_native()
    return _NATIVE


def native_status() -> dict:
    """JSON-ready introspection of the native kernel.

    Triggers the one-shot compile on first call (the kernel itself
    would do the same); keys: ``available``, ``library``, ``compiler``,
    ``reason`` (``None`` when available), ``fallbacks`` (times a
    ``native`` selection silently ran ``fused`` instead).
    """
    state = _ensure_native()
    return {
        "available": state.lib is not None,
        "library": state.path,
        "compiler": state.compiler,
        "reason": state.reason,
        "fallbacks": state.fallbacks,
    }


def _native_call(symbol: str, points, airfoil, dtype, out_shape):
    """Marshal one native kernel call, or ``None`` to request fallback."""
    state = _ensure_native()
    if state.lib is None:
        state.fallbacks += 1
        return None
    dtype = np.dtype(dtype)
    # Round the inputs to the target dtype first (dtype honesty: the
    # native kernel must see the same geometry the NumPy kernels see),
    # then widen exactly to double for the C computation.
    target = np.ascontiguousarray(pt.as_points(points, dtype=dtype),
                                  dtype=np.float64)
    outline = np.ascontiguousarray(np.asarray(airfoil.points, dtype=dtype),
                                   dtype=np.float64)
    n_points = target.shape[0]
    n_panels = outline.shape[0] - 1
    out = np.empty(out_shape(n_points, n_panels), dtype=dtype)
    getattr(state.lib, symbol)(
        target.ctypes.data_as(ctypes.c_void_p), ctypes.c_long(n_points),
        outline.ctypes.data_as(ctypes.c_void_p), ctypes.c_long(n_panels),
        ctypes.c_double(float(np.finfo(dtype).tiny)),
        out.ctypes.data_as(ctypes.c_void_p),
        ctypes.c_int(1 if dtype == np.float32 else 0),
    )
    return out


def _native_stream(points: np.ndarray, airfoil, dtype) -> np.ndarray:
    out = _native_call("stream_influence", points, airfoil, dtype,
                       lambda m, n: (m, n))
    if out is None:
        return _fused_stream(points, airfoil, dtype)
    return out


def _native_velocity(points: np.ndarray, airfoil, dtype) -> np.ndarray:
    out = _native_call("velocity_influence", points, airfoil, dtype,
                       lambda m, n: (m, n, 2))
    if out is None:
        return _fused_velocity(points, airfoil, dtype)
    return out


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

_STREAM_KERNELS = {
    "reference": _reference_stream,
    "fused": _fused_stream,
    "native": _native_stream,
}

_VELOCITY_KERNELS = {
    "reference": _reference_velocity,
    "fused": _fused_velocity,
    "native": _native_velocity,
}


def stream_function_for(kernel: Optional[str] = None) -> Callable:
    """The stream-influence implementation for a kernel selection."""
    return _STREAM_KERNELS[resolve_kernel(kernel)]


def velocity_function_for(kernel: Optional[str] = None) -> Callable:
    """The velocity-influence implementation for a kernel selection."""
    return _VELOCITY_KERNELS[resolve_kernel(kernel)]
