"""Multi-element airfoils: several bodies in one panel solve.

High-lift systems (main element + flap, or slat + main) are the
classic application of 2-D panel codes beyond single sections.  The
stream-function formulation extends naturally: each body carries its
own vortex sheet and its own boundary constant ``C_k``, every control
point sees the influence of *all* panels, and each body contributes
one Kutta condition.  After eliminating the last strength of each body
(``gamma_last = -gamma_first``), the system is square:

    unknowns:  sum_k (n_k - 1) strengths  +  K constants
    equations: sum_k n_k control points   (one per panel)

Lift follows from the total circulation; per-element contributions
from each body's own sheet.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.errors import PanelMethodError
from repro.geometry.airfoil import Airfoil
from repro.linalg import lu_factor, lu_solve
from repro.panel.freestream import Freestream
from repro.panel.influence import stream_influence_matrix, velocity_influence


@dataclasses.dataclass(frozen=True)
class MultiElementSolution:
    """Vortex strengths and constants for a multi-body configuration."""

    elements: List[Airfoil]
    freestream: Freestream
    gammas: List[np.ndarray]  # one strength array per element
    constants: List[float]  # one boundary constant per element

    @property
    def n_elements(self) -> int:
        """Number of bodies in the configuration."""
        return len(self.elements)

    def element_circulation(self, index: int) -> float:
        """Circulation of one element (clockwise-positive)."""
        return float(self.gammas[index] @ self.elements[index].panel_lengths)

    @property
    def total_circulation(self) -> float:
        """Sum of all element circulations."""
        return sum(self.element_circulation(i) for i in range(self.n_elements))

    def lift_coefficient(self, reference_chord: float = None) -> float:
        """System ``cl`` referenced to *reference_chord*.

        Defaults to the first (main) element's chord, the usual
        convention for high-lift polars.
        """
        chord = reference_chord or self.elements[0].chord
        return 2.0 * self.total_circulation / (self.freestream.speed * chord)

    def element_lift_coefficient(self, index: int,
                                 reference_chord: float = None) -> float:
        """One element's share of the lift."""
        chord = reference_chord or self.elements[0].chord
        return 2.0 * self.element_circulation(index) / (
            self.freestream.speed * chord
        )

    def stream_function_at(self, points) -> np.ndarray:
        """Total stream function at arbitrary field points."""
        points = np.asarray(points, dtype=np.float64)
        total = self.freestream.stream_function(points)
        for element, gamma in zip(self.elements, self.gammas):
            total = total + stream_influence_matrix(points, element) @ gamma
        return total

    def velocity_at(self, points) -> np.ndarray:
        """Total velocity at arbitrary field points."""
        points = np.asarray(points, dtype=np.float64)
        velocity = np.broadcast_to(
            self.freestream.velocity, (len(points), 2)
        ).copy()
        for element, gamma in zip(self.elements, self.gammas):
            influence = velocity_influence(points, element)
            velocity -= np.einsum("mpc,p->mc", influence, gamma)
        return velocity

    def boundary_residual(self) -> float:
        """Max deviation of each surface's stream function from its C."""
        worst = 0.0
        for element, constant in zip(self.elements, self.constants):
            surface = self.stream_function_at(element.control_points)
            worst = max(worst, float(np.max(np.abs(surface - constant))))
        return worst


def solve_multielement(elements: Sequence[Airfoil],
                       freestream: Freestream = None) -> MultiElementSolution:
    """Solve the coupled system for several non-overlapping bodies."""
    elements = list(elements)
    if not elements:
        raise PanelMethodError("need at least one element")
    freestream = freestream or Freestream()
    counts = [element.n_panels for element in elements]
    n_total = sum(counts)
    n_bodies = len(elements)
    size = n_total  # sum_k (n_k - 1) strengths + n_bodies constants

    # Raw influence of every body's panels at every control point:
    # A[j, i] = -F_i(c_j), control points stacked body by body.
    control = np.vstack([element.control_points for element in elements])
    blocks = [
        -stream_influence_matrix(control, element) for element in elements
    ]

    matrix = np.zeros((size, size))
    rhs = freestream.stream_function(control)

    column = 0
    for body, (element, block) in enumerate(zip(elements, blocks)):
        n = element.n_panels
        reduced = np.empty((n_total, n - 1))
        reduced[:, 0] = block[:, 0] - block[:, n - 1]  # Kutta elimination
        reduced[:, 1:] = block[:, 1:n - 1]
        matrix[:, column:column + n - 1] = reduced
        column += n - 1
    # Constant columns: C_k multiplies 1 on body k's control rows.
    row = 0
    for body, count in enumerate(counts):
        matrix[row:row + count, column + body] = 1.0
        row += count

    unknowns = lu_solve(lu_factor(matrix, overwrite=True), rhs)

    gammas: List[np.ndarray] = []
    cursor = 0
    for count in counts:
        strengths = np.empty(count)
        strengths[:-1] = unknowns[cursor:cursor + count - 1]
        strengths[-1] = -strengths[0]
        gammas.append(strengths)
        cursor += count - 1
    constants = [float(value) for value in unknowns[cursor:]]

    return MultiElementSolution(
        elements=elements,
        freestream=freestream,
        gammas=gammas,
        constants=constants,
    )
