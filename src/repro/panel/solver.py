"""High-level panel-method solver.

Ties together assembly (:mod:`repro.panel.assembly`) and the in-house
LU kernels (:mod:`repro.linalg`) and returns a
:class:`~repro.panel.solution.PanelSolution`.  This is the "inner
solver" the paper's genetic optimizer calls thousands of times.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.geometry.airfoil import Airfoil
from repro.linalg import batched_lu_factor, batched_lu_solve, lu_factor, lu_solve
from repro.panel.assembly import Closure, assemble, assemble_batch
from repro.panel.freestream import Freestream
from repro.panel.solution import PanelSolution
from repro.precision import Precision, PrecisionLike


@dataclasses.dataclass(frozen=True)
class PanelSolver:
    """Configurable 2-D vortex panel solver.

    Parameters
    ----------
    closure:
        System closure; the Kutta condition by default.
    precision:
        Arithmetic precision for assembly and solve (paper: both).
        Results are always post-processed in double precision.
    """

    closure: Closure = Closure.KUTTA
    precision: Precision = Precision.DOUBLE

    def __post_init__(self) -> None:
        object.__setattr__(self, "closure", Closure.parse(self.closure))
        object.__setattr__(self, "precision", Precision.parse(self.precision))

    @classmethod
    def with_precision(cls, precision: PrecisionLike, **kwargs) -> "PanelSolver":
        """Construct a solver accepting any precision spelling."""
        return cls(precision=Precision.parse(precision), **kwargs)

    def solve(self, airfoil: Airfoil, freestream: Freestream = None) -> PanelSolution:
        """Solve one airfoil/free-stream configuration."""
        freestream = freestream or Freestream()
        system = assemble(
            airfoil, freestream, closure=self.closure, dtype=self.precision.dtype
        )
        unknowns = lu_solve(lu_factor(system.matrix), system.rhs)
        gamma, constant = system.expand_solution(unknowns)
        return PanelSolution(
            airfoil=airfoil,
            freestream=freestream,
            closure=self.closure,
            gamma=np.asarray(gamma, dtype=np.float64),
            constant=constant,
        )

    def solve_batch(self, airfoils: Sequence[Airfoil],
                    freestream: Freestream = None) -> List[PanelSolution]:
        """Solve many same-size configurations with the batched kernels.

        This is the code path the hardware model's timing describes:
        assemble a stack of matrices, then run a batched LU solve.
        """
        freestream = freestream or Freestream()
        matrices, rhs, systems = assemble_batch(
            airfoils, freestream, closure=self.closure, dtype=self.precision.dtype
        )
        unknowns = batched_lu_solve(batched_lu_factor(matrices, overwrite=True), rhs)
        solutions = []
        for system, row in zip(systems, unknowns):
            gamma, constant = system.expand_solution(row)
            solutions.append(PanelSolution(
                airfoil=system.airfoil,
                freestream=freestream,
                closure=self.closure,
                gamma=np.asarray(gamma, dtype=np.float64),
                constant=constant,
            ))
        return solutions


def solve_airfoil(airfoil: Airfoil, alpha_degrees: float = 0.0, *,
                  speed: float = 1.0, closure=Closure.KUTTA,
                  precision: PrecisionLike = Precision.DOUBLE) -> PanelSolution:
    """One-call convenience API: solve an airfoil at an angle of attack."""
    solver = PanelSolver(closure=Closure.parse(closure), precision=Precision.parse(precision))
    return solver.solve(airfoil, Freestream.from_degrees(alpha_degrees, speed=speed))
