"""Streamline tracing through a solved panel flow.

Integrates particle paths ``dx/dt = V(x)`` with a classical RK4
stepper.  Because the solved field is (discretely) divergence-free with
a constant stream function on the body, traced streamlines must follow
iso-contours of the stream function — an invariant the test suite
checks directly.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.errors import PanelMethodError
from repro.panel.solution import PanelSolution


@dataclasses.dataclass(frozen=True)
class Streamline:
    """One traced particle path."""

    points: np.ndarray  # (m, 2) positions
    stream_function_drift: float  # max |psi - psi_0| along the path

    @property
    def length(self) -> float:
        """Arc length of the traced path."""
        return float(np.sum(np.linalg.norm(np.diff(self.points, axis=0), axis=1)))


def trace_streamline(solution: PanelSolution, seed, *, step: float = 0.02,
                     n_steps: int = 200, min_speed: float = 1e-6) -> Streamline:
    """Trace one streamline from *seed* with RK4 steps of size *step*.

    The step size is an arc-length increment: the velocity is
    normalized, so panels with fast and slow flow are resolved equally.
    Tracing stops early if the flow speed drops below *min_speed*
    (stagnation) or the particle enters the (stagnant) body interior.
    """
    if step <= 0.0:
        raise PanelMethodError(f"step must be positive, got {step}")
    if n_steps < 1:
        raise PanelMethodError(f"n_steps must be >= 1, got {n_steps}")

    def direction(position: np.ndarray) -> np.ndarray:
        velocity = solution.velocity_at(position[None])[0]
        speed = float(np.linalg.norm(velocity))
        if speed < min_speed:
            raise _StagnantFlow
        return velocity / speed

    position = np.asarray(seed, dtype=np.float64)
    points = [position.copy()]
    try:
        for _ in range(n_steps):
            k1 = direction(position)
            k2 = direction(position + 0.5 * step * k1)
            k3 = direction(position + 0.5 * step * k2)
            k4 = direction(position + step * k3)
            position = position + step / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
            points.append(position.copy())
    except _StagnantFlow:
        pass
    path = np.array(points)
    psi = solution.stream_function_at(path)
    drift = float(np.max(np.abs(psi - psi[0])))
    return Streamline(points=path, stream_function_drift=drift)


def trace_streamlines(solution: PanelSolution, *, n_lines: int = 9,
                      upstream_x: float = -1.0, spread: float = 1.5,
                      step: float = 0.02, n_steps: int = 200) -> List[Streamline]:
    """Trace a fan of streamlines seeded on an upstream vertical line."""
    seeds_y = np.linspace(-spread, spread, n_lines)
    return [
        trace_streamline(solution, (upstream_x, y), step=step, n_steps=n_steps)
        for y in seeds_y
    ]


class _StagnantFlow(Exception):
    """Internal sentinel: the particle reached (near-)stagnant flow."""
