"""The solved panel problem and its aerodynamic post-processing.

In the stream-function formulation the flow interior to the airfoil is
stagnant, so the vortex-sheet strength ``gamma_i`` *is* the tangential
flow speed on panel ``i`` (the jump across the sheet).  Everything
aerodynamic — surface pressures, lift, moment — follows from it.
"""

from __future__ import annotations

import dataclasses
from functools import cached_property

import numpy as np

from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil
from repro.panel.assembly import Closure
from repro.panel.freestream import Freestream
from repro.panel.influence import stream_influence_matrix, velocity_influence


@dataclasses.dataclass(frozen=True)
class PanelSolution:
    """Vortex strengths and derived aerodynamic quantities.

    Attributes
    ----------
    airfoil, freestream, closure:
        The problem definition.
    gamma:
        Vortex-sheet strength per panel, length ``n_panels``.
    constant:
        The boundary stream-function constant ``C``.
    """

    airfoil: Airfoil
    freestream: Freestream
    closure: Closure
    gamma: np.ndarray
    constant: float

    def __post_init__(self) -> None:
        gamma = np.asarray(self.gamma)
        if gamma.shape != (self.airfoil.n_panels,):
            raise ValueError(
                f"gamma has shape {gamma.shape}, expected ({self.airfoil.n_panels},)"
            )
        gamma = gamma.copy()
        gamma.setflags(write=False)
        object.__setattr__(self, "gamma", gamma)

    # ------------------------------------------------------------------
    # Surface quantities
    # ------------------------------------------------------------------

    @property
    def surface_speeds(self) -> np.ndarray:
        """Flow speed on each panel (``|gamma_i|``)."""
        return np.abs(self.gamma)

    @cached_property
    def pressure_coefficients(self) -> np.ndarray:
        """``Cp_i = 1 - (gamma_i / v_inf)^2`` at the control points."""
        ratio = self.gamma / self.freestream.speed
        return 1.0 - ratio.astype(np.float64) ** 2

    @cached_property
    def circulation(self) -> float:
        """Total circulation ``sum_i gamma_i |h_i|``, clockwise-positive.

        The paper's influence formula equals *minus* the stream function
        of a counter-clockwise unit vortex sheet, so the strengths that
        solve the system measure clockwise (lift-generating) rotation:
        a positively lifting airfoil has positive circulation here.
        """
        return float(self.gamma @ self.airfoil.panel_lengths)

    # ------------------------------------------------------------------
    # Force and moment coefficients
    # ------------------------------------------------------------------

    @property
    def lift_coefficient(self) -> float:
        """``cl`` from the Kutta–Joukowski theorem.

        ``L' = rho v_inf Gamma`` with the clockwise-positive circulation
        of :attr:`circulation`; nondimensionalized by chord.
        """
        return 2.0 * self.circulation / (self.freestream.speed * self.airfoil.chord)

    @cached_property
    def force_coefficient_vector(self) -> np.ndarray:
        """Pressure force coefficient vector ``(CF_x, CF_y)``.

        Integrates ``-Cp n_hat`` over the surface, nondimensionalized by
        the chord.  Its projection normal to the free stream is an
        independent estimate of ``cl``; the streamwise projection is the
        (spurious) pressure drag, which d'Alembert's paradox says should
        vanish for this inviscid model.
        """
        weighted = (
            self.pressure_coefficients[:, None]
            * self.airfoil.normals
            * self.airfoil.panel_lengths[:, None]
        )
        return -weighted.sum(axis=0) / self.airfoil.chord

    @property
    def lift_coefficient_pressure(self) -> float:
        """``cl`` from the surface-pressure integral (cross-check)."""
        alpha = self.freestream.alpha
        direction = np.array([-np.sin(alpha), np.cos(alpha)])
        return float(self.force_coefficient_vector @ direction)

    @property
    def pressure_drag_coefficient(self) -> float:
        """Streamwise pressure force; ~0 for a converged inviscid solve."""
        alpha = self.freestream.alpha
        direction = np.array([np.cos(alpha), np.sin(alpha)])
        return float(self.force_coefficient_vector @ direction)

    def moment_coefficient(self, reference=(0.25, 0.0)) -> float:
        """Pitching-moment coefficient about *reference* (default c/4).

        Positive nose-up, the standard aeronautical convention.
        """
        reference = np.asarray(reference, dtype=np.float64)
        arms = self.airfoil.control_points - reference
        forces = (
            -self.pressure_coefficients[:, None]
            * self.airfoil.normals
            * self.airfoil.panel_lengths[:, None]
        )
        # cross_z gives the CCW-positive z-torque; the aeronautical
        # nose-up-positive convention is its negative (the nose sits at
        # smaller x than the reference point).
        moments = pt.cross_z(arms, forces)
        return float(-moments.sum() / self.airfoil.chord**2)

    # ------------------------------------------------------------------
    # Field evaluation
    # ------------------------------------------------------------------

    def velocity_at(self, points) -> np.ndarray:
        """Total velocity at arbitrary field points, shape ``(m, 2)``.

        The velocity influence is derived for counter-clockwise-positive
        sheet strength while the solved ``gamma`` is clockwise-positive
        (see :attr:`circulation`), hence the sign flip.
        """
        influence = velocity_influence(points, self.airfoil)
        induced = -np.einsum("mpc,p->mc", influence, np.asarray(self.gamma, np.float64))
        return induced + self.freestream.velocity

    def stream_function_at(self, points) -> np.ndarray:
        """Total stream function at arbitrary field points."""
        influence = stream_influence_matrix(points, self.airfoil)
        induced = influence @ np.asarray(self.gamma, dtype=np.float64)
        return induced + self.freestream.stream_function(np.asarray(points))

    def boundary_residual(self) -> float:
        """Max deviation of the surface stream function from ``C``.

        A direct check of the discretized boundary condition; small
        values mean the solve honoured ``phi|_{dOmega} = C``.
        """
        surface = self.stream_function_at(self.airfoil.control_points)
        return float(np.max(np.abs(surface - self.constant)))
