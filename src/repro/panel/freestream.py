"""Free-stream (far-field) flow description.

The global flow imposed far from the airfoil is uniform with speed
``v_inf`` at angle of attack ``alpha``; its stream function is
``phi_v(x, y) = v_inf (y cos(alpha) - x sin(alpha))`` (paper, Sec. 2).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import PanelMethodError


@dataclasses.dataclass(frozen=True)
class Freestream:
    """Uniform onset flow.

    Parameters
    ----------
    speed:
        Magnitude ``v_inf`` of the free-stream velocity (must be > 0).
    alpha:
        Angle of attack in **radians** (use :meth:`from_degrees` for the
        usual aeronautical spelling).
    """

    speed: float = 1.0
    alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.speed <= 0.0:
            raise PanelMethodError(f"free-stream speed must be positive, got {self.speed}")

    @classmethod
    def from_degrees(cls, alpha_degrees: float, speed: float = 1.0) -> "Freestream":
        """Build a free stream with the angle of attack in degrees."""
        return cls(speed=speed, alpha=math.radians(alpha_degrees))

    @property
    def alpha_degrees(self) -> float:
        """Angle of attack in degrees."""
        return math.degrees(self.alpha)

    @property
    def velocity(self) -> np.ndarray:
        """Velocity vector ``(v1, v2)``."""
        return np.array([
            self.speed * math.cos(self.alpha),
            self.speed * math.sin(self.alpha),
        ])

    def stream_function(self, points: np.ndarray, *, dtype=None) -> np.ndarray:
        """``phi_v`` evaluated at ``(n, 2)`` points.

        With *dtype* given, the points and the velocity components are
        cast first and the arithmetic runs entirely in that dtype —
        single-precision assemblies must not take a float64 detour here
        (they would no longer be single precision end to end).  With
        ``dtype=None`` the computation follows NumPy promotion from the
        float64 velocity, preserving the historical behaviour.
        """
        if dtype is None:
            points = np.asarray(points)
            v1, v2 = self.velocity
            return v1 * points[..., 1] - v2 * points[..., 0]
        dtype = np.dtype(dtype)
        points = np.asarray(points, dtype=dtype)
        velocity = self.velocity.astype(dtype)
        return velocity[0] * points[..., 1] - velocity[1] * points[..., 0]
