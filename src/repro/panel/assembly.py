"""Assembly of the panel-method linear system.

The boundary condition ``phi|_{dOmega} = C`` is enforced at the panel
midpoints, giving (paper, Sec. 2)

    sum_i A_ji gamma_i + C = phi_v(x_{j+1/2}),    A_ji = -F_i(x_{j+1/2})

supplemented by the Kutta condition ``gamma_0 = -gamma_{n-1}``.  As in
the paper, ``gamma_{n-1}`` is eliminated, leaving the square ``n x n``
system in the unknowns ``gamma_0 .. gamma_{n-2}, C``.

A zero-circulation closure (``sum_i gamma_i |h_i| = 0``) is also
provided: it represents non-lifting flow and is what analytic
validation against the circular cylinder requires.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.errors import PanelMethodError
from repro.geometry.airfoil import Airfoil
from repro.panel.freestream import Freestream
from repro.panel.influence import stream_influence_matrix


class Closure(enum.Enum):
    """How the underdetermined system is closed."""

    #: The paper's closure: ``gamma_0 = -gamma_{n-1}`` (lifting flow,
    #: smooth flow off the trailing edge).
    KUTTA = "kutta"
    #: Zero total circulation (non-lifting flow; for validation).
    ZERO_CIRCULATION = "zero-circulation"

    @classmethod
    def parse(cls, value) -> "Closure":
        """Accept a member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            names = ", ".join(member.value for member in cls)
            raise PanelMethodError(f"unknown closure {value!r}; expected one of {names}")


@dataclasses.dataclass(frozen=True)
class PanelSystem:
    """The assembled linear system for one airfoil and free stream.

    Attributes
    ----------
    matrix, rhs:
        The square system ``matrix @ unknowns = rhs``.
    airfoil, freestream, closure:
        The inputs, kept so the solution can be post-processed.
    influence:
        The raw ``(n, n)`` influence matrix ``A_ji`` (before closure),
        retained for diagnostics and velocity reconstruction.
    """

    matrix: np.ndarray
    rhs: np.ndarray
    airfoil: Airfoil
    freestream: Freestream
    closure: Closure
    influence: np.ndarray

    @property
    def n_unknowns(self) -> int:
        """Dimension of the square system."""
        return self.matrix.shape[0]

    def expand_solution(self, unknowns: np.ndarray) -> tuple:
        """Recover ``(gamma, C)`` for all ``n`` panels from the unknowns.

        For the Kutta closure the eliminated ``gamma_{n-1} = -gamma_0``
        is reinstated; for the zero-circulation closure the unknown
        vector already holds every strength.
        """
        unknowns = np.asarray(unknowns)
        constant = float(unknowns[-1])
        if self.closure is Closure.KUTTA:
            gamma = np.empty(self.airfoil.n_panels, dtype=unknowns.dtype)
            gamma[:-1] = unknowns[:-1]
            gamma[-1] = -unknowns[0]
        else:
            gamma = unknowns[:-1].copy()
        return gamma, constant


def influence_matrix(airfoil: Airfoil, *, dtype=np.float64,
                     kernel=None) -> np.ndarray:
    """The ``A_ji = -F_i(x_{j+1/2})`` matrix at the control points."""
    return -stream_influence_matrix(airfoil.control_points, airfoil,
                                    dtype=dtype, kernel=kernel)


def assemble(airfoil: Airfoil, freestream: Freestream, *,
             closure=Closure.KUTTA, dtype=np.float64,
             kernel=None) -> PanelSystem:
    """Assemble the closed square system for one configuration.

    For the Kutta closure the system is ``n x n`` in
    ``gamma_0 .. gamma_{n-2}, C`` (one unknown per panel after the
    trailing-edge elimination, plus the boundary constant).  For the
    zero-circulation closure it is ``(n+1) x (n+1)`` with the
    circulation constraint appended as an extra row.

    *kernel* selects the influence-matrix implementation (see
    :mod:`repro.panel.kernels`); the right-hand side is computed
    natively in *dtype* — no float64 detour on the float32 path.
    """
    closure = Closure.parse(closure)
    dtype = np.dtype(dtype)
    n = airfoil.n_panels
    a = influence_matrix(airfoil, dtype=dtype, kernel=kernel)
    rhs_bc = freestream.stream_function(airfoil.control_points, dtype=dtype)

    if closure is Closure.KUTTA:
        matrix = np.empty((n, n), dtype=dtype)
        matrix[:, 0] = a[:, 0] - a[:, n - 1]  # gamma_{n-1} = -gamma_0 folded in
        matrix[:, 1:n - 1] = a[:, 1:n - 1]
        matrix[:, n - 1] = 1.0  # coefficient of the boundary constant C
        rhs = rhs_bc
    else:
        matrix = np.zeros((n + 1, n + 1), dtype=dtype)
        matrix[:n, :n] = a
        matrix[:n, n] = 1.0
        matrix[n, :n] = airfoil.panel_lengths.astype(dtype)  # total circulation
        rhs = np.concatenate([rhs_bc, np.zeros(1, dtype=dtype)])

    return PanelSystem(
        matrix=matrix,
        rhs=rhs,
        airfoil=airfoil,
        freestream=freestream,
        closure=closure,
        influence=a,
    )


def assemble_batch(airfoils, freestream: Freestream, *,
                   closure=Closure.KUTTA, dtype=np.float64,
                   kernel=None) -> tuple:
    """Assemble many same-size systems into contiguous stacks.

    Returns ``(matrices, rhs, systems)`` where ``matrices`` has shape
    ``(batch, m, m)`` and ``rhs`` has shape ``(batch, m)`` — the memory
    layout the batched LU kernels (and the hardware model's transfer
    size accounting) operate on.  All airfoils must share a panel count.
    """
    airfoils = list(airfoils)
    if not airfoils:
        raise PanelMethodError("assemble_batch needs at least one airfoil")
    n = airfoils[0].n_panels
    for foil in airfoils[1:]:
        if foil.n_panels != n:
            raise PanelMethodError(
                "all airfoils in a batch must share the same panel count; "
                f"got {foil.n_panels} != {n}"
            )
    systems = [
        assemble(foil, freestream, closure=closure, dtype=dtype, kernel=kernel)
        for foil in airfoils
    ]
    matrices = np.stack([system.matrix for system in systems])
    rhs = np.stack([system.rhs for system in systems])
    return matrices, rhs, systems
