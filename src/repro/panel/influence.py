"""Influence coefficients of constant-strength vortex panels.

Implements the closed-form panel integral of the paper (Section 2):
the stream function at ``x`` induced by a unit-strength vortex sheet on
the straight panel from ``x_i`` to ``x_{i+1}`` is

    F_i(x) = 1 / (2 pi |h_i|) * [
          1/2 <x - x_i,     h_i> log |x - x_i|^2
        - 1/2 <x - x_{i+1}, h_i> log |x - x_{i+1}|^2
        - I arctan2(I, <x - x_i,     h_i>)
        + I arctan2(I, <x - x_{i+1}, h_i>)
        - |h_i|^2 ]

with ``h_i = x_{i+1} - x_i`` and ``I = <h_i_perp, x - x_i>``.  The
velocity influence (needed for off-body flow evaluation) follows from
the same integral differentiated analytically.

This assembly is the paper's "expensive" kernel: per matrix entry it
evaluates two logarithms and two ``arctan2`` calls, which is why the
accelerators beat the CPU at it.

Flop accounting for the hardware model lives in
:func:`assembly_flops_per_entry`.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil

#: Effective floating-point work per matrix entry, used by the hardware
#: cost model.  Counts the polynomial arithmetic (~30 flops) plus two
#: ``log`` and two ``arctan2`` evaluations at a conventional 25
#: flop-equivalents each (vectorized transcendental cost on the
#: architectures of the paper).
ASSEMBLY_FLOPS_PER_ENTRY = 130


def assembly_flops_per_entry() -> int:
    """Effective flops per influence-matrix entry (model constant)."""
    return ASSEMBLY_FLOPS_PER_ENTRY


def assembly_flops(n_points: int, n_panels: int) -> int:
    """Effective flops to fill an ``n_points x n_panels`` influence block."""
    return n_points * n_panels * ASSEMBLY_FLOPS_PER_ENTRY


def _safe_log_sq(r_sq: np.ndarray, dtype) -> np.ndarray:
    """``log(r^2)`` with the convention ``0 * log(0) = 0``.

    At a panel endpoint the prefactor ``<x - x_k, h>`` vanishes, so
    replacing ``log(0)`` by zero yields the correct limit.
    """
    out = np.zeros_like(r_sq)
    positive = r_sq > 0.0
    np.log(r_sq, where=positive, out=out)
    return out.astype(dtype, copy=False)


def stream_influence_matrix(points: np.ndarray, airfoil: Airfoil, *,
                            dtype=np.float64) -> np.ndarray:
    """Stream-function influence of every panel at every point.

    Returns ``F`` of shape ``(len(points), n_panels)`` where
    ``F[j, i]`` is the stream function at ``points[j]`` induced by panel
    ``i`` carrying unit vortex strength.

    The computation is fully vectorized over the ``points x panels``
    grid; *dtype* selects single or double precision (the paper runs
    both).
    """
    target = pt.as_points(points, dtype=dtype)
    start = np.asarray(airfoil.points[:-1], dtype=dtype)  # x_i
    end = np.asarray(airfoil.points[1:], dtype=dtype)  # x_{i+1}
    h = end - start
    h_perp = pt.perpendicular(h)
    h_len_sq = pt.dot(h, h)
    h_len = np.sqrt(h_len_sq)

    # Broadcast to the (points, panels) grid.
    d_start = target[:, None, :] - start[None, :, :]  # x - x_i
    d_end = target[:, None, :] - end[None, :, :]  # x - x_{i+1}

    proj_start = pt.dot(d_start, h[None, :, :])  # <x - x_i, h>
    proj_end = pt.dot(d_end, h[None, :, :])  # <x - x_{i+1}, h>
    normal = pt.dot(d_start, h_perp[None, :, :])  # I

    r_start_sq = pt.dot(d_start, d_start)
    r_end_sq = pt.dot(d_end, d_end)

    log_start = _safe_log_sq(r_start_sq, dtype)
    log_end = _safe_log_sq(r_end_sq, dtype)

    angle_start = np.arctan2(normal, proj_start)
    angle_end = np.arctan2(normal, proj_end)

    bracket = (
        0.5 * proj_start * log_start
        - 0.5 * proj_end * log_end
        - normal * angle_start
        + normal * angle_end
        - h_len_sq[None, :]
    )
    two_pi = np.asarray(2.0 * np.pi, dtype=dtype)
    return (bracket / (two_pi * h_len[None, :])).astype(dtype, copy=False)


def velocity_influence(points: np.ndarray, airfoil: Airfoil, *,
                       dtype=np.float64) -> np.ndarray:
    """Velocity influence of every panel at every point.

    Returns an array of shape ``(len(points), n_panels, 2)`` whose entry
    ``[j, i]`` is the velocity at ``points[j]`` induced by panel ``i``
    carrying unit vortex strength.  Derived analytically from the same
    panel integral as :func:`stream_influence_matrix`: in the panel
    frame (``xi`` along the panel, ``eta`` normal) a unit sheet induces

        u_xi  = -(theta_2 - theta_1) / (2 pi)
        u_eta =  log(r_1 / r_2) / (2 pi)

    where ``theta_k = arctan2(eta, xi - xi_k)``.  Points exactly on a
    panel see the principal-value tangential velocity (``+-1/2`` jump
    resolved to the mean).
    """
    target = pt.as_points(points, dtype=dtype)
    start = np.asarray(airfoil.points[:-1], dtype=dtype)
    end = np.asarray(airfoil.points[1:], dtype=dtype)
    h = end - start
    h_len = np.sqrt(pt.dot(h, h))
    tangent = h / h_len[:, None]
    # Right-handed local frame: eta along the +90-degree rotation of the
    # tangent (the *inward* normal for CCW outlines).  A left-handed
    # frame would silently mirror the induced rotation direction.
    normal_dir = -pt.perpendicular(tangent)

    d_start = target[:, None, :] - start[None, :, :]
    d_end = target[:, None, :] - end[None, :, :]
    xi = pt.dot(d_start, tangent[None, :, :])
    xi_end = pt.dot(d_end, tangent[None, :, :])
    eta = pt.dot(d_start, normal_dir[None, :, :])

    r_start_sq = xi**2 + eta**2
    r_end_sq = xi_end**2 + eta**2
    theta_start = np.arctan2(eta, xi)
    theta_end = np.arctan2(eta, xi_end)

    log_ratio = 0.5 * (_safe_log_sq(r_start_sq, dtype) - _safe_log_sq(r_end_sq, dtype))
    two_pi = np.asarray(2.0 * np.pi, dtype=dtype)
    u_tangential = -(theta_end - theta_start) / two_pi
    u_normal = log_ratio / two_pi

    velocity = (
        u_tangential[..., None] * tangent[None, :, :]
        + u_normal[..., None] * normal_dir[None, :, :]
    )
    return velocity.astype(dtype, copy=False)
