"""Influence coefficients of constant-strength vortex panels.

Implements the closed-form panel integral of the paper (Section 2):
the stream function at ``x`` induced by a unit-strength vortex sheet on
the straight panel from ``x_i`` to ``x_{i+1}`` is

    F_i(x) = 1 / (2 pi |h_i|) * [
          1/2 <x - x_i,     h_i> log |x - x_i|^2
        - 1/2 <x - x_{i+1}, h_i> log |x - x_{i+1}|^2
        - I arctan2(I, <x - x_i,     h_i>)
        + I arctan2(I, <x - x_{i+1}, h_i>)
        - |h_i|^2 ]

with ``h_i = x_{i+1} - x_i`` and ``I = <h_i_perp, x - x_i>``.  The
velocity influence (needed for off-body flow evaluation) follows from
the same integral differentiated analytically.

This assembly is the paper's "expensive" kernel: per matrix entry the
formula above costs two logarithms and two ``arctan2`` calls, which is
why the accelerators beat the CPU at it.  The implementations live in
:mod:`repro.panel.kernels` — a readable ``reference``, the default
``fused`` kernel (shares the per-endpoint logarithms between adjacent
panels and collapses the ``arctan2`` difference into one call via the
subtended-angle identity), and an opt-in compiled ``native`` kernel —
selected per call via ``kernel=`` or globally via the
``REPRO_ASSEMBLY_KERNEL`` environment variable.

Flop accounting for the hardware model lives in
:func:`assembly_flops_per_entry`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.airfoil import Airfoil
from repro.panel import kernels

# Re-exported for the Hess-Smith solver, which evaluates the same
# guarded logarithm on its source-panel grids.
_safe_log_sq = kernels.safe_log_sq

#: Effective floating-point work per matrix entry, used by the hardware
#: cost model.  Counts the polynomial arithmetic (~30 flops) plus two
#: ``log`` and two ``arctan2`` evaluations at a conventional 25
#: flop-equivalents each (vectorized transcendental cost on the
#: architectures of the paper).  This is the *paper's* kernel cost —
#: the model constant is kept even though the fused kernel evaluates
#: roughly half as many transcendentals, because the hardware tables
#: reproduce the paper's accounting, not ours.
ASSEMBLY_FLOPS_PER_ENTRY = 130


def assembly_flops_per_entry() -> int:
    """Effective flops per influence-matrix entry (model constant)."""
    return ASSEMBLY_FLOPS_PER_ENTRY


def assembly_flops(n_points: int, n_panels: int) -> int:
    """Effective flops to fill an ``n_points x n_panels`` influence block."""
    return n_points * n_panels * ASSEMBLY_FLOPS_PER_ENTRY


def stream_influence_matrix(points: np.ndarray, airfoil: Airfoil, *,
                            dtype=np.float64,
                            kernel: Optional[str] = None) -> np.ndarray:
    """Stream-function influence of every panel at every point.

    Returns ``F`` of shape ``(len(points), n_panels)`` where
    ``F[j, i]`` is the stream function at ``points[j]`` induced by panel
    ``i`` carrying unit vortex strength.

    The computation is fully vectorized over the ``points x panels``
    grid; *dtype* selects single or double precision (the paper runs
    both) and the computation stays in that dtype end to end.
    *kernel* picks the implementation (``reference`` / ``fused`` /
    ``native``; ``None`` defers to ``REPRO_ASSEMBLY_KERNEL``, default
    ``fused``) — see :mod:`repro.panel.kernels` and ``docs/kernels.md``
    for the parity guarantees between them.
    """
    return kernels.stream_function_for(kernel)(points, airfoil,
                                               np.dtype(dtype))


def velocity_influence(points: np.ndarray, airfoil: Airfoil, *,
                       dtype=np.float64,
                       kernel: Optional[str] = None) -> np.ndarray:
    """Velocity influence of every panel at every point.

    Returns an array of shape ``(len(points), n_panels, 2)`` whose entry
    ``[j, i]`` is the velocity at ``points[j]`` induced by panel ``i``
    carrying unit vortex strength.  Derived analytically from the same
    panel integral as :func:`stream_influence_matrix`: in the panel
    frame (``xi`` along the panel, ``eta`` normal) a unit sheet induces

        u_xi  = -(theta_2 - theta_1) / (2 pi)
        u_eta =  log(r_1 / r_2) / (2 pi)

    where ``theta_k = arctan2(eta, xi - xi_k)``.  Points exactly on a
    panel see the principal-value tangential velocity (``+-1/2``
    depending on the side the signed zero of ``eta`` remembers); at an
    exact panel endpoint both the angle and the log terms vanish, so
    the panel's own contribution is zero.  *kernel* selects the
    implementation exactly as in :func:`stream_influence_matrix`.
    """
    return kernels.velocity_function_for(kernel)(points, airfoil,
                                                 np.dtype(dtype))
