"""The Hess–Smith source–vortex panel method.

An independent second formulation of the same physics as
:mod:`repro.panel.solver`: constant-strength *source* panels plus one
global vortex strength, with the flow-tangency boundary condition
enforced on the velocity (not the stream function) and the Kutta
condition expressed as equal-and-opposite tangential velocities on the
two trailing-edge panels.

Having two formulations that must agree is the strongest internal
consistency check the library has (the paper relies on Xfoil for the
same purpose); the test suite cross-validates their lift coefficients
on every reference section.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import PanelMethodError
from repro.geometry import points as pt
from repro.geometry.airfoil import Airfoil
from repro.linalg import lu_factor, lu_solve
from repro.panel.freestream import Freestream
from repro.panel.influence import _safe_log_sq, velocity_influence

#: Control points are evaluated this fraction of the local panel length
#: outside the surface, which resolves the principal-value self terms
#: (+q/2 source blowing, -gamma/2 vortex slip) without special-casing.
CONTROL_POINT_OFFSET = 1e-7


def source_velocity_influence(points: np.ndarray, airfoil: Airfoil) -> np.ndarray:
    """Velocity at *points* induced by unit-strength source panels.

    Returns ``(len(points), n_panels, 2)``; derived from the same panel
    integral machinery as the vortex influence: in the panel frame a
    unit source sheet induces

        u_xi  =  log(r_1 / r_2) / (2 pi)
        u_eta =  (theta_2 - theta_1) / (2 pi)
    """
    target = pt.as_points(points, dtype=np.float64)
    start = np.asarray(airfoil.points[:-1], dtype=np.float64)
    end = np.asarray(airfoil.points[1:], dtype=np.float64)
    h = end - start
    h_len = np.sqrt(pt.dot(h, h))
    tangent = h / h_len[:, None]
    normal_dir = -pt.perpendicular(tangent)  # right-handed local frame

    d_start = target[:, None, :] - start[None, :, :]
    d_end = target[:, None, :] - end[None, :, :]
    xi = pt.dot(d_start, tangent[None, :, :])
    xi_end = pt.dot(d_end, tangent[None, :, :])
    eta = pt.dot(d_start, normal_dir[None, :, :])

    r_start_sq = xi**2 + eta**2
    r_end_sq = xi_end**2 + eta**2
    theta_start = np.arctan2(eta, xi)
    theta_end = np.arctan2(eta, xi_end)

    two_pi = 2.0 * np.pi
    u_tangential = 0.5 * (
        _safe_log_sq(r_start_sq, np.float64) - _safe_log_sq(r_end_sq, np.float64)
    ) / two_pi
    u_normal = (theta_end - theta_start) / two_pi

    return (
        u_tangential[..., None] * tangent[None, :, :]
        + u_normal[..., None] * normal_dir[None, :, :]
    )


@dataclasses.dataclass(frozen=True)
class HessSmithSolution:
    """Source strengths, vortex strength, and derived aerodynamics."""

    airfoil: Airfoil
    freestream: Freestream
    source_strengths: np.ndarray
    vortex_strength: float
    tangential_velocities: np.ndarray

    @property
    def circulation(self) -> float:
        """Total circulation (clockwise-positive, like the main solver).

        The common vortex strength rides on every panel, so the total
        CCW circulation is ``vortex_strength * perimeter``; the library
        convention is clockwise-positive, hence the sign flip.
        """
        return -self.vortex_strength * self.airfoil.perimeter

    @property
    def lift_coefficient(self) -> float:
        """``cl`` from the Kutta–Joukowski theorem."""
        return 2.0 * self.circulation / (
            self.freestream.speed * self.airfoil.chord
        )

    @property
    def pressure_coefficients(self) -> np.ndarray:
        """``Cp`` from the surface tangential speeds."""
        ratio = self.tangential_velocities / self.freestream.speed
        return 1.0 - ratio**2

    def normal_velocity_residual(self) -> float:
        """Max residual flow through the wall (should be ~ 0)."""
        offset_points = _offset_control_points(self.airfoil)
        velocity = self._total_velocity(offset_points)
        return float(np.max(np.abs(
            np.einsum("ij,ij->i", velocity, self.airfoil.normals)
        )))

    def _total_velocity(self, points: np.ndarray) -> np.ndarray:
        source = source_velocity_influence(points, self.airfoil)
        vortex = velocity_influence(points, self.airfoil)
        induced = np.einsum("mpc,p->mc", source, self.source_strengths)
        induced += self.vortex_strength * vortex.sum(axis=1)
        return induced + self.freestream.velocity


def _offset_control_points(airfoil: Airfoil) -> np.ndarray:
    offsets = (CONTROL_POINT_OFFSET * airfoil.panel_lengths)[:, None]
    return airfoil.control_points + offsets * airfoil.normals


def solve_hess_smith(airfoil: Airfoil, freestream: Freestream = None) -> HessSmithSolution:
    """Solve the source–vortex system for one configuration.

    The system has ``n + 1`` unknowns: one source strength per panel
    plus the single vortex strength.  Rows: flow tangency at every
    control point, plus the Kutta condition
    ``V . t_first = -V . t_last`` at the trailing edge.
    """
    freestream = freestream or Freestream()
    n = airfoil.n_panels
    if n < 3:
        raise PanelMethodError("Hess-Smith needs at least 3 panels")
    control = _offset_control_points(airfoil)
    normals = airfoil.normals
    tangents = airfoil.tangents

    source = source_velocity_influence(control, airfoil)  # (n, n, 2)
    vortex = velocity_influence(control, airfoil)  # (n, n, 2)

    matrix = np.empty((n + 1, n + 1))
    rhs = np.empty(n + 1)

    # Flow tangency: sum_j q_j S_ij.n_i + tau sum_j V_ij.n_i = -U.n_i
    matrix[:n, :n] = np.einsum("ijc,ic->ij", source, normals)
    matrix[:n, n] = np.einsum("ijc,ic->i", vortex, normals)
    rhs[:n] = -normals @ freestream.velocity

    # Kutta: tangential velocities on the trailing-edge panels cancel
    # (the panels run in opposite directions around the outline).
    kutta_rows = (0, n - 1)
    tangential_source = np.einsum(
        "ijc,ic->ij", source[list(kutta_rows)], tangents[list(kutta_rows)]
    )
    tangential_vortex = np.einsum(
        "ijc,ic->i", vortex[list(kutta_rows)], tangents[list(kutta_rows)]
    )
    matrix[n, :n] = tangential_source.sum(axis=0)
    matrix[n, n] = tangential_vortex.sum()
    rhs[n] = -(tangents[0] + tangents[n - 1]) @ freestream.velocity

    unknowns = lu_solve(lu_factor(matrix, overwrite=True), rhs)
    strengths, tau = unknowns[:n], float(unknowns[n])

    tangential = (
        np.einsum("ijc,j,ic->i", source, strengths, tangents)
        + tau * np.einsum("ijc,ic->i", vortex, tangents)
        + tangents @ freestream.velocity
    )
    return HessSmithSolution(
        airfoil=airfoil,
        freestream=freestream,
        source_strengths=strengths,
        vortex_strength=tau,
        tangential_velocities=np.abs(tangential),
    )
