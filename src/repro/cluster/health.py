"""Replica health tracking for the cluster router.

One :class:`HealthManager` watches a fixed set of replicas by polling
a caller-supplied probe (the router probes ``GET /healthz``) from a
single daemon thread.  Each replica is in one of three states:

* ``UP`` — probes succeed; the replica serves new work.
* ``DOWN`` — ``down_after`` *consecutive* probe failures; the router
  removes it from the ring and migrates its jobs.  It returns to
  ``UP`` after ``up_after`` consecutive successes (a flap therefore
  costs at least one full probe round trip in each direction).
* ``DRAINING`` — an operator flag, not a probe outcome: the replica is
  excluded from *new* routing and placement but keeps its in-flight
  work, and its death would still be detected.  Draining is how you
  take a replica out for maintenance without triggering migration.

Probe intervals are jittered (``interval ± jitter * interval``,
deterministic RNG seeded per manager) so a router fronting many
replicas does not synchronize its probes into periodic bursts — the
same decorrelation argument as the client's full-jitter backoff.

State transitions invoke ``on_change(name, old_state, new_state)``
synchronously on the poller thread; the router uses this to edit the
ring and trigger job migration.  A raising callback is counted
(``callback_errors``) and never kills the poller.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ClusterError

#: Replica state vocabulary.
UP = "UP"
DOWN = "DOWN"
DRAINING = "DRAINING"


class _ReplicaHealth:
    """Mutable per-replica probe bookkeeping (guarded by the manager lock)."""

    __slots__ = ("name", "state", "failures", "successes", "draining",
                 "probes", "probe_failures", "last_probe_at", "next_due")

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = UP
        self.failures = 0
        self.successes = 0
        self.draining = False
        self.probes = 0
        self.probe_failures = 0
        self.last_probe_at: Optional[float] = None
        self.next_due = 0.0


class HealthManager:
    """Polls replicas and runs the UP/DRAINING/DOWN state machine.

    Parameters
    ----------
    names:
        Replica names to watch (fixed for the manager's lifetime).
    probe:
        ``probe(name) -> bool`` — one liveness check; exceptions count
        as failures.
    interval:
        Mean seconds between probes of one replica.
    jitter:
        Fractional jitter applied per probe (0.25 = ±25%).
    down_after:
        Consecutive failures before ``UP -> DOWN``.
    up_after:
        Consecutive successes before ``DOWN -> UP``.
    on_change:
        ``on_change(name, old, new)`` called for every UP/DOWN flip
        and every draining toggle.
    """

    def __init__(self, names: Iterable[str], probe: Callable[[str], bool], *,
                 interval: float = 0.5, jitter: float = 0.25,
                 down_after: int = 3, up_after: int = 1,
                 on_change: Optional[Callable[[str, str, str], None]] = None,
                 seed: int = 0) -> None:
        names = list(names)
        if not names:
            raise ClusterError("health manager needs at least one replica")
        if len(set(names)) != len(names):
            raise ClusterError("duplicate replica names in health manager")
        if not interval > 0.0:
            raise ClusterError(f"probe interval must be positive, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ClusterError(f"jitter must be in [0, 1), got {jitter}")
        if int(down_after) < 1 or int(up_after) < 1:
            raise ClusterError("down_after and up_after must be >= 1")
        self.interval = float(interval)
        self.jitter = float(jitter)
        self.down_after = int(down_after)
        self.up_after = int(up_after)
        self.on_change = on_change
        self.callback_errors = 0
        self._probe = probe
        self._rng = random.Random(seed)
        self._lock = threading.RLock()
        self._replicas: Dict[str, _ReplicaHealth] = {
            name: _ReplicaHealth(name) for name in names
        }
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "HealthManager":
        """Start the poller thread (idempotent start is an error)."""
        if self._thread is not None:
            raise ClusterError("health manager is already started")
        self._thread = threading.Thread(target=self._poll_loop,
                                        name="repro-cluster-health",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> bool:
        """Stop the poller; True once the thread exited (idempotent)."""
        self._stopping.set()
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state(self, name: str) -> str:
        """The replica's current state (``UP``/``DRAINING``/``DOWN``)."""
        with self._lock:
            return self._effective_state(self._require(name))

    def states(self) -> Dict[str, str]:
        """Every replica's current state."""
        with self._lock:
            return {name: self._effective_state(replica)
                    for name, replica in self._replicas.items()}

    def routable(self) -> List[str]:
        """Names currently eligible for new work (UP, not draining)."""
        with self._lock:
            return [name for name, replica in self._replicas.items()
                    if self._effective_state(replica) == UP]

    def snapshot(self) -> Dict[str, dict]:
        """Per-replica probe counters for the metrics document."""
        with self._lock:
            return {
                name: {
                    "state": self._effective_state(replica),
                    "probes": replica.probes,
                    "probe_failures": replica.probe_failures,
                    "consecutive_failures": replica.failures,
                }
                for name, replica in self._replicas.items()
            }

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def set_draining(self, name: str, draining: bool = True) -> str:
        """Toggle the operator draining flag; returns the new state."""
        with self._lock:
            replica = self._require(name)
            if replica.draining == bool(draining):
                return self._effective_state(replica)
            old = self._effective_state(replica)
            replica.draining = bool(draining)
            new = self._effective_state(replica)
        if old != new:
            self._notify(name, old, new)
        return new

    def check_now(self, name: Optional[str] = None) -> Dict[str, str]:
        """Probe one replica (or all) synchronously; returns states.

        The deterministic entry point tests and the router's startup
        use instead of waiting a poll interval.
        """
        with self._lock:
            names = [self._require(name).name] if name is not None \
                else list(self._replicas)
        for target in names:
            self._probe_one(target)
        return self.states()

    # ------------------------------------------------------------------
    # Poller internals
    # ------------------------------------------------------------------

    def _require(self, name: str) -> _ReplicaHealth:
        replica = self._replicas.get(name)
        if replica is None:
            raise ClusterError(f"unknown replica {name!r}")
        return replica

    @staticmethod
    def _effective_state(replica: _ReplicaHealth) -> str:
        if replica.state == DOWN:
            return DOWN
        return DRAINING if replica.draining else UP

    def _jittered_interval(self) -> float:
        with self._lock:
            spread = self.jitter * self.interval
            return self.interval + self._rng.uniform(-spread, spread)

    def _poll_loop(self) -> None:
        now = time.monotonic()
        with self._lock:
            # Stagger the first round across one interval so N replicas
            # are not all probed back to back at startup.
            for replica in self._replicas.values():
                replica.next_due = now + self._rng.uniform(0.0, self.interval)
        while not self._stopping.is_set():
            now = time.monotonic()
            with self._lock:
                due = [replica.name for replica in self._replicas.values()
                       if replica.next_due <= now]
                wake = min(replica.next_due
                           for replica in self._replicas.values())
            for name in due:
                if self._stopping.is_set():
                    return
                self._probe_one(name)
                with self._lock:
                    self._require(name).next_due = (time.monotonic()
                                                    + self._jittered_interval())
            if not due:
                self._stopping.wait(min(0.2, max(0.001, wake - now)))

    def _probe_one(self, name: str) -> None:
        try:
            healthy = bool(self._probe(name))
        except Exception:
            healthy = False
        change = None
        with self._lock:
            replica = self._replicas.get(name)
            if replica is None:  # pragma: no cover - defensive
                return
            old = self._effective_state(replica)
            replica.probes += 1
            replica.last_probe_at = time.monotonic()
            if healthy:
                replica.successes += 1
                replica.failures = 0
                if replica.state == DOWN and replica.successes >= self.up_after:
                    replica.state = UP
            else:
                replica.probe_failures += 1
                replica.failures += 1
                replica.successes = 0
                if replica.state == UP and replica.failures >= self.down_after:
                    replica.state = DOWN
            new = self._effective_state(replica)
            if old != new:
                change = (name, old, new)
        if change is not None:
            self._notify(*change)

    def _notify(self, name: str, old: str, new: str) -> None:
        if self.on_change is None:
            return
        try:
            self.on_change(name, old, new)
        except Exception:
            with self._lock:
                self.callback_errors += 1
