"""Multi-node sharded serving: a consistent-hash cluster router.

``python -m repro cluster route --replica URL [--replica URL ...]``
starts a stdlib-only router process fronting N independent
``repro serve`` replicas with the same wire API a single replica
speaks.  The pieces (see ``docs/cluster.md``):

* :mod:`repro.cluster.ring` — consistent-hash ring with virtual
  nodes, keyed on the genome cache key, so identical geometry always
  lands on the replica whose LRU already holds it;
* :mod:`repro.cluster.health` — out-of-band ``/healthz`` polling with
  UP/DRAINING/DOWN states and flap thresholds;
* :mod:`repro.cluster.router` — request proxying with 503-aware
  failover along the ring preference order, job placement, and
  checkpoint-staged job migration off dead replicas;
* :mod:`repro.cluster.placement` — the durable placement journal and
  the least-loaded/capacity-split placement policies;
* :mod:`repro.cluster.metrics` — router counters plus the merged
  cluster-wide ``/metrics`` view;
* :mod:`repro.cluster.http` — the HTTP front end, plus
  ``/cluster/status`` and ``/cluster/drain``.
"""

from repro.cluster.health import DOWN, DRAINING, UP, HealthManager
from repro.cluster.http import ClusterHTTPServer, start_cluster_server
from repro.cluster.metrics import RouterMetrics, aggregate_cluster, merge_snapshots
from repro.cluster.placement import JobPlacer, Placement, PlacementJournal
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.router import ClusterRouter, Replica, parse_replica

__all__ = [
    "ClusterHTTPServer",
    "ClusterRouter",
    "DEFAULT_VNODES",
    "DOWN",
    "DRAINING",
    "HashRing",
    "HealthManager",
    "JobPlacer",
    "Placement",
    "PlacementJournal",
    "Replica",
    "RouterMetrics",
    "UP",
    "aggregate_cluster",
    "merge_snapshots",
    "parse_replica",
    "start_cluster_server",
]
