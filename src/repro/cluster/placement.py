"""Job placement and migration state for the cluster router.

The router is the only component that knows *where* a job lives, so
that knowledge must survive a router restart: every placement decision
is one JSON line appended to the router's own state file
(``<state_dir>/placements.jsonl``), replayed on open — the same
append-only pattern as the jobs journal in :mod:`repro.jobs.store`,
without the checkpoint machinery (the replicas own job *state*; the
router only owns job *location*).

Two decisions live here:

* **Placement** (:meth:`JobPlacer.choose`) — new jobs go to the
  least-loaded replica, where load is the live ``PENDING + RUNNING``
  job count from each replica's ``/metrics`` ``jobs`` section.
* **Migration planning** (:meth:`JobPlacer.plan_migration`) — when a
  replica dies with several live jobs, the batch of orphans is split
  across survivors proportionally to their free capacity using the
  same largest-remainder split the heterogeneous pipeline uses to
  divide a batch across unequal accelerators
  (:func:`repro.pipeline.heterogeneous.split_batch`) — nodes are just
  one more tier of unequal devices.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from typing import Dict, List, Optional, Sequence

from repro.errors import ClusterError
from repro.jobs.model import JobState
from repro.pipeline.heterogeneous import split_batch

#: Placement journal filename inside the router state directory.
PLACEMENTS_NAME = "placements.jsonl"


@dataclasses.dataclass
class Placement:
    """Where one keyed job lives, as the router last knew it."""

    job_key: str
    job_id: str
    replica: str
    spec: dict
    state: str = JobState.PENDING
    migrations: int = 0

    @property
    def live(self) -> bool:
        """True while the job may still need migrating."""
        return self.state not in JobState.TERMINAL

    def to_dict(self) -> dict:
        return {
            "job_key": self.job_key,
            "job_id": self.job_id,
            "replica": self.replica,
            "state": self.state,
            "migrations": self.migrations,
        }


class PlacementJournal:
    """Durable ``job_key -> placement`` map behind a JSONL file.

    ``state_dir=None`` keeps the journal in memory only — placements
    then die with the router process, which is fine for tests and
    benchmarks but forfeits migration after a router restart.

    Replay follows the jobs-journal contract: a torn *final* line (the
    crash-mid-append signature) is dropped and counted; a corrupt
    interior line raises, because silently skipping history would
    fabricate placements.
    """

    def __init__(self, state_dir: Optional[str] = None) -> None:
        self._lock = threading.RLock()
        self._placements: Dict[str, Placement] = {}
        self.torn_lines = 0
        self._journal = None
        self._path = None
        if state_dir is not None:
            os.makedirs(str(state_dir), exist_ok=True)
            self._path = os.path.join(str(state_dir), PLACEMENTS_NAME)
            self._replay()
            self._journal = open(self._path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Replay / persistence
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        if not os.path.exists(self._path):
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    self.torn_lines += 1
                    with open(self._path, "r+b") as handle:
                        handle.seek(0, os.SEEK_END)
                        handle.truncate(max(0, handle.tell()
                                            - len(line.encode("utf-8"))))
                    continue
                raise ClusterError(
                    f"corrupt placement line {number + 1} in {self._path} "
                    "(only the final line may be torn)"
                )
            self._apply(entry)

    def _apply(self, entry: dict) -> None:
        kind = entry.get("type")
        job_key = entry.get("job_key")
        if kind == "placed":
            self._placements[job_key] = Placement(
                job_key=job_key, job_id=entry["job_id"],
                replica=entry["replica"], spec=entry.get("spec", {}),
            )
            return
        placement = self._placements.get(job_key)
        if placement is None:
            return  # unknown job: skipped, not fatal
        if kind == "migrated":
            placement.replica = entry["replica"]
            placement.migrations += 1
            placement.state = JobState.PENDING
        elif kind == "state":
            placement.state = entry["state"]
        # Unknown entry types are skipped (forward compatibility).

    def _append(self, entry: dict) -> None:
        if self._journal is None:
            return
        self._journal.write(json.dumps(entry, sort_keys=True,
                                       separators=(",", ":")) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def close(self) -> None:
        """Flush and close the journal handle (idempotent)."""
        with self._lock:
            if self._journal is not None and not self._journal.closed:
                self._journal.flush()
                self._journal.close()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_placed(self, job_key: str, job_id: str, replica: str,
                      spec: dict) -> Placement:
        """Journal a fresh placement decision."""
        with self._lock:
            if job_key in self._placements:
                raise ClusterError(f"job_key {job_key!r} is already placed")
            placement = Placement(job_key=job_key, job_id=job_id,
                                  replica=replica, spec=dict(spec))
            self._placements[job_key] = placement
            self._append({"type": "placed", "job_key": job_key,
                          "job_id": job_id, "replica": replica,
                          "spec": dict(spec)})
            return placement

    def record_migrated(self, job_key: str, replica: str) -> Placement:
        """Journal a migration of *job_key* onto *replica*."""
        with self._lock:
            placement = self.get(job_key)
            placement.replica = replica
            placement.migrations += 1
            placement.state = JobState.PENDING
            self._append({"type": "migrated", "job_key": job_key,
                          "replica": replica})
            return placement

    def record_state(self, job_key: str, state: str) -> None:
        """Journal an observed job state (used to skip settled jobs).

        Only transitions *to a terminal state* are journaled — the
        interesting fact is "this job can never need migration again";
        live-state churn would bloat the journal for no information.
        """
        with self._lock:
            placement = self.get(job_key)
            if placement.state == state:
                return
            placement.state = state
            if state in JobState.TERMINAL:
                self._append({"type": "state", "job_key": job_key,
                              "state": state})

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, job_key: str) -> Placement:
        with self._lock:
            placement = self._placements.get(job_key)
            if placement is None:
                raise ClusterError(f"no placement for job_key {job_key!r}")
            return placement

    def by_job_id(self, job_id: str) -> Optional[Placement]:
        """The placement holding *job_id*, or ``None``."""
        with self._lock:
            for placement in self._placements.values():
                if placement.job_id == job_id:
                    return placement
            return None

    def list(self) -> List[Placement]:
        """Every placement, insertion order."""
        with self._lock:
            return list(self._placements.values())

    def live_on(self, replica: str) -> List[Placement]:
        """Non-terminal placements currently assigned to *replica*."""
        with self._lock:
            return [placement for placement in self._placements.values()
                    if placement.replica == replica and placement.live]


class JobPlacer:
    """Least-loaded-first placement over live replica metrics.

    Parameters
    ----------
    load_of:
        ``load_of(replica_name) -> Optional[dict]`` returning the
        replica's ``/metrics`` ``jobs`` section (or ``None`` when the
        replica has no jobs subsystem or cannot be reached).
    """

    def __init__(self, load_of) -> None:
        self._load_of = load_of

    @staticmethod
    def _live_jobs(jobs_section: dict) -> int:
        states = jobs_section.get("states", {})
        return (int(states.get(JobState.PENDING, 0))
                + int(states.get(JobState.RUNNING, 0)))

    @staticmethod
    def _free_slots(jobs_section: dict) -> float:
        slots = int(jobs_section.get("slots", 1))
        running = int(jobs_section.get("states", {}).get(JobState.RUNNING, 0))
        return max(0.25, float(slots - running))  # floor keeps a busy
        # survivor eligible: every candidate saturated is still a plan.

    def loads(self, candidates: Sequence[str]) -> Dict[str, dict]:
        """The ``jobs`` metrics section per placeable candidate."""
        loads: Dict[str, dict] = {}
        for name in candidates:
            section = self._load_of(name)
            if section is not None:
                loads[name] = section
        return loads

    def choose(self, candidates: Sequence[str]) -> str:
        """The least-loaded candidate (ties break by name for
        determinism); raises :class:`ClusterError` when no candidate
        can take jobs."""
        loads = self.loads(candidates)
        if not loads:
            raise ClusterError(
                "no replica can accept jobs (none reachable with the jobs "
                "subsystem enabled — start replicas with --jobs-dir)"
            )
        return min(sorted(loads),
                   key=lambda name: (self._live_jobs(loads[name]), name))

    def plan_migration(self, orphans: Sequence[str],
                       survivors: Sequence[str]) -> Dict[str, str]:
        """Assign each orphaned job key to a surviving replica.

        The orphan batch is split across survivors with the
        heterogeneous work-splitting rule — shares proportional to
        free job slots, integerized largest-remainder — then filled
        in sorted order so the plan is deterministic for a given
        (orphans, survivor loads) observation.
        """
        loads = self.loads(survivors)
        if not loads:
            raise ClusterError(
                "cannot migrate jobs: no surviving replica accepts jobs"
            )
        names = sorted(loads)
        shares = split_batch(len(orphans),
                             [self._free_slots(loads[name]) for name in names])
        plan: Dict[str, str] = {}
        queue = list(orphans)
        for name, share in zip(names, shares):
            for _ in range(share):
                if queue:
                    plan[queue.pop(0)] = name
        return plan
