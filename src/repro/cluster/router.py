"""The cluster router: consistent-hash fan-out over serve replicas.

One :class:`ClusterRouter` fronts N independent ``repro serve``
processes ("replicas") and exposes the same wire API they do, so a
client cannot tell a cluster from a single node:

* ``/analyze`` and ``/analyze_batch`` route each request by the *same*
  genome cache key the replica LRU uses
  (:meth:`repro.core.api.AnalyzeRequest.cache_key`), so identical
  geometry always lands on the same replica and the cluster-wide cache
  hit rate approaches a single node's — that is the whole point of
  consistent hashing here.
* ``/jobs`` places new optimization jobs on the least-loaded replica
  and journals the placement; when a replica dies, its unfinished jobs
  are resubmitted to survivors with their checkpoint staged first, so
  the migrated run *resumes* rather than restarts.

Failure handling has exactly two moves, keyed on the ``status``
attribute of :class:`~repro.errors.ServeError`:

* ``None`` (transport) or ``503`` (shed) — try the next replica in the
  key's ring preference order; the candidate walk doubles as failover.
* anything else (400, 404, 504) — the replica made a decision; the
  router propagates it unchanged.  Retrying a malformed request or a
  spent deadline elsewhere would only lie to the caller.

Replica health is polled out-of-band (:mod:`repro.cluster.health`);
DOWN replicas are skipped at candidate selection and their jobs
migrate.  The ring itself never changes shape — minimal movement on
failure comes from walking the *preference* order, which is exactly
the order keys would be reassigned under node removal.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.health import DOWN, HealthManager
from repro.cluster.metrics import RouterMetrics, aggregate_cluster
from repro.cluster.placement import JobPlacer, Placement, PlacementJournal
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.core.api import AnalyzeRequest, canonical_json, extract_deadline_ms
from repro.errors import ClusterError, OverloadedError, ReproError, ServeError
from repro.jobs.model import JobState, validate_job_key
from repro.jobs.store import CHECKPOINT_DIR, JOURNAL_NAME
from repro.serve.client import ServeClient


def parse_replica(spec: str) -> Tuple[str, int, Optional[str]]:
    """Parse one ``--replica`` value into ``(host, port, jobs_dir)``.

    Accepted spellings: ``http://host:port``, ``host:port``, each
    optionally suffixed ``=JOBS_DIR`` to tell the router where that
    replica keeps its jobs directory (required for checkpoint staging
    during migration; the replicas must share a filesystem with the
    router for that feature, which is the single-workstation topology
    this repo targets).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ClusterError("replica spec must be a non-empty string")
    text = spec.strip()
    jobs_dir: Optional[str] = None
    if "=" in text:
        text, _, jobs_dir = text.partition("=")
        jobs_dir = jobs_dir.strip()
        if not jobs_dir:
            raise ClusterError(
                f"replica spec {spec!r} has an empty jobs dir after '='"
            )
    if "://" in text:
        scheme, _, rest = text.partition("://")
        if scheme != "http":
            raise ClusterError(
                f"replica {spec!r}: only http:// URLs are supported"
            )
        text = rest
    text = text.strip().rstrip("/")
    host, sep, port_text = text.rpartition(":")
    if not sep or not host or "/" in text:
        raise ClusterError(
            f"replica {spec!r} is malformed (expected host:port or "
            "http://host:port, optionally =JOBS_DIR)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"replica {spec!r} has a non-integer port")
    if not 0 < port < 65536:
        raise ClusterError(f"replica {spec!r} port must be in 1..65535")
    return host, port, jobs_dir


class Replica:
    """One backend serve process as the router sees it."""

    def __init__(self, host: str, port: int, jobs_dir: Optional[str] = None,
                 *, timeout: float = 60.0, probe_timeout: float = 2.0) -> None:
        self.host = host
        self.port = int(port)
        self.name = f"{host}:{self.port}"
        self.base_url = f"http://{self.name}"
        self.jobs_dir = jobs_dir
        # Two clients on purpose: the proxy client carries request
        # deadlines (long timeout), while probes must fail fast or a
        # hung replica would stall the whole health poller.
        self.client = ServeClient(host=host, port=port, timeout=timeout)
        self.probe_client = ServeClient(host=host, port=port,
                                        timeout=probe_timeout)

    def close(self) -> None:
        self.client.close()
        self.probe_client.close()


class ClusterRouter:
    """Routes the serve API across replicas; see the module docstring.

    Parameters
    ----------
    replicas:
        ``--replica`` spec strings (see :func:`parse_replica`).
    vnodes:
        Virtual nodes per replica on the hash ring.
    state_dir:
        Directory for the placement journal; ``None`` keeps placements
        in memory only (no migration across router restarts).
    health_interval, down_after, up_after:
        Probe cadence and flap thresholds (see
        :class:`~repro.cluster.health.HealthManager`).
    timeout:
        Proxy-request timeout per replica attempt, seconds.
    """

    def __init__(self, replicas: Sequence[str], *,
                 vnodes: int = DEFAULT_VNODES,
                 state_dir: Optional[str] = None,
                 health_interval: float = 0.5,
                 down_after: int = 3, up_after: int = 1,
                 timeout: float = 60.0, seed: int = 0) -> None:
        if not replicas:
            raise ClusterError("a cluster needs at least one --replica")
        self.replicas: Dict[str, Replica] = {}
        for spec in replicas:
            host, port, jobs_dir = parse_replica(spec)
            replica = Replica(host, port, jobs_dir, timeout=timeout)
            if replica.name in self.replicas:
                raise ClusterError(f"duplicate replica {replica.name}")
            self.replicas[replica.name] = replica
        self.ring = HashRing(self.replicas, vnodes=vnodes)
        self.metrics = RouterMetrics()
        self.journal = PlacementJournal(state_dir)
        self.placer = JobPlacer(self._jobs_section)
        self.health = HealthManager(
            list(self.replicas), self._probe, interval=health_interval,
            down_after=down_after, up_after=up_after,
            on_change=self._on_health_change, seed=seed,
        )
        self.last_request_id: Optional[str] = None
        self._migration_lock = threading.Lock()
        self._migrations: List[threading.Thread] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterRouter":
        """Probe every replica once, then start background polling."""
        self.health.check_now()
        self.health.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop polling, finish in-flight migrations, release sockets."""
        if self._closed:
            return
        self._closed = True
        self.health.close(timeout)
        for thread in self._migrations:
            thread.join(timeout)
        for replica in self.replicas.values():
            replica.close()
        self.journal.close()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Health plumbing
    # ------------------------------------------------------------------

    def _probe(self, name: str) -> bool:
        # Probes always dial a fresh connection: a pooled keep-alive
        # socket can stay serviceable after the replica stops accepting
        # new connections, which is exactly the condition a probe must
        # detect (new routed work needs new connections).
        probe_client = self.replicas[name].probe_client
        try:
            health = probe_client.healthz()
        finally:
            probe_client.close()
        return health.get("status") == "ok"

    def _on_health_change(self, name: str, old: str, new: str) -> None:
        self.metrics.increment("health_transitions")
        if new == DOWN and not self._closed:
            thread = threading.Thread(
                target=self._migrate_from, args=(name,),
                name=f"repro-cluster-migrate-{name}", daemon=True,
            )
            self._migrations.append(thread)
            thread.start()

    def _candidates(self, key: str) -> List[str]:
        """Ring preference order filtered to routable replicas.

        When health marks *everything* unroutable the unfiltered order
        is returned as a last-ditch attempt — trying and failing gives
        the caller a truthful error, refusing outright could mask a
        probe false-negative.
        """
        preference = self.ring.preference(key)
        routable = set(self.health.routable())
        ordered = [name for name in preference if name in routable]
        return ordered or preference

    # ------------------------------------------------------------------
    # Analyze routing
    # ------------------------------------------------------------------

    @staticmethod
    def _routing_key(payload: dict) -> str:
        """The replica-affinity key: the genome cache key when the
        payload parses, else its canonical JSON (invalid payloads then
        still route deterministically, and the replica's own validation
        produces the error the caller deserves)."""
        try:
            return AnalyzeRequest.from_dict(payload).cache_key()
        except ReproError:
            return canonical_json(payload if isinstance(payload, dict)
                                  else {"payload": repr(payload)})

    def analyze_raw(self, payload: dict, *,
                    deadline_ms: Optional[float] = None,
                    request_id: Optional[str] = None) -> str:
        """Proxy one ``/analyze`` payload; returns the canonical body."""
        payload, body_deadline = extract_deadline_ms(payload)
        if body_deadline is not None:
            deadline_ms = body_deadline
        key = self._routing_key(payload)
        last_error: Optional[ServeError] = None
        for attempt, name in enumerate(self._candidates(key)):
            if attempt:
                self.metrics.increment("failovers")
            client = self.replicas[name].client
            try:
                raw = client.analyze_raw(payload, deadline_ms=deadline_ms,
                                         request_id=request_id)
            except ServeError as error:
                if getattr(error, "status", None) in (None, 503):
                    last_error = error
                    continue
                self.metrics.increment("proxy_errors")
                raise
            self.metrics.increment("routed")
            self.last_request_id = client.last_request_id
            return raw
        self.metrics.increment("exhausted")
        raise OverloadedError(
            f"no replica could serve the request (last error: {last_error})"
        )

    def analyze(self, payload: dict, *, deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None) -> dict:
        return json.loads(self.analyze_raw(payload, deadline_ms=deadline_ms,
                                           request_id=request_id))

    def analyze_batch(self, items: Sequence[dict], *,
                      deadline_ms: Optional[float] = None,
                      request_id: Optional[str] = None) -> List[dict]:
        """Split a batch by routing key, fan sub-batches out in
        parallel, and reassemble results in submission order.

        A sub-batch whose replica fails retryably is re-routed item by
        item through the single-request failover path, so one replica
        death degrades throughput, not correctness.
        """
        self.metrics.increment("routed_batch")
        groups: Dict[str, List[Tuple[int, dict]]] = {}
        for index, item in enumerate(items):
            clean = item if isinstance(item, dict) else {}
            name = self._candidates(self._routing_key(
                extract_deadline_ms(clean)[0]))[0]
            groups.setdefault(name, []).append((index, item))
        results: List[Optional[dict]] = [None] * len(items)

        def fan_out(name: str, group: List[Tuple[int, dict]]) -> None:
            self.metrics.increment("fanout_requests")
            try:
                batch = self.replicas[name].client.analyze_batch(
                    [item for _, item in group],
                    deadline_ms=deadline_ms, request_id=request_id)
                for (index, _), result in zip(group, batch):
                    results[index] = result
                return
            except ServeError as error:
                if getattr(error, "status", None) not in (None, 503):
                    failure = {"error": str(error),
                               "type": type(error).__name__}
                    for index, _ in group:
                        results[index] = failure
                    return
            # Retryable sub-batch failure: salvage item by item.
            for index, item in group:
                try:
                    results[index] = self.analyze(
                        item, deadline_ms=deadline_ms, request_id=request_id)
                except ReproError as error:
                    results[index] = {"error": str(error),
                                      "type": type(error).__name__}

        threads = [threading.Thread(target=fan_out, args=(name, group),
                                    daemon=True)
                   for name, group in groups.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    # ------------------------------------------------------------------
    # Jobs: placement, proxying, migration
    # ------------------------------------------------------------------

    def _jobs_section(self, name: str) -> Optional[dict]:
        """The replica's live ``jobs`` metrics section, or ``None``."""
        try:
            section = self.replicas[name].client.metrics().get("jobs")
        except ServeError:
            return None
        return section if isinstance(section, dict) else None

    def submit_job(self, payload: dict, *,
                   request_id: Optional[str] = None) -> dict:
        """Place and submit one job; returns the record plus the
        ``replica`` it landed on.

        A client-supplied ``job_key`` makes this idempotent across the
        whole cluster: a duplicate routes to the job's existing replica
        (wherever placement or migration last put it) and returns the
        original record.  Without one the router generates a key, since
        the key is also the migration identity.
        """
        payload = dict(payload) if isinstance(payload, dict) else payload
        if not isinstance(payload, dict):
            raise ServeError("job spec must be a JSON object")
        job_key = payload.pop("job_key", None)
        if job_key is None:
            job_key = f"router/{uuid.uuid4().hex}"
        job_key = validate_job_key(job_key)

        existing = None
        try:
            existing = self.journal.get(job_key)
        except ClusterError:
            pass
        if existing is not None:
            record = self.replicas[existing.replica].client.submit_job(
                payload, job_key=job_key, request_id=request_id)
            self.journal.record_state(job_key, record["state"])
            return dict(record, replica=existing.replica)

        candidates = list(self.health.routable()) or list(self.replicas)
        while True:
            name = self.placer.choose(candidates)
            try:
                record = self.replicas[name].client.submit_job(
                    payload, job_key=job_key, request_id=request_id)
            except ServeError as error:
                if getattr(error, "status", None) in (None, 503):
                    candidates = [c for c in candidates if c != name]
                    if candidates:
                        self.metrics.increment("failovers")
                        continue
                raise
            self.journal.record_placed(job_key, record["id"], name, payload)
            self.metrics.increment("jobs_placed")
            return dict(record, replica=name)

    def _locate(self, job_id: str) -> Optional[Placement]:
        return self.journal.by_job_id(job_id)

    def _job_call(self, job_id: str, call) -> dict:
        """Run ``call(client)`` against the replica owning *job_id*.

        Placed jobs go straight to their placement; unknown IDs (jobs
        submitted behind the router's back, or placements lost with no
        state dir) fall back to asking every replica in turn.
        """
        placement = self._locate(job_id)
        if placement is not None:
            try:
                record = call(self.replicas[placement.replica].client)
            except ServeError as error:
                if getattr(error, "status", None) is None:
                    # The owning replica is unreachable; if it is dying
                    # the job will migrate — tell the caller to retry.
                    raise OverloadedError(
                        f"replica {placement.replica} is unreachable; "
                        f"job {job_id} may be migrating ({error})"
                    )
                raise
            if isinstance(record, dict) and "state" in record:
                self.journal.record_state(placement.job_key, record["state"])
            return dict(record, replica=placement.replica)
        last_error: Optional[ServeError] = None
        for name in sorted(self.replicas):
            try:
                return dict(call(self.replicas[name].client), replica=name)
            except ServeError as error:
                last_error = error
        raise last_error if last_error is not None else ServeError(
            f"job {job_id} not found on any replica")

    def job(self, job_id: str) -> dict:
        return self._job_call(job_id, lambda client: client.job(job_id))

    def job_events(self, job_id: str, since: int = 0) -> dict:
        return self._job_call(
            job_id, lambda client: client.job_events(job_id, since=since))

    def cancel_job(self, job_id: str, *,
                   request_id: Optional[str] = None) -> dict:
        return self._job_call(
            job_id,
            lambda client: client.cancel_job(job_id, request_id=request_id))

    def jobs(self) -> List[dict]:
        """Every job on every reachable replica, tagged with its host."""
        merged: List[dict] = []
        for name in sorted(self.replicas):
            try:
                records = self.replicas[name].client.jobs()
            except ServeError:
                continue
            merged.extend(dict(record, replica=name) for record in records)
        return merged

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------

    @staticmethod
    def _journal_states(jobs_dir: str) -> Dict[str, str]:
        """Final job states from a (dead) replica's on-disk journal.

        Reads the JSONL directly — the owning process is gone, and this
        is exactly the durable record it left behind.  A torn final
        line is skipped, like the store's own replay.
        """
        states: Dict[str, str] = {}
        path = os.path.join(jobs_dir, JOURNAL_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError:
            return states
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("type") == "submitted":
                states.setdefault(entry.get("id"), JobState.PENDING)
            elif entry.get("type") == "state":
                states[entry.get("id")] = entry.get("state")
        return states

    def _migrate_from(self, dead: str) -> None:
        """Resettle every live job placed on a now-DOWN replica."""
        with self._migration_lock:
            orphans = self.journal.live_on(dead)
            if not orphans:
                return
            dead_dir = self.replicas[dead].jobs_dir
            states = self._journal_states(dead_dir) if dead_dir else {}
            pending: List[Placement] = []
            for placement in orphans:
                state = states.get(placement.job_id)
                if state in JobState.TERMINAL:
                    # Finished before the crash: nothing to migrate.
                    self.journal.record_state(placement.job_key, state)
                    continue
                pending.append(placement)
            if not pending:
                return
            survivors = [name for name in self.health.routable()
                         if name != dead]
            try:
                plan = self.placer.plan_migration(
                    [placement.job_key for placement in pending], survivors)
            except ClusterError:
                self.metrics.increment("migration_failures", len(pending))
                return
            for placement in pending:
                target = plan.get(placement.job_key)
                if target is None:
                    self.metrics.increment("migration_failures")
                    continue
                try:
                    self._migrate_one(placement, dead_dir, target)
                except (ReproError, OSError):
                    self.metrics.increment("migration_failures")
                else:
                    self.metrics.increment("jobs_migrated")

    def _migrate_one(self, placement: Placement, dead_dir: Optional[str],
                     target: str) -> None:
        """Move one job: stage its checkpoint, resubmit, re-journal.

        The job ID is derived from the job key
        (:func:`repro.jobs.model.derive_job_id`), so the checkpoint
        file staged under the *same* ID is exactly what the survivor's
        runner loads — the migrated run resumes mid-flight and its
        history stays byte-identical to an uninterrupted run.
        """
        replica = self.replicas[target]
        if dead_dir and replica.jobs_dir:
            source = os.path.join(dead_dir, CHECKPOINT_DIR,
                                  f"{placement.job_id}.json")
            if os.path.exists(source):
                target_dir = os.path.join(replica.jobs_dir, CHECKPOINT_DIR)
                os.makedirs(target_dir, exist_ok=True)
                destination = os.path.join(target_dir,
                                           f"{placement.job_id}.json")
                with open(source, "rb") as src:
                    payload = src.read()
                with open(destination + ".tmp", "wb") as dst:
                    dst.write(payload)
                    dst.flush()
                    os.fsync(dst.fileno())
                os.replace(destination + ".tmp", destination)
                self.metrics.increment("checkpoints_staged")
        record = replica.client.submit_job(placement.spec,
                                           job_key=placement.job_key)
        if record["id"] != placement.job_id:  # pragma: no cover - defensive
            raise ClusterError(
                f"migrated job changed identity: {placement.job_id} "
                f"-> {record['id']}"
            )
        self.journal.record_migrated(placement.job_key, target)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        states = self.health.states()
        routable = self.health.routable()
        return {
            "status": "ok" if routable else "degraded",
            "replicas": states,
            "routable": len(routable),
        }

    def metrics_document(self) -> dict:
        """The three-floor cluster ``/metrics`` document."""
        router = dict(self.metrics.snapshot())
        router["health"] = self.health.snapshot()
        placements = self.journal.list()
        router["placements"] = {
            "total": len(placements),
            "live": sum(1 for placement in placements if placement.live),
        }
        snapshots: Dict[str, Optional[dict]] = {}
        for name in sorted(self.replicas):
            try:
                snapshots[name] = self.replicas[name].client.metrics()
            except ServeError:
                snapshots[name] = None
        return aggregate_cluster(router, snapshots)

    def status(self) -> dict:
        """The ``cluster status`` document: topology + placements."""
        states = self.health.states()
        return {
            "ring": {"vnodes": self.ring.vnodes,
                     "replicas": len(self.replicas)},
            "replicas": {
                name: {
                    "url": replica.base_url,
                    "state": states.get(name),
                    "jobs_dir": replica.jobs_dir,
                    "live_jobs": len(self.journal.live_on(name)),
                }
                for name, replica in sorted(self.replicas.items())
            },
            "placements": [placement.to_dict()
                           for placement in self.journal.list()],
        }
