"""The cluster router: consistent-hash fan-out over serve replicas.

One :class:`ClusterRouter` fronts N independent ``repro serve``
processes ("replicas") and exposes the same wire API they do, so a
client cannot tell a cluster from a single node:

* ``/analyze`` and ``/analyze_batch`` route each request by the *same*
  genome cache key the replica LRU uses
  (:meth:`repro.core.api.AnalyzeRequest.cache_key`), so identical
  geometry always lands on the same replica and the cluster-wide cache
  hit rate approaches a single node's — that is the whole point of
  consistent hashing here.
* ``/jobs`` places new optimization jobs on the least-loaded replica
  and journals the placement; when a replica dies, its unfinished jobs
  are resubmitted to survivors with their checkpoint staged first, so
  the migrated run *resumes* rather than restarts.

Failure handling has exactly two moves, keyed on the ``status``
attribute of :class:`~repro.errors.ServeError`:

* ``None`` (transport) or ``503`` (shed) — try the next replica in the
  key's ring preference order; the candidate walk doubles as failover.
* anything else (400, 404, 504) — the replica made a decision; the
  router propagates it unchanged.  Retrying a malformed request or a
  spent deadline elsewhere would only lie to the caller.

Replica health is polled out-of-band (:mod:`repro.cluster.health`);
DOWN replicas are skipped at candidate selection and their jobs
migrate.  The ring itself never changes shape — minimal movement on
failure comes from walking the *preference* order, which is exactly
the order keys would be reassigned under node removal.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.health import DOWN, HealthManager
from repro.cluster.metrics import RouterMetrics, aggregate_cluster
from repro.cluster.placement import JobPlacer, Placement, PlacementJournal
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.core.api import AnalyzeRequest, canonical_json, extract_deadline_ms
from repro.errors import ClusterError, OverloadedError, ReproError, ServeError
from repro.jobs.model import JobState, validate_job_key
from repro.jobs.store import CHECKPOINT_DIR, JOURNAL_NAME
from repro.obs.context import TraceContext, anchor_remote_spans, new_trace_context
from repro.obs.ids import coerce_request_id
from repro.obs.logging import StructuredLogger
from repro.obs.slo import SLOTracker
from repro.obs.trace import SOLVE_STAGE, Span, Trace
from repro.pipeline.trace import GanttRow, GanttSegment, GanttTrace, render_ascii
from repro.serve.client import ServeClient
from repro.serve.tracing import LIVE_GLYPHS, LIVE_TITLES, Tracer

#: Router-side span vocabulary: candidate selection, the health-table
#: lookup, and one span per proxy attempt (so failover is visible as
#: consecutive ``proxy_attempt`` bars in the stitched Gantt).
SPAN_ROUTE = "route"
SPAN_HEALTH_LOOKUP = "health_lookup"
SPAN_PROXY_ATTEMPT = "proxy_attempt"

#: Gantt glyphs/titles for the stitched cluster rendering: the replica
#: stages keep their single-node glyphs, router spans get their own.
CLUSTER_GLYPHS = dict(LIVE_GLYPHS, **{
    SPAN_ROUTE: "r",
    SPAN_HEALTH_LOOKUP: "k",
    SPAN_PROXY_ATTEMPT: "x",
})
CLUSTER_TITLES = dict(LIVE_TITLES, **{
    SPAN_ROUTE: "route (ring lookup)",
    SPAN_HEALTH_LOOKUP: "health lookup",
    SPAN_PROXY_ATTEMPT: "proxy attempt",
})


def parse_replica(spec: str) -> Tuple[str, int, Optional[str]]:
    """Parse one ``--replica`` value into ``(host, port, jobs_dir)``.

    Accepted spellings: ``http://host:port``, ``host:port``, each
    optionally suffixed ``=JOBS_DIR`` to tell the router where that
    replica keeps its jobs directory (required for checkpoint staging
    during migration; the replicas must share a filesystem with the
    router for that feature, which is the single-workstation topology
    this repo targets).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ClusterError("replica spec must be a non-empty string")
    text = spec.strip()
    jobs_dir: Optional[str] = None
    if "=" in text:
        text, _, jobs_dir = text.partition("=")
        jobs_dir = jobs_dir.strip()
        if not jobs_dir:
            raise ClusterError(
                f"replica spec {spec!r} has an empty jobs dir after '='"
            )
    if "://" in text:
        scheme, _, rest = text.partition("://")
        if scheme != "http":
            raise ClusterError(
                f"replica {spec!r}: only http:// URLs are supported"
            )
        text = rest
    text = text.strip().rstrip("/")
    host, sep, port_text = text.rpartition(":")
    if not sep or not host or "/" in text:
        raise ClusterError(
            f"replica {spec!r} is malformed (expected host:port or "
            "http://host:port, optionally =JOBS_DIR)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"replica {spec!r} has a non-integer port")
    if not 0 < port < 65536:
        raise ClusterError(f"replica {spec!r} port must be in 1..65535")
    return host, port, jobs_dir


class Replica:
    """One backend serve process as the router sees it."""

    def __init__(self, host: str, port: int, jobs_dir: Optional[str] = None,
                 *, timeout: float = 60.0, probe_timeout: float = 2.0) -> None:
        self.host = host
        self.port = int(port)
        self.name = f"{host}:{self.port}"
        self.base_url = f"http://{self.name}"
        self.jobs_dir = jobs_dir
        # Two clients on purpose: the proxy client carries request
        # deadlines (long timeout), while probes must fail fast or a
        # hung replica would stall the whole health poller.
        self.client = ServeClient(host=host, port=port, timeout=timeout)
        self.probe_client = ServeClient(host=host, port=port,
                                        timeout=probe_timeout)

    def close(self) -> None:
        self.client.close()
        self.probe_client.close()


class ClusterRouter:
    """Routes the serve API across replicas; see the module docstring.

    Parameters
    ----------
    replicas:
        ``--replica`` spec strings (see :func:`parse_replica`).
    vnodes:
        Virtual nodes per replica on the hash ring.
    state_dir:
        Directory for the placement journal; ``None`` keeps placements
        in memory only (no migration across router restarts).
    health_interval, down_after, up_after:
        Probe cadence and flap thresholds (see
        :class:`~repro.cluster.health.HealthManager`).
    timeout:
        Proxy-request timeout per replica attempt, seconds.
    trace_sample, trace_ring:
        Distributed-trace sampling rate (the *head* decision: sampled
        requests are traced on every hop downstream) and the number of
        completed router traces retained for stitching.
    logger:
        Structured logger for cluster lifecycle events (health
        transitions, failovers, migrations); ``None`` logs nothing.
    slo_latency_ms, slo_target:
        Cluster-level service objectives (client-observed, measured at
        the router — includes routing and failover time the per-replica
        SLOs cannot see).
    autotune:
        Per-replica weight tuning mode: ``"off"``, ``"advise"``
        (recommend + journal), or ``"apply"`` (additionally rebuild the
        ring with throughput-proportional weights).  ``None`` reads
        ``REPRO_AUTOTUNE``.  See ``docs/autotune.md``.
    autotune_interval, autotune_min_improvement:
        Loop period and the minimum fraction of traffic a reweight must
        move before the tuner acts (every reweight costs cache locality
        on the keys that change owner).
    """

    def __init__(self, replicas: Sequence[str], *,
                 vnodes: int = DEFAULT_VNODES,
                 state_dir: Optional[str] = None,
                 health_interval: float = 0.5,
                 down_after: int = 3, up_after: int = 1,
                 timeout: float = 60.0, seed: int = 0,
                 trace_sample: float = 1.0, trace_ring: int = 256,
                 logger: Optional[StructuredLogger] = None,
                 slo_latency_ms: float = 250.0,
                 slo_target: float = 0.99,
                 autotune: Optional[str] = None,
                 autotune_interval: float = 30.0,
                 autotune_min_improvement: float = 0.10) -> None:
        if not replicas:
            raise ClusterError("a cluster needs at least one --replica")
        self.replicas: Dict[str, Replica] = {}
        for spec in replicas:
            host, port, jobs_dir = parse_replica(spec)
            replica = Replica(host, port, jobs_dir, timeout=timeout)
            if replica.name in self.replicas:
                raise ClusterError(f"duplicate replica {replica.name}")
            self.replicas[replica.name] = replica
        self.ring = HashRing(self.replicas, vnodes=vnodes)
        self.metrics = RouterMetrics()
        self.tracer = Tracer(sample_rate=trace_sample, ring_size=trace_ring)
        self.slo = SLOTracker(latency_ms=slo_latency_ms, target=slo_target)
        self.logger = logger if logger is not None else StructuredLogger("off")
        self.journal = PlacementJournal(state_dir)
        self.placer = JobPlacer(self._jobs_section)
        self.health = HealthManager(
            list(self.replicas), self._probe, interval=health_interval,
            down_after=down_after, up_after=up_after,
            on_change=self._on_health_change, seed=seed,
        )
        self.last_request_id: Optional[str] = None
        self._migration_lock = threading.Lock()
        self._migrations: List[threading.Thread] = []
        self._base_vnodes = int(vnodes)
        self._weights: Dict[str, float] = {
            name: 1.0 / len(self.replicas) for name in self.replicas
        }
        #: The :class:`~repro.tune.ClusterAutotuner` when weight tuning
        #: is enabled, else ``None``; its loop starts with :meth:`start`.
        self.autotuner = None
        from repro.tune.controller import AutotuneConfig, resolve_mode

        mode = resolve_mode(autotune)
        if mode != "off":
            from repro.tune.controller import ClusterAutotuner

            self.autotuner = ClusterAutotuner(self, AutotuneConfig(
                mode=mode, interval=autotune_interval,
                min_improvement=autotune_min_improvement,
            ), start_thread=False)
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterRouter":
        """Probe every replica once, then start background polling."""
        self.health.check_now()
        self.health.start()
        if self.autotuner is not None:
            self.autotuner.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop polling, finish in-flight migrations, release sockets."""
        if self._closed:
            return
        self._closed = True
        if self.autotuner is not None:
            self.autotuner.close()
        self.health.close(timeout)
        for thread in self._migrations:
            thread.join(timeout)
        for replica in self.replicas.values():
            replica.close()
        self.journal.close()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Health plumbing
    # ------------------------------------------------------------------

    def _probe(self, name: str) -> bool:
        # Probes always dial a fresh connection: a pooled keep-alive
        # socket can stay serviceable after the replica stops accepting
        # new connections, which is exactly the condition a probe must
        # detect (new routed work needs new connections).
        probe_client = self.replicas[name].probe_client
        try:
            health = probe_client.healthz()
        finally:
            probe_client.close()
        return health.get("status") == "ok"

    def _on_health_change(self, name: str, old: str, new: str) -> None:
        self.metrics.increment("health_transitions")
        self.logger.event("health_transition", replica=name,
                          old=old, new=new)
        if new == DOWN and not self._closed:
            thread = threading.Thread(
                target=self._migrate_from, args=(name,),
                name=f"repro-cluster-migrate-{name}", daemon=True,
            )
            self._migrations.append(thread)
            thread.start()

    def _candidates(self, key: str,
                    trace: Optional[Trace] = None) -> List[str]:
        """Ring preference order filtered to routable replicas.

        When health marks *everything* unroutable the unfiltered order
        is returned as a last-ditch attempt — trying and failing gives
        the caller a truthful error, refusing outright could mask a
        probe false-negative.  A sampled *trace* gets one ``route``
        span (the ring walk) and one ``health_lookup`` span (the
        health-table read).
        """
        route_started = time.monotonic()
        preference = self.ring.preference(key)
        route_ended = time.monotonic()
        routable = set(self.health.routable())
        health_ended = time.monotonic()
        if trace is not None:
            trace.add_stage(SPAN_ROUTE, route_started, route_ended)
            trace.add_stage(SPAN_HEALTH_LOOKUP, route_ended, health_ended)
        ordered = [name for name in preference if name in routable]
        return ordered or preference

    # ------------------------------------------------------------------
    # Routing weights (the cluster autotuner's apply path)
    # ------------------------------------------------------------------

    def current_weights(self) -> Dict[str, float]:
        """The routing weight share each replica currently holds."""
        return dict(self._weights)

    def apply_weights(self, weights: Dict[str, float]) -> None:
        """Rebuild the ring with per-replica vnode counts scaled by
        *weights* (shares summing to ~1; a weight of ``1/n`` keeps the
        default vnode count).

        The rebuild is a single attribute swap — lookups in flight keep
        the old ring, the next lookup sees the new one — and vnode
        labels are unchanged, so only the arcs a replica gained or lost
        move keys (the usual consistent-hashing guarantee, now applied
        to reweighting).
        """
        if self._closed:
            raise ClusterError("router is closed; cannot reweight the ring")
        n = len(self.replicas)
        ring = HashRing(vnodes=self._base_vnodes)
        resolved = {}
        for name in sorted(self.replicas):
            share = float(weights.get(name, 1.0 / n))
            ring.add(name, weight=share * n)
            resolved[name] = share
        self.ring = ring
        self._weights = resolved
        self.metrics.increment("ring_reweights")
        self.logger.event("ring_reweighted", weights={
            name: round(share, 4) for name, share in sorted(resolved.items())
        })

    # ------------------------------------------------------------------
    # Analyze routing
    # ------------------------------------------------------------------

    @staticmethod
    def _routing_key(payload: dict) -> str:
        """The replica-affinity key: the genome cache key when the
        payload parses, else its canonical JSON (invalid payloads then
        still route deterministically, and the replica's own validation
        produces the error the caller deserves)."""
        try:
            return AnalyzeRequest.from_dict(payload).cache_key()
        except ReproError:
            return canonical_json(payload if isinstance(payload, dict)
                                  else {"payload": repr(payload)})

    def analyze_raw(self, payload: dict, *,
                    deadline_ms: Optional[float] = None,
                    request_id: Optional[str] = None,
                    trace_context: Optional[TraceContext] = None) -> str:
        """Proxy one ``/analyze`` payload; returns the canonical body.

        Tracing: an incoming *trace_context* (the caller already opened
        the trace) is obeyed; otherwise the router is the trace root
        and decides sampling here — the *head-based* decision every
        downstream hop inherits through the forwarded ``X-Repro-Trace``
        header.  Sampled requests record ``route``, ``health_lookup``,
        and one ``proxy_attempt`` span per failover try; the successful
        attempt's bounds are what the replica's span tree is later
        re-anchored into (:meth:`stitched_trace`).
        """
        started = time.monotonic()
        payload, body_deadline = extract_deadline_ms(payload)
        if body_deadline is not None:
            deadline_ms = body_deadline
        if trace_context is not None:
            context = trace_context
            trace = self.tracer.start(context.trace_id,
                                      sampled=context.sampled)
        else:
            trace_id = coerce_request_id(request_id)
            trace = self.tracer.start(trace_id)
            context = new_trace_context(trace_id, sampled=trace is not None)
        key = self._routing_key(payload)
        last_error: Optional[ServeError] = None
        for attempt, name in enumerate(self._candidates(key, trace=trace)):
            if attempt:
                self.metrics.increment("failovers")
                self.logger.event(
                    "failover", trace_id=context.trace_id,
                    request_id=request_id, attempt=attempt, replica=name,
                    last_error=str(last_error) if last_error else None,
                )
            client = self.replicas[name].client
            proxy_index = None if trace is None else len(trace.spans)
            send_started = time.monotonic()
            try:
                raw = client.analyze_raw(payload, deadline_ms=deadline_ms,
                                         request_id=request_id,
                                         trace_context=context.child())
            except ServeError as error:
                if trace is not None:
                    trace.add_stage(SPAN_PROXY_ATTEMPT, send_started,
                                    time.monotonic())
                if getattr(error, "status", None) in (None, 503):
                    last_error = error
                    continue
                self.metrics.increment("proxy_errors")
                self.slo.record(False, 1e3 * (time.monotonic() - started))
                if trace is not None:
                    trace.annotate(replica=name)
                    self.tracer.finish(trace, "failed")
                raise
            recv_ended = time.monotonic()
            if trace is not None:
                trace.add_stage(SPAN_PROXY_ATTEMPT, send_started, recv_ended)
                trace.annotate(replica=name, proxy_span=proxy_index,
                               attempts=attempt + 1)
                self.tracer.finish(trace, "completed")
            self.metrics.increment("routed")
            self.last_request_id = client.last_request_id
            self.slo.record(True, 1e3 * (recv_ended - started))
            return raw
        self.metrics.increment("exhausted")
        self.slo.record(False, 1e3 * (time.monotonic() - started))
        if trace is not None:
            self.tracer.finish(trace, "exhausted")
        self.logger.event(
            "routing_exhausted", trace_id=context.trace_id,
            request_id=request_id,
            last_error=str(last_error) if last_error else None,
        )
        raise OverloadedError(
            f"no replica could serve the request (last error: {last_error})"
        )

    def analyze(self, payload: dict, *, deadline_ms: Optional[float] = None,
                request_id: Optional[str] = None,
                trace_context: Optional[TraceContext] = None) -> dict:
        return json.loads(self.analyze_raw(payload, deadline_ms=deadline_ms,
                                           request_id=request_id,
                                           trace_context=trace_context))

    def analyze_batch(self, items: Sequence[dict], *,
                      deadline_ms: Optional[float] = None,
                      request_id: Optional[str] = None) -> List[dict]:
        """Split a batch by routing key, fan sub-batches out in
        parallel, and reassemble results in submission order.

        A sub-batch whose replica fails retryably is re-routed item by
        item through the single-request failover path, so one replica
        death degrades throughput, not correctness.
        """
        self.metrics.increment("routed_batch")
        groups: Dict[str, List[Tuple[int, dict]]] = {}
        for index, item in enumerate(items):
            clean = item if isinstance(item, dict) else {}
            name = self._candidates(self._routing_key(
                extract_deadline_ms(clean)[0]))[0]
            groups.setdefault(name, []).append((index, item))
        results: List[Optional[dict]] = [None] * len(items)

        def fan_out(name: str, group: List[Tuple[int, dict]]) -> None:
            self.metrics.increment("fanout_requests")
            try:
                batch = self.replicas[name].client.analyze_batch(
                    [item for _, item in group],
                    deadline_ms=deadline_ms, request_id=request_id)
                for (index, _), result in zip(group, batch):
                    results[index] = result
                return
            except ServeError as error:
                if getattr(error, "status", None) not in (None, 503):
                    failure = {"error": str(error),
                               "type": type(error).__name__}
                    for index, _ in group:
                        results[index] = failure
                    return
            # Retryable sub-batch failure: salvage item by item.
            for index, item in group:
                try:
                    results[index] = self.analyze(
                        item, deadline_ms=deadline_ms, request_id=request_id)
                except ReproError as error:
                    results[index] = {"error": str(error),
                                      "type": type(error).__name__}

        threads = [threading.Thread(target=fan_out, args=(name, group),
                                    daemon=True)
                   for name, group in groups.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    # ------------------------------------------------------------------
    # Jobs: placement, proxying, migration
    # ------------------------------------------------------------------

    def _jobs_section(self, name: str) -> Optional[dict]:
        """The replica's live ``jobs`` metrics section, or ``None``."""
        try:
            section = self.replicas[name].client.metrics().get("jobs")
        except ServeError:
            return None
        return section if isinstance(section, dict) else None

    def submit_job(self, payload: dict, *,
                   request_id: Optional[str] = None) -> dict:
        """Place and submit one job; returns the record plus the
        ``replica`` it landed on.

        A client-supplied ``job_key`` makes this idempotent across the
        whole cluster: a duplicate routes to the job's existing replica
        (wherever placement or migration last put it) and returns the
        original record.  Without one the router generates a key, since
        the key is also the migration identity.
        """
        payload = dict(payload) if isinstance(payload, dict) else payload
        if not isinstance(payload, dict):
            raise ServeError("job spec must be a JSON object")
        job_key = payload.pop("job_key", None)
        if job_key is None:
            job_key = f"router/{uuid.uuid4().hex}"
        job_key = validate_job_key(job_key)

        existing = None
        try:
            existing = self.journal.get(job_key)
        except ClusterError:
            pass
        if existing is not None:
            record = self.replicas[existing.replica].client.submit_job(
                payload, job_key=job_key, request_id=request_id)
            self.journal.record_state(job_key, record["state"])
            return dict(record, replica=existing.replica)

        candidates = list(self.health.routable()) or list(self.replicas)
        while True:
            name = self.placer.choose(candidates)
            try:
                record = self.replicas[name].client.submit_job(
                    payload, job_key=job_key, request_id=request_id)
            except ServeError as error:
                if getattr(error, "status", None) in (None, 503):
                    candidates = [c for c in candidates if c != name]
                    if candidates:
                        self.metrics.increment("failovers")
                        continue
                raise
            self.journal.record_placed(job_key, record["id"], name, payload)
            self.metrics.increment("jobs_placed")
            self.logger.event("job_placed", job_key=job_key,
                              job_id=record["id"], replica=name,
                              request_id=request_id)
            return dict(record, replica=name)

    def _locate(self, job_id: str) -> Optional[Placement]:
        return self.journal.by_job_id(job_id)

    def _job_call(self, job_id: str, call) -> dict:
        """Run ``call(client)`` against the replica owning *job_id*.

        Placed jobs go straight to their placement; unknown IDs (jobs
        submitted behind the router's back, or placements lost with no
        state dir) fall back to asking every replica in turn.
        """
        placement = self._locate(job_id)
        if placement is not None:
            try:
                record = call(self.replicas[placement.replica].client)
            except ServeError as error:
                if getattr(error, "status", None) is None:
                    # The owning replica is unreachable; if it is dying
                    # the job will migrate — tell the caller to retry.
                    raise OverloadedError(
                        f"replica {placement.replica} is unreachable; "
                        f"job {job_id} may be migrating ({error})"
                    )
                raise
            if isinstance(record, dict) and "state" in record:
                self.journal.record_state(placement.job_key, record["state"])
            return dict(record, replica=placement.replica)
        last_error: Optional[ServeError] = None
        for name in sorted(self.replicas):
            try:
                return dict(call(self.replicas[name].client), replica=name)
            except ServeError as error:
                last_error = error
        raise last_error if last_error is not None else ServeError(
            f"job {job_id} not found on any replica")

    def job(self, job_id: str) -> dict:
        return self._job_call(job_id, lambda client: client.job(job_id))

    def job_events(self, job_id: str, since: int = 0) -> dict:
        return self._job_call(
            job_id, lambda client: client.job_events(job_id, since=since))

    def cancel_job(self, job_id: str, *,
                   request_id: Optional[str] = None) -> dict:
        return self._job_call(
            job_id,
            lambda client: client.cancel_job(job_id, request_id=request_id))

    def jobs(self) -> List[dict]:
        """Every job on every reachable replica, tagged with its host."""
        merged: List[dict] = []
        for name in sorted(self.replicas):
            try:
                records = self.replicas[name].client.jobs()
            except ServeError:
                continue
            merged.extend(dict(record, replica=name) for record in records)
        return merged

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------

    @staticmethod
    def _journal_states(jobs_dir: str) -> Dict[str, str]:
        """Final job states from a (dead) replica's on-disk journal.

        Reads the JSONL directly — the owning process is gone, and this
        is exactly the durable record it left behind.  A torn final
        line is skipped, like the store's own replay.
        """
        states: Dict[str, str] = {}
        path = os.path.join(jobs_dir, JOURNAL_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError:
            return states
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("type") == "submitted":
                states.setdefault(entry.get("id"), JobState.PENDING)
            elif entry.get("type") == "state":
                states[entry.get("id")] = entry.get("state")
        return states

    def _migrate_from(self, dead: str) -> None:
        """Resettle every live job placed on a now-DOWN replica."""
        with self._migration_lock:
            orphans = self.journal.live_on(dead)
            if not orphans:
                return
            dead_dir = self.replicas[dead].jobs_dir
            states = self._journal_states(dead_dir) if dead_dir else {}
            pending: List[Placement] = []
            for placement in orphans:
                state = states.get(placement.job_id)
                if state in JobState.TERMINAL:
                    # Finished before the crash: nothing to migrate.
                    self.journal.record_state(placement.job_key, state)
                    continue
                pending.append(placement)
            if not pending:
                return
            survivors = [name for name in self.health.routable()
                         if name != dead]
            try:
                plan = self.placer.plan_migration(
                    [placement.job_key for placement in pending], survivors)
            except ClusterError as error:
                self.metrics.increment("migration_failures", len(pending))
                self.logger.event("migration_failed", replica=dead,
                                  jobs=len(pending), error=str(error))
                return
            for placement in pending:
                target = plan.get(placement.job_key)
                if target is None:
                    self.metrics.increment("migration_failures")
                    self.logger.event("migration_failed", replica=dead,
                                      job_key=placement.job_key,
                                      job_id=placement.job_id,
                                      error="no surviving target")
                    continue
                try:
                    self._migrate_one(placement, dead_dir, target)
                except (ReproError, OSError) as error:
                    self.metrics.increment("migration_failures")
                    self.logger.event("migration_failed", replica=dead,
                                      job_key=placement.job_key,
                                      job_id=placement.job_id, target=target,
                                      error=str(error))
                else:
                    self.metrics.increment("jobs_migrated")
                    self.logger.event("job_migrated", job_key=placement.job_key,
                                      job_id=placement.job_id,
                                      source=dead, target=target)

    def _migrate_one(self, placement: Placement, dead_dir: Optional[str],
                     target: str) -> None:
        """Move one job: stage its checkpoint, resubmit, re-journal.

        The job ID is derived from the job key
        (:func:`repro.jobs.model.derive_job_id`), so the checkpoint
        file staged under the *same* ID is exactly what the survivor's
        runner loads — the migrated run resumes mid-flight and its
        history stays byte-identical to an uninterrupted run.
        """
        replica = self.replicas[target]
        if dead_dir and replica.jobs_dir:
            source = os.path.join(dead_dir, CHECKPOINT_DIR,
                                  f"{placement.job_id}.json")
            if os.path.exists(source):
                target_dir = os.path.join(replica.jobs_dir, CHECKPOINT_DIR)
                os.makedirs(target_dir, exist_ok=True)
                destination = os.path.join(target_dir,
                                           f"{placement.job_id}.json")
                with open(source, "rb") as src:
                    payload = src.read()
                with open(destination + ".tmp", "wb") as dst:
                    dst.write(payload)
                    dst.flush()
                    os.fsync(dst.fileno())
                os.replace(destination + ".tmp", destination)
                self.metrics.increment("checkpoints_staged")
        record = replica.client.submit_job(placement.spec,
                                           job_key=placement.job_key)
        if record["id"] != placement.job_id:  # pragma: no cover - defensive
            raise ClusterError(
                f"migrated job changed identity: {placement.job_id} "
                f"-> {record['id']}"
            )
        self.journal.record_migrated(placement.job_key, target)

    # ------------------------------------------------------------------
    # Distributed-trace stitching
    # ------------------------------------------------------------------

    def _pull_replica_trace(self, name: str,
                            trace_id: str) -> Optional[List[Span]]:
        """Fetch and revive the replica's half of *trace_id*, or None."""
        self.metrics.increment("trace_pulls")
        try:
            pulled = self.replicas[name].client.debug_trace_by_id(trace_id)
        except ServeError:
            self.metrics.increment("trace_pull_failures")
            return None
        spans = []
        for entry in pulled.get("trace", {}).get("spans", []):
            spans.append(Span(name=str(entry.get("name", "?")),
                              start=float(entry.get("start", 0.0)),
                              end=(None if entry.get("end") is None
                                   else float(entry["end"])),
                              parent=entry.get("parent")))
        return spans or None

    def stitched_trace(self, trace_id: Optional[str] = None) -> Optional[dict]:
        """One distributed trace as a JSON-ready multi-hop document.

        *trace_id* defaults to the most recently completed router
        trace.  The router's own span tree is the anchor; the serving
        replica's tree is pulled live over ``GET /debug/trace/<id>``
        and re-anchored into the successful ``proxy_attempt`` span's
        bounds (:func:`repro.obs.context.anchor_remote_spans`), so
        every hop shares the router's monotonic clock.  Worker-shard
        spans (``*_shard``) become their own hop.  Each hop carries the
        W/A/L/O reduction with ``O = W - L`` by construction.
        """
        if trace_id is None:
            recent = self.tracer.recent(1)
            if not recent:
                return None
            trace = recent[-1]
        else:
            trace = self.tracer.find(trace_id)
        if trace is None:
            return None
        origin = trace.root.start
        hops = [{
            "hop": "router",
            "spans": [self._span_dict(span, origin)
                      for span in trace.spans],
            "walo": self._hop_walo(trace.spans),
        }]
        replica_name = trace.annotations.get("replica")
        proxy_index = trace.annotations.get("proxy_span")
        anchored: List[Span] = []
        if (replica_name in self.replicas and isinstance(proxy_index, int)
                and 0 < proxy_index < len(trace.spans)):
            proxy = trace.spans[proxy_index]
            remote = self._pull_replica_trace(replica_name, trace.trace_id)
            if remote and proxy.end is not None:
                anchored = anchor_remote_spans(remote, proxy.start, proxy.end)
                self.metrics.increment("traces_stitched")
        if anchored:
            shard = [span for span in anchored[1:]
                     if span.name.endswith("_shard")]
            local = [span for span in anchored
                     if not span.name.endswith("_shard")]
            hops.append({
                "hop": f"replica {replica_name}",
                "spans": [self._span_dict(span, origin) for span in local],
                "walo": self._hop_walo(local),
            })
            if shard:
                hops.append({
                    "hop": f"workers {replica_name}",
                    "spans": [self._span_dict(span, origin)
                              for span in shard],
                    "walo": self._hop_walo(shard),
                })
        return {
            "trace_id": trace.trace_id,
            "outcome": trace.outcome,
            "annotations": dict(trace.annotations),
            "stitched": bool(anchored),
            "hops": hops,
        }

    @staticmethod
    def _span_dict(span: Span, origin: float) -> dict:
        """A span re-based to the trace origin (JSON-ready)."""
        return {
            "name": span.name,
            "start": None if span.start is None else span.start - origin,
            "end": None if span.end is None else span.end - origin,
            "duration": span.duration,
            "parent": span.parent,
        }

    @staticmethod
    def _hop_walo(spans: Sequence[Span]) -> dict:
        """The W/A/L/O identity for one hop's span list (root first)."""
        if not spans:
            return {"wall_seconds": 0.0, "assembly_seconds": 0.0,
                    "solve_seconds": 0.0, "overhead_seconds": 0.0}
        wall = spans[0].duration
        assembly = sum(span.duration for span in spans[1:]
                       if span.name.startswith("assembly"))
        solve = sum(span.duration for span in spans[1:]
                    if span.name == SOLVE_STAGE)
        return {
            "wall_seconds": wall,
            "assembly_seconds": assembly,
            "solve_seconds": solve,
            "overhead_seconds": wall - solve,
        }

    def render_stitched(self, trace_id: Optional[str] = None, *,
                        width: int = 78) -> str:
        """ASCII Gantt of one stitched trace, one row per hop."""
        document = self.stitched_trace(trace_id)
        if document is None:
            return ("no stitched trace available yet; "
                    "send some sampled traffic first")
        makespan = max(
            [0.0] + [span["end"] for hop in document["hops"]
                     for span in hop["spans"] if span["end"] is not None]
        )
        rows = []
        for hop in document["hops"]:
            segments = [
                GanttSegment(start=span["start"], end=span["end"],
                             kind=span["name"], label=span["name"])
                for span in hop["spans"][1:]
                if span["end"] is not None and span["end"] > span["start"]
            ]
            # The worker hop has no root span of its own: every span is
            # a shard segment.
            if hop["hop"].startswith("workers"):
                segments = [
                    GanttSegment(start=span["start"], end=span["end"],
                                 kind=span["name"], label=span["name"])
                    for span in hop["spans"]
                    if span["end"] is not None and span["end"] > span["start"]
                ]
            rows.append(GanttRow(resource=hop["hop"], segments=segments))
        chart = GanttTrace(
            name=f"trace {document['trace_id'][:12]} ({document['outcome']})",
            rows=rows, makespan=makespan,
        )
        return render_ascii(chart, width=width, glyphs=CLUSTER_GLYPHS,
                            titles=CLUSTER_TITLES)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        states = self.health.states()
        routable = self.health.routable()
        return {
            "status": "ok" if routable else "degraded",
            "replicas": states,
            "routable": len(routable),
        }

    def metrics_document(self) -> dict:
        """The three-floor cluster ``/metrics`` document."""
        router = dict(self.metrics.snapshot())
        router["health"] = self.health.snapshot()
        router["slo"] = self.slo.snapshot()
        router["stages"] = self.tracer.stages_snapshot()
        router["stages_hist_ms"] = self.tracer.stage_histograms.snapshot()
        placements = self.journal.list()
        router["placements"] = {
            "total": len(placements),
            "live": sum(1 for placement in placements if placement.live),
        }
        if self.autotuner is not None:
            router["autotune"] = self.autotuner.snapshot()
        snapshots: Dict[str, Optional[dict]] = {}
        for name in sorted(self.replicas):
            try:
                snapshots[name] = self.replicas[name].client.metrics()
            except ServeError:
                snapshots[name] = None
        return aggregate_cluster(router, snapshots)

    def status(self) -> dict:
        """The ``cluster status`` document: topology + placements."""
        states = self.health.states()
        return {
            "ring": {"vnodes": self.ring.vnodes,
                     "replicas": len(self.replicas),
                     "weights": {name: round(share, 4)
                                 for name, share in sorted(self._weights.items())}},
            "replicas": {
                name: {
                    "url": replica.base_url,
                    "state": states.get(name),
                    "jobs_dir": replica.jobs_dir,
                    "live_jobs": len(self.journal.live_on(name)),
                }
                for name, replica in sorted(self.replicas.items())
            },
            "placements": [placement.to_dict()
                           for placement in self.journal.list()],
        }
