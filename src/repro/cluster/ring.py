"""Consistent-hash ring with virtual nodes for replica routing.

The ring maps request cache keys (the same
:meth:`repro.core.api.AnalyzeRequest.cache_key` digest the per-replica
LRU in :mod:`repro.serve.cache` is keyed on) to replica names, with two
properties the cluster router depends on:

* **Balance** — each replica owns many pseudo-randomly scattered arc
  segments (*virtual nodes*), so keys spread close to uniformly even
  with a handful of replicas.  The spread tightens as ``vnodes`` grows.
* **Minimal movement** — adding or removing one replica only reassigns
  the keys on the arcs that replica owned; every other key keeps its
  replica, which is what keeps the surviving replicas' caches hot
  through membership changes.

Hashing is :func:`hashlib.sha256` over deterministic byte strings, so
every router process (and every test run) computes the identical ring
for the same membership — a property test in
``tests/test_cluster_ring.py`` pins both guarantees.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ClusterError

#: Virtual nodes per replica.  64 keeps the largest/smallest ownership
#: ratio within a few tens of percent for small clusters while the
#: ring stays tiny (a few hundred entries for a handful of replicas).
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """A deterministic 64-bit ring position for *data*."""
    return int.from_bytes(hashlib.sha256(data.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    Parameters
    ----------
    nodes:
        Initial membership (names must be unique and non-empty).
    vnodes:
        Virtual nodes per member; more vnodes = better balance,
        linearly larger ring.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if int(vnodes) < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current members, sorted by name."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str, *, weight: float = 1.0) -> None:
        """Add *node* (its vnodes join the ring).

        ``weight`` scales the node's vnode count relative to the ring
        default — a node of weight 2.0 owns roughly twice the arc of a
        weight-1.0 node, which is how the cluster autotuner shifts
        traffic toward faster replicas without abandoning consistent
        hashing (vnode labels stay ``node#index``, so a reweight only
        moves the keys on the arcs actually gained or lost).
        """
        if not isinstance(node, str) or not node:
            raise ClusterError(f"ring node must be a non-empty string, "
                               f"got {node!r}")
        if node in self._nodes:
            raise ClusterError(f"ring already contains node {node!r}")
        if not weight > 0.0:
            raise ClusterError(f"ring weight must be positive, got {weight!r}")
        points = []
        for index in range(max(1, round(self.vnodes * float(weight)))):
            point = _point(f"{node}#{index}")
            # sha256 collisions across distinct vnode labels are not a
            # practical concern, but a deterministic tie-break keeps
            # the ring well-defined if one ever happened: ties sort by
            # node name via the (point, node) tuple ordering.
            position = bisect.bisect_left(self._points, (point, node))
            self._points.insert(position, (point, node))
            self._keys.insert(position, point)
            points.append(point)
        self._nodes[node] = points

    def remove(self, node: str) -> None:
        """Remove *node*; only its arcs reassign to the successors."""
        if node not in self._nodes:
            raise ClusterError(f"ring does not contain node {node!r}")
        del self._nodes[node]
        kept = [(point, name) for point, name in self._points if name != node]
        self._points = kept
        self._keys = [point for point, _name in kept]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The node owning *key* (the first vnode clockwise of it)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """The first *n* **distinct** nodes clockwise of *key*.

        This is the failover order: the owner first, then the replicas
        that would inherit the key if the owner left the ring — so a
        router walking this list on errors lands keys exactly where a
        membership change would have placed them, preserving cache
        locality through failures.
        """
        if not self._nodes:
            raise ClusterError("ring is empty: no replica to route to")
        want = len(self._nodes) if n is None else min(int(n), len(self._nodes))
        if want < 1:
            raise ClusterError(f"preference size must be >= 1, got {n}")
        start = bisect.bisect_right(self._keys, _point(key))
        order: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            _point_value, node = self._points[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == want:
                    break
        return order

    def ownership(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of *keys* each node owns (every member present)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
