"""Router counters and cluster-wide metrics aggregation.

The router's ``/metrics`` document has three floors:

``router``
    The router's own counters — requests routed, failovers taken, jobs
    placed and migrated — plus health-probe accounting from the
    :class:`~repro.cluster.health.HealthManager`.
``cluster``
    One *merged* snapshot over every reachable replica, so a dashboard
    can treat N replicas as one logical service: counters sum,
    gauges sum where extensive (queue depth, in-flight) and the
    latency block merges conservatively (counts sum, means weight by
    count, quantiles and max take the worst replica).
``replicas``
    The raw per-replica snapshot (or an ``unreachable`` marker), for
    drilling into a single node — this is also what the cache-locality
    e2e test reads to prove each key's hits land on one replica.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs.histogram import is_histogram_snapshot, merge_histogram_snapshots
from repro.obs.slo import is_slo_snapshot, merge_slo_snapshots

#: Leaves of a replica snapshot that describe identity, not load —
#: meaningless to sum, so they are dropped from the merged view.
_IDENTITY_KEYS = frozenset({"started_at", "snapshot_seq", "slots"})

#: Latency-block stats that merge by "worst replica wins".
_WORST_WINS = frozenset({"p50", "p90", "p99", "max"})


class RouterMetrics:
    """Thread-safe counters for one :class:`~repro.cluster.ClusterRouter`.

    All counters are monotonic; ``snapshot()`` returns a JSON-ready
    dict that slots in as the ``router`` section of ``/metrics``.
    """

    COUNTERS = (
        "routed",            # single /analyze requests proxied
        "routed_batch",      # /analyze_batch requests proxied
        "fanout_requests",   # batch items fanned out to replicas
        "failovers",         # requests retried on the next ring node
        "exhausted",         # requests that ran out of candidates
        "proxy_errors",      # non-failover upstream errors propagated
        "jobs_placed",       # fresh job placements
        "jobs_migrated",     # jobs resubmitted after a replica death
        "migration_failures",  # orphans we could not resettle
        "checkpoints_staged",  # checkpoint files copied to survivors
        "health_transitions",  # UP<->DOWN edges observed
        "trace_pulls",         # replica /debug/trace/<id> fetches tried
        "trace_pull_failures",  # pulls that errored or missed the ring
        "traces_stitched",     # multi-hop traces assembled successfully
        "ring_reweights",      # weighted ring rebuilds applied by autotune
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.COUNTERS}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount  # KeyError = programming error

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


def merge_snapshots(snapshots: Dict[str, Optional[dict]]) -> dict:
    """Merge per-replica ``/metrics`` snapshots into one cluster view.

    *snapshots* maps replica name to its snapshot dict, or ``None``
    for replicas that could not be scraped (they simply contribute
    nothing — the merged view describes what is reachable *now*).
    """
    merged: dict = {}
    for snapshot in snapshots.values():
        if snapshot:
            _merge_into(merged, snapshot)
    _scrub_bookkeeping(merged)
    return merged


def _copy_tree(value):
    """Deep copy of a JSON-shaped value (dicts/lists/scalars)."""
    if isinstance(value, dict):
        return {key: _copy_tree(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_tree(item) for item in value]
    return value


def _scrub_bookkeeping(node: dict) -> None:
    node.pop("_mean_weight", None)
    for value in node.values():
        if isinstance(value, dict):
            _scrub_bookkeeping(value)


def _merge_into(target: dict, source: dict, *, in_latency: bool = False) -> None:
    for key, value in source.items():
        if key in _IDENTITY_KEYS:
            continue
        if isinstance(value, dict):
            if is_histogram_snapshot(value):
                # Bucket ladders match across replicas (same defaults),
                # so histogram merge is exact: counts sum per ``le``,
                # exemplars keep the most recent observation.
                if key in target and is_histogram_snapshot(target[key]):
                    merge_histogram_snapshots(target[key], value)
                else:
                    target[key] = _copy_tree(value)
                continue
            if is_slo_snapshot(value):
                # Counts sum, rates are recomputed from merged counts,
                # and the merged objective keeps the *stricter* of the
                # two (min latency objective, max availability target).
                if key in target and is_slo_snapshot(target[key]):
                    merge_slo_snapshots(target[key], value)
                else:
                    target[key] = _copy_tree(value)
                continue
            node = target.setdefault(key, {})
            _merge_into(node, value, in_latency=(key == "latency_ms"))
        elif isinstance(value, bool) or value is None:
            continue
        elif isinstance(value, (int, float)):
            if in_latency and key in _WORST_WINS:
                target[key] = max(target.get(key, value), value)
            elif in_latency and key == "mean":
                # Weighted by this source's count (merged after "count"
                # only if dict ordering holds; recompute defensively).
                count = float(source.get("count") or 0)
                prior_count = float(target.get("_mean_weight", 0.0))
                prior_mean = float(target.get("mean", 0.0))
                total = prior_count + count
                if total > 0:
                    target["mean"] = ((prior_mean * prior_count
                                       + float(value) * count) / total)
                target["_mean_weight"] = total
            else:
                target[key] = target.get(key, 0) + value
        # strings (states, ids) don't aggregate: dropped by design.


def aggregate_cluster(router: dict,
                      replicas: Dict[str, Optional[dict]]) -> dict:
    """Build the full cluster ``/metrics`` document.

    ``replicas`` values of ``None`` mark unreachable nodes; they are
    reported as such rather than silently omitted, so a scrape makes
    partial visibility explicit.
    """
    return {
        "router": router,
        "cluster": merge_snapshots(replicas),
        "replicas": {
            name: (snapshot if snapshot is not None
                   else {"unreachable": True})
            for name, snapshot in replicas.items()
        },
    }
