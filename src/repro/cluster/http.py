"""Stdlib-only HTTP front end for the cluster router.

The router speaks the *same wire API* as a single ``repro serve``
process — ``/analyze``, ``/analyze_batch``, ``/jobs``, ``/healthz``,
``/metrics`` — so an existing :class:`~repro.serve.client.ServeClient`
can point at a router instead of a replica without changing a line.
Cluster-specific routes:

* ``GET /cluster/status`` — topology, per-replica health, placements.
* ``POST /cluster/drain`` — ``{"replica": "host:port", "draining":
  bool}`` toggles the operator draining flag (no new work, no
  migration).
* ``GET /debug/trace`` — the *stitched* multi-hop Gantt of one
  distributed trace (router spans plus the serving replica's span
  tree, re-anchored onto the router's clock); ``?format=json`` for
  the document, ``?trace_id=...`` to pick a specific trace.

``/analyze`` and ``/analyze_batch`` honour an incoming
``X-Repro-Trace`` header (trace id, parent span, sampling flag) and
propagate it downstream, so a client-opened trace spans the whole
cluster.

Error mapping mirrors :mod:`repro.serve.http`, with one addition: a
replica rejection proxied through the router keeps its *original*
status code (the ``status`` attribute on
:class:`~repro.errors.ServeError`), so a 404 from a replica does not
mutate into a router 400 along the way.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.cluster.router import ClusterRouter
from repro.core.api import canonical_json, validate_deadline_ms
from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ServeError,
)
from repro.obs.context import TRACE_HEADER, maybe_parse_trace_header
from repro.obs.ids import REQUEST_ID_HEADER, coerce_request_id
from repro.obs.prometheus import render_prometheus
from repro.serve.http import DEADLINE_HEADER, MAX_BODY_BYTES


class ClusterHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ClusterRouter`."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], router: ClusterRouter, *,
                 request_timeout: float = 60.0) -> None:
        super().__init__(address, _ClusterHandler)
        self.router = router
        self.request_timeout = request_timeout
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with an ephemeral ``port=0`` bind)."""
        return self.server_address[1]

    def start_background(self) -> "ClusterHTTPServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ServeError("cluster server is already running")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-cluster-http", daemon=True
        )
        self._thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block on the background acceptor thread; True once it exits."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting connections and join the acceptor thread.

        Same pre-start/idempotency contract as the serve server: with
        no acceptor thread running only the socket needs closing.
        """
        if self._thread is None:
            self.server_close()
            return
        self.shutdown()
        self.server_close()
        self._thread.join(timeout)
        self._thread = None


def start_cluster_server(router: ClusterRouter, *, host: str = "127.0.0.1",
                         port: int = 0,
                         request_timeout: float = 60.0) -> ClusterHTTPServer:
    """Bind and start a background router server (``port=0`` = ephemeral)."""
    server = ClusterHTTPServer((host, port), router,
                               request_timeout=request_timeout)
    return server.start_background()


class _ClusterHandler(BaseHTTPRequestHandler):
    server_version = "repro-cluster/1.0"
    protocol_version = "HTTP/1.1"
    timeout = 120.0  # socket inactivity guard for keep-alive connections

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        parts = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parts.query)
        route = parts.path
        if route == "/healthz":
            self._send_json(200, self.server.router.healthz())
        elif route == "/metrics":
            self._handle_metrics(query)
        elif route == "/metrics/prometheus":
            self._handle_metrics({"format": ["prometheus"]})
        elif route == "/cluster/status":
            self._send_json(200, self.server.router.status())
        elif route == "/debug/trace":
            self._handle_debug_trace(query)
        elif route == "/debug/autotune":
            self._handle_debug_autotune()
        elif route == "/jobs" or route.startswith("/jobs/"):
            self._handle_jobs_get(route, query)
        else:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"})

    def do_POST(self) -> None:
        route = urllib.parse.urlsplit(self.path).path
        if route == "/analyze":
            self._handle_analyze()
        elif route == "/analyze_batch":
            self._handle_analyze_batch()
        elif route == "/jobs":
            self._handle_jobs_submit()
        elif route.startswith("/jobs/") and route.endswith("/cancel"):
            self._handle_job_cancel(route)
        elif route == "/cluster/drain":
            self._handle_drain()
        else:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"})

    def _handle_metrics(self, query: dict) -> None:
        document = self.server.router.metrics_document()
        fmt = query.get("format", ["json"])[-1]
        if fmt == "prometheus":
            body = render_prometheus(document).encode("utf-8")
            self._send_body(200, body,
                            content_type="text/plain; version=0.0.4; charset=utf-8")
        elif fmt == "json":
            self._send_json(200, document)
        else:
            self._send_json(400, {
                "error": f"unknown metrics format {fmt!r} "
                         "(expected 'json' or 'prometheus')",
                "type": "ServeError",
            })

    def _handle_debug_autotune(self) -> None:
        """The weight tuner's recommendation and decision journal."""
        autotuner = self.server.router.autotuner
        if autotuner is None:
            self._send_json(404, {"error": "autotuning is not enabled "
                                           "(start with --autotune)",
                                  "type": "NotFound"})
            return
        self._send_json(200, autotuner.debug_document())

    def _handle_debug_trace(self, query: dict) -> None:
        """The stitched distributed trace (ASCII Gantt or JSON)."""
        router = self.server.router
        trace_id = query.get("trace_id", [None])[-1]
        fmt = query.get("format", ["ascii"])[-1]
        try:
            if fmt == "json":
                document = router.stitched_trace(trace_id)
                if document is None:
                    self._send_json(404, {
                        "error": "no matching stitched trace",
                        "type": "TraceNotFound",
                    })
                    return
                self._send_json(200, document)
            elif fmt == "ascii":
                body = router.render_stitched(trace_id)
                self._send_body(200, body.encode("utf-8"),
                                content_type="text/plain; charset=utf-8")
            else:
                self._send_json(400, {
                    "error": f"unknown trace format {fmt!r} "
                             "(expected 'ascii' or 'json')",
                    "type": "ServeError",
                })
        except ReproError as error:
            self._send_error(error, None)

    # ------------------------------------------------------------------
    # Analyze proxying
    # ------------------------------------------------------------------

    def _handle_analyze(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        request_id = None
        try:
            request_id = self._header_request_id()
            trace_context = maybe_parse_trace_header(
                self.headers.get(TRACE_HEADER))
            raw = self.server.router.analyze_raw(
                payload, deadline_ms=self._header_deadline_ms(),
                request_id=request_id, trace_context=trace_context)
        except ReproError as error:
            self._send_error(error, request_id)
            return
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, _error_body(error, request_id),
                            request_id=request_id)
            return
        # The replica's body is already the canonical record: relay the
        # exact bytes, preserving the byte-identity contract end to end.
        self._send_body(200, raw.encode("utf-8"), request_id=request_id)

    def _handle_analyze_batch(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            self._send_json(400, {
                "error": "analyze_batch expects {\"requests\": [...]}",
                "type": "ServeError",
            })
            return
        try:
            request_id = self._header_request_id()
            results = self.server.router.analyze_batch(
                payload["requests"], deadline_ms=self._header_deadline_ms(),
                request_id=request_id)
        except ReproError as error:
            self._send_error(error, None)
            return
        self._send_json(200, {"request_id": request_id, "results": results},
                        request_id=request_id)

    # ------------------------------------------------------------------
    # Jobs proxying
    # ------------------------------------------------------------------

    def _handle_jobs_get(self, route: str, query: dict) -> None:
        request_id = self._header_request_id()
        router = self.server.router
        parts = [part for part in route.split("/") if part]
        try:
            if parts == ["jobs"]:
                self._send_json(200, {"jobs": router.jobs()},
                                request_id=request_id)
            elif len(parts) == 2:
                self._send_json(200, router.job(parts[1]),
                                request_id=request_id)
            elif len(parts) == 3 and parts[2] == "events":
                try:
                    since = int(query.get("since", [0])[-1])
                except ValueError:
                    raise ServeError("since must be an integer")
                self._send_json(200, router.job_events(parts[1], since=since),
                                request_id=request_id)
            else:
                self._send_json(404, {"error": f"unknown path {self.path}",
                                      "type": "NotFound"},
                                request_id=request_id)
        except ReproError as error:
            self._send_error(error, request_id)

    def _handle_jobs_submit(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        request_id = self._header_request_id()
        try:
            record = self.server.router.submit_job(payload,
                                                   request_id=request_id)
        except ReproError as error:
            self._send_error(error, request_id)
            return
        self._send_json(200, record, request_id=request_id)

    def _handle_job_cancel(self, route: str) -> None:
        self._drain_body()
        request_id = self._header_request_id()
        parts = [part for part in route.split("/") if part]
        if len(parts) != 3:
            self._send_json(404, {"error": f"unknown path {self.path}",
                                  "type": "NotFound"}, request_id=request_id)
            return
        try:
            record = self.server.router.cancel_job(parts[1],
                                                   request_id=request_id)
        except ReproError as error:
            self._send_error(error, request_id)
            return
        self._send_json(200, record, request_id=request_id)

    # ------------------------------------------------------------------
    # Cluster control
    # ------------------------------------------------------------------

    def _handle_drain(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        if not isinstance(payload, dict) or "replica" not in payload:
            self._send_json(400, {
                "error": "drain expects {\"replica\": \"host:port\", "
                         "\"draining\": true|false}",
                "type": "ClusterError",
            })
            return
        try:
            state = self.server.router.health.set_draining(
                str(payload["replica"]), bool(payload.get("draining", True)))
        except ClusterError as error:
            self._send_json(400, _error_body(error))
            return
        self._send_json(200, {"replica": payload["replica"], "state": state})

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _header_deadline_ms(self) -> Optional[float]:
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        return validate_deadline_ms(raw)

    def _header_request_id(self) -> str:
        return coerce_request_id(self.headers.get(REQUEST_ID_HEADER))

    def _send_error(self, error: ReproError,
                    request_id: Optional[str]) -> None:
        """Map a router-side error onto the right HTTP status.

        A proxied replica rejection carries its upstream status on the
        error's ``status`` attribute and keeps it; router-origin errors
        map by type like the serve front end.
        """
        status = getattr(error, "status", None)
        if not isinstance(status, int):
            if isinstance(error, DeadlineExceededError):
                status = 504
            elif isinstance(error, OverloadedError):
                status = 503
            else:
                status = 400
        self._send_json(status, _error_body(error, request_id),
                        request_id=request_id)

    def _drain_body(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized request body",
                                  "type": "ServeError"})
            return None
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}",
                                  "type": "ServeError"})
            return None

    def _send_json(self, status: int, payload: dict, *,
                   request_id: Optional[str] = None) -> None:
        self._send_body(status, canonical_json(payload).encode("utf-8"),
                        request_id=request_id)

    def _send_body(self, status: int, body: bytes, *,
                   content_type: str = "application/json",
                   request_id: Optional[str] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header(REQUEST_ID_HEADER, request_id)
        self.end_headers()
        self.wfile.write(body)


def _error_body(error: BaseException,
                request_id: Optional[str] = None) -> dict:
    body = {"error": str(error), "type": type(error).__name__}
    if request_id is not None:
        body["request_id"] = request_id
    return body
