"""Benchmark: the jobs subsystem's batched generation evaluation.

Two sections, one JSON artifact (``BENCH_jobs.json``):

* **Generation evaluation** — the same GA population evaluated by the
  serial per-genome loop (one ``lu_factor``/``lu_solve`` pair each)
  and by :class:`~repro.jobs.BatchedGenerationEvaluator`, which stacks
  every feasible candidate of the generation into one batched LU
  through the shared request path.  This is the paper's argument
  applied to the optimizer's inner loop: the GA offers a naturally
  batched workload (population evaluation), and the batched kernels
  collapse it into a handful of stacked solves.  The two paths are
  asserted bit-identical before any timing is reported.
* **Checkpoint overhead** — one job driven through the
  :class:`~repro.jobs.JobRunner` with a checkpoint after every
  generation versus one that never checkpoints mid-run, so the
  artifact records what the durability guarantee costs per generation.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_jobs.py [--smoke]
        [--output BENCH_jobs.json]
"""

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.jobs import BatchedGenerationEvaluator, JobRunner, JobSpec, JobStore
from repro.optimize import FitnessEvaluator, GenomeLayout

N_PANELS = 120
POPULATION = 64
REPEATS = 3
SMOKE_N_PANELS = 60
SMOKE_POPULATION = 16
SMOKE_REPEATS = 2

#: Generations of the checkpoint-overhead job.
RUNNER_GENERATIONS = 4
SMOKE_RUNNER_GENERATIONS = 2

#: Default artifact filename (see ``conftest.write_bench_json``).
OUTPUT_FILENAME = "BENCH_jobs.json"


def make_population(evaluator, size, seed=20160704):
    rng = np.random.default_rng(seed)
    return [evaluator.layout.random_genome(rng) for _ in range(size)]


def _identical(serial_records, batched_records):
    for serial, batched in zip(serial_records, batched_records):
        for field in ("fitness", "cl", "cd"):
            left, right = getattr(serial, field), getattr(batched, field)
            if left is None or right is None:
                assert left is right
            else:
                assert np.float64(left).tobytes() == np.float64(right).tobytes()
        assert serial.failure == batched.failure


def generation_comparison(*, smoke=False):
    """Serial vs batched evaluation of one GA generation."""
    n_panels = SMOKE_N_PANELS if smoke else N_PANELS
    size = SMOKE_POPULATION if smoke else POPULATION
    repeats = SMOKE_REPEATS if smoke else REPEATS
    evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                 n_panels=n_panels, reynolds=4e5)
    population = make_population(evaluator, size)
    batched = BatchedGenerationEvaluator(evaluator)
    assert batched.batchable

    serial_records = [evaluator.evaluate(genome) for genome in population]
    batched_records = batched(population)
    _identical(serial_records, batched_records)

    def best_of(run):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            times.append(time.perf_counter() - start)
        return min(times)

    serial_s = best_of(lambda: [evaluator.evaluate(genome)
                                for genome in population])
    batched_s = best_of(lambda: batched(population))
    return {
        "n_panels": n_panels,
        "population": size,
        "repeats": repeats,
        "serial_s": round(serial_s, 6),
        "batched_s": round(batched_s, 6),
        "serial_genomes_per_s": round(size / serial_s, 1),
        "batched_genomes_per_s": round(size / batched_s, 1),
        "speedup": round(serial_s / batched_s, 3),
    }


def _run_job(jobs_dir, spec_dict):
    store = JobStore(jobs_dir)
    runner = JobRunner(store).start()
    record = runner.submit(JobSpec.from_dict(spec_dict))
    start = time.perf_counter()
    while not store.get(record.id).terminal:
        time.sleep(0.005)
    wall = time.perf_counter() - start
    final = store.get(record.id)
    assert final.state == "DONE", final.error
    checkpoints = store.metrics.snapshot()["checkpoints"]
    runner.close()
    store.close()
    return wall, checkpoints


def checkpoint_overhead(*, smoke=False):
    """One job checkpointing every generation vs never mid-run."""
    generations = SMOKE_RUNNER_GENERATIONS if smoke else RUNNER_GENERATIONS
    population = SMOKE_POPULATION if smoke else POPULATION
    n_panels = SMOKE_N_PANELS if smoke else N_PANELS
    spec = {"seed": 7,
            "ga": {"population_size": population, "generations": generations},
            "fitness": {"n_panels": n_panels}}
    rows = []
    for label, cadence in (("every_generation", 1),
                           ("never_mid_run", generations)):
        with tempfile.TemporaryDirectory() as jobs_dir:
            wall, checkpoints = _run_job(
                jobs_dir, dict(spec, checkpoint_every=cadence)
            )
        rows.append({"cadence": label, "checkpoint_every": cadence,
                     "wall_s": round(wall, 4),
                     "checkpoints_written": checkpoints,
                     "generations": generations})
    return {"generations": generations, "population": population,
            "rows": rows}


def check_rows(generation, overhead):
    assert generation["batched_s"] > 0.0 and generation["serial_s"] > 0.0
    every, never = overhead["rows"]
    assert every["checkpoints_written"] == overhead["generations"] - 1
    assert never["checkpoints_written"] == 0


def _artifact(generation, overhead, *, smoke):
    return {"smoke": smoke, "generation_evaluation": generation,
            "checkpoint_overhead": overhead}


def test_jobs_generation_throughput(benchmark):
    from conftest import run_once, write_bench_json

    generation = run_once(benchmark, lambda: generation_comparison(smoke=False))
    overhead = checkpoint_overhead(smoke=False)
    print("\n" + json.dumps(generation, indent=2))
    print(json.dumps(overhead, indent=2))
    check_rows(generation, overhead)
    path = write_bench_json(OUTPUT_FILENAME,
                            _artifact(generation, overhead, smoke=False))
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default=OUTPUT_FILENAME, metavar="FILE",
                        help="artifact filename (relative paths land in "
                             "$BENCH_OUTPUT_DIR when set; default "
                             f"{OUTPUT_FILENAME})")
    arguments = parser.parse_args()
    generation_rows = generation_comparison(smoke=arguments.smoke)
    overhead_rows = checkpoint_overhead(smoke=arguments.smoke)
    print(json.dumps(generation_rows, indent=2))
    print(json.dumps(overhead_rows, indent=2))
    check_rows(generation_rows, overhead_rows)
    artifact_path = write_bench_json(arguments.output,
                                     _artifact(generation_rows, overhead_rows,
                                               smoke=arguments.smoke))
    print(f"wrote {artifact_path}")
