"""Benchmark: regenerate Table 5 (dual-GPU distribution sweep)."""

from conftest import run_once

from repro.experiments import table5
from repro.experiments.paper_data import TABLE5
from repro.precision import Precision


def test_table5(benchmark):
    result = run_once(benchmark, table5.run)
    print("\n" + result.text)
    assert len(result.rows) == 12

    for row in result.rows:
        precision = Precision.parse(row["precision"])
        paper = TABLE5[(precision, row["sockets"])][row["distr"]]
        assert abs(row["wall"] / paper.wall - 1.0) < 0.15

    # Section 6 claim: the best dual-GPU speedup on a single socket is ~5.
    single_socket = [row["speedup"] for row in result.rows
                     if row["sockets"] == 1 and row["precision"] == "double"]
    assert max(single_socket) > 4.5

    # Optimal distribution sits in the paper's 0.70-0.80 band.
    for precision in ("single", "double"):
        for sockets in (1, 2):
            block = [row for row in result.rows
                     if row["precision"] == precision
                     and row["sockets"] == sockets]
            best = min(block, key=lambda row: row["wall"])
            assert 0.70 <= best["distr"] <= 0.80
