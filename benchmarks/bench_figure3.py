"""Benchmark: regenerate Figure 3 (GPU communication-hiding trace)."""

from conftest import run_once

from repro.experiments import figure3


def test_figure3(benchmark):
    result = run_once(benchmark, figure3.run)
    print("\n" + result.text)
    rows = {row["resource"]: row["segments"] for row in result.rows}
    assert set(rows) == {"accel", "cpu"}

    # Assembly and copy alternate on the GPU queue (Figure 3's layout).
    kinds = [segment["kind"] for segment in rows["accel"]]
    assert kinds == ["assemble", "transfer"] * (len(kinds) // 2)

    # Overlap actually happens: some copy finishes while a solve runs.
    solves = [s for s in rows["cpu"] if s["kind"] == "solve"]
    copies = [s for s in rows["accel"] if s["kind"] == "transfer"]
    overlapping = any(
        copy["start"] < solve["end"] and solve["start"] < copy["end"]
        for copy in copies for solve in solves
    )
    assert overlapping
    assert "<svg" in result.artifacts["figure3.svg"]
