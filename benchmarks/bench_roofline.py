"""Benchmark: roofline placement of the paper's kernels.

Quantifies the Section 3 discussion: both kernels are compute-bound on
every device, so the hybrid split is justified by *achieved* (not
attainable) throughput — the CPU's batched LU runs closest to its
roofline while the accelerators' LU barely registers.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import (
    DUAL_E5_2630_V3,
    E5_2630_V3,
    HALF_K80,
    XEON_PHI_7120,
    Regime,
    roofline_point,
)

DEVICES = (E5_2630_V3, DUAL_E5_2630_V3, XEON_PHI_7120, HALF_K80)


def build():
    points = []
    for device in DEVICES:
        for kernel in ("assembly", "solve"):
            for precision in ("single", "double"):
                points.append(roofline_point(device, kernel,
                                             precision=precision))
    return points


def test_roofline(benchmark):
    points = run_once(benchmark, build)
    table = TextTable(
        headers=("device", "kernel", "prec", "flops/byte", "regime",
                 "achieved GF/s", "% of roofline"),
        title="Roofline placement of the two kernels (n = 200)",
    )
    for point in points:
        table.add_row(
            point.device.name, point.kernel, point.precision.short_name,
            f"{point.intensity:.1f}", point.regime.value,
            f"{point.achieved_flops / 1e9:.1f}",
            f"{point.roofline_fraction:.1%}",
        )
    print("\n" + table.render())

    # Assembly is decisively compute-bound on every device.  The n=200
    # LU's intensity (8-17 flops/byte) sits *near* several ridge points
    # (dual-socket CPU, K80 in single precision): even a perfectly
    # tuned batched LU would brush the memory wall there, bounding how
    # far any library could close the Table 2 solve gap.
    for point in points:
        if point.kernel == "assembly":
            assert point.regime is Regime.COMPUTE_BOUND, (
                point.device.name, point.precision
            )
            assert point.intensity > 1.5 * point.ridge_intensity
        else:
            # Solve: compute-bound or at worst near-ridge (within 2x).
            assert point.intensity > 0.5 * point.ridge_intensity, (
                point.device.name, point.precision
            )

    def fraction(device, kernel, precision="double"):
        return next(
            p.roofline_fraction for p in points
            if p.device is device and p.kernel == kernel
            and p.precision.value == precision
        )

    # The CPU's batched LU is the best-realized kernel in the system...
    assert fraction(E5_2630_V3, "solve") > fraction(XEON_PHI_7120, "solve")
    assert fraction(E5_2630_V3, "solve") > fraction(HALF_K80, "solve")
    # ... while the GPU realizes more of its roofline on assembly than
    # on the solve — together, the quantitative case for the hybrid.
    assert fraction(HALF_K80, "assembly") > fraction(HALF_K80, "solve")
