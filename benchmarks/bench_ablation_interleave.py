"""Ablation: communication hiding on vs. off.

DESIGN.md Section 6 calls out the interleave itself as the design
choice to ablate: how much of the hybrid's win comes from overlapping
copy/solve rather than from the accelerator's raw assembly speed?
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import paper_workstation
from repro.pipeline import (
    Workload,
    cpu_only,
    evaluate,
    hybrid,
    sequential_offload,
    simulate,
    tune_slices,
)


def ablate(precision="double", sockets=2):
    rows = []
    workload = Workload.paper_reference(precision)
    host = paper_workstation(sockets=sockets, precision=precision)
    baseline = evaluate(simulate(cpu_only(workload, host.cpu)))
    for accelerator in ("phi", "k80-half"):
        station = paper_workstation(sockets=sockets, accelerator=accelerator,
                                    precision=precision)
        sequential = evaluate(simulate(sequential_offload(workload, station)))
        tuned = tune_slices(workload, station)
        rows.append({
            "accelerator": accelerator,
            "cpu_only": baseline.wall_time,
            "sequential": sequential.wall_time,
            "interleaved": tuned.best_metrics.wall_time,
            "slices": tuned.best_parameter,
            "sequential_speedup": baseline.wall_time / sequential.wall_time,
            "interleaved_speedup": baseline.wall_time
            / tuned.best_metrics.wall_time,
        })
    return rows


def test_interleave_ablation(benchmark):
    rows = run_once(benchmark, ablate)
    table = TextTable(
        headers=("accelerator", "cpu only", "sequential", "interleaved",
                 "slices*", "seq x", "int x"),
        title="Ablation: offload without vs. with communication hiding "
              "(double, 2x CPU)",
    )
    for row in rows:
        table.add_row(
            row["accelerator"], f"{row['cpu_only']:.2f}",
            f"{row['sequential']:.2f}", f"{row['interleaved']:.2f}",
            f"{row['slices']:.0f}", f"{row['sequential_speedup']:.2f}",
            f"{row['interleaved_speedup']:.2f}",
        )
    print("\n" + table.render())
    for row in rows:
        # Paper: "even a naive implementation results in some speedup" ...
        assert row["sequential_speedup"] > 1.0
        # ... "the communication hiding scheme employed contributes
        # significantly to the performance".
        assert row["interleaved_speedup"] > 1.2 * row["sequential_speedup"]
