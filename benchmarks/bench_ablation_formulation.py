"""Ablation: stream-function vs Hess-Smith panel formulation.

Both formulations discretize the same continuous problem; their
agreement (and their agreement with the exact Joukowski lift) bounds
the formulation error of the paper's inner solver independent of any
reference software.
"""

import numpy as np
from conftest import run_once

from repro.experiments.report import TextTable
from repro.geometry import naca
from repro.panel import Freestream, solve_airfoil, solve_hess_smith
from repro.validation import JoukowskiAirfoil


def compare():
    rows = []
    for designation in ("0012", "2412", "4412"):
        foil = naca(designation, 200)
        for alpha in (0.0, 4.0, 8.0):
            stream = solve_airfoil(foil, alpha).lift_coefficient
            hess = solve_hess_smith(
                foil, Freestream.from_degrees(alpha)
            ).lift_coefficient
            rows.append({
                "section": f"NACA {designation}", "alpha": alpha,
                "stream": stream, "hess": hess, "exact": None,
            })
    section = JoukowskiAirfoil(0.08, 0.05)
    foil = section.airfoil(300)
    for alpha in (0.0, 4.0):
        rows.append({
            "section": "Joukowski", "alpha": alpha,
            "stream": solve_airfoil(foil, alpha).lift_coefficient,
            "hess": solve_hess_smith(
                foil, Freestream.from_degrees(alpha)
            ).lift_coefficient,
            "exact": section.exact_lift_coefficient(np.radians(alpha)),
        })
    return rows


def test_formulation_ablation(benchmark):
    rows = run_once(benchmark, compare)
    table = TextTable(
        headers=("section", "alpha", "stream-fn cl", "hess-smith cl", "exact"),
        title="Ablation: panel formulation cross-check",
    )
    for row in rows:
        exact = f"{row['exact']:.4f}" if row["exact"] is not None else "-"
        table.add_row(row["section"], f"{row['alpha']:.0f}",
                      f"{row['stream']:.4f}", f"{row['hess']:.4f}", exact)
    print("\n" + table.render())

    for row in rows:
        # The two formulations agree to ~1 % of a typical cl on blunt
        # NACA trailing edges; the cusped Joukowski edge is the known
        # hard case for Hess-Smith and gets a 2 % allowance.
        allowance = 0.02 if row["section"] == "Joukowski" else 0.012
        assert abs(row["stream"] - row["hess"]) < allowance
        if row["exact"] is not None:
            assert abs(row["stream"] - row["exact"]) < 0.01
            assert abs(row["hess"] - row["exact"]) < 0.025
