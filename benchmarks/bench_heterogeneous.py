"""Benchmark: combining the Xeon Phi and a K80 GPU (beyond the paper).

The paper evaluates each accelerator separately and both K80 halves
together; the obvious next question — Phi *and* GPU at once — is left
open.  The heterogeneous pipeline answers it: at the paper's own
workload the host solve is the bottleneck and the combination is
pointless, but in chain-bound regimes (smaller matrices, large batches)
the second device and its independent PCIe link pay off.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import paper_workstation
from repro.pipeline import Workload, evaluate, hybrid, simulate
from repro.pipeline.heterogeneous import tune_fractions


def sweep():
    rows = []
    cases = [
        ("paper workload", Workload.paper_reference("double"), 10),
        ("n=100, batch=40000, sp", Workload(batch=40000, n=100,
                                            precision="single"), 20),
    ]
    for label, workload, n_slices in cases:
        precision = workload.precision.value
        gpu = paper_workstation(sockets=2, accelerator="k80-half",
                                precision=precision)
        phi = paper_workstation(sockets=2, accelerator="phi",
                                precision=precision)
        both = paper_workstation(sockets=2, accelerator="k80-half+phi",
                                 precision=precision)
        gpu_wall = evaluate(simulate(hybrid(workload, gpu, n_slices))).wall_time
        phi_wall = evaluate(simulate(hybrid(workload, phi, n_slices))).wall_time
        fraction, best, _ = tune_fractions(workload, both, n_slices)
        rows.append({
            "case": label,
            "gpu": gpu_wall,
            "phi": phi_wall,
            "hetero": best.wall_time,
            "gpu_fraction": fraction,
        })
    return rows


def test_heterogeneous(benchmark):
    rows = run_once(benchmark, sweep)
    table = TextTable(
        headers=("case", "phi W", "gpu W", "phi+gpu W", "gpu share*"),
        title="Heterogeneous pipeline: Phi and K80 half together (2x CPU)",
    )
    for row in rows:
        table.add_row(row["case"], f"{row['phi']:.2f}", f"{row['gpu']:.2f}",
                      f"{row['hetero']:.2f}", f"{row['gpu_fraction']:.2f}")
    print("\n" + table.render())

    paper_case, chain_bound = rows
    # At the paper's workload the combination cannot beat the GPU alone
    # (host solve is the bottleneck) and the tuner knows it.
    assert paper_case["hetero"] >= paper_case["gpu"] - 0.01
    assert paper_case["gpu_fraction"] >= 0.95
    # In the chain-bound regime both devices genuinely contribute.
    assert chain_bound["hetero"] < chain_bound["gpu"]
    assert 0.0 < chain_bound["gpu_fraction"] < 1.0
    # And the combination always dominates the Phi alone.
    for row in rows:
        assert row["hetero"] <= row["phi"] + 1e-9
