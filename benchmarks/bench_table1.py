"""Benchmark: regenerate Table 1 (hardware characteristics)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark):
    result = run_once(benchmark, table1.run)
    print("\n" + result.text)
    assert len(result.rows) == 5
    # Table 1 orderings: each accelerator out-peaks the dual CPU.
    by_name = {row["device"]: row for row in result.rows}
    dual_cpu = by_name["2x E5-2630 v3"]
    for accelerator in ("Phi 7120", "0.5x K80", "1x K80"):
        assert by_name[accelerator]["tflops_double"] > dual_cpu["tflops_double"]
        assert (by_name[accelerator]["memory_bandwidth_gbs"]
                > dual_cpu["memory_bandwidth_gbs"])
