"""Benchmark: regenerate Table 3 (GPU+CPU hybrid slice sweep)."""

from conftest import run_once

from repro.experiments import table3
from repro.experiments.paper_data import TABLE3
from repro.precision import Precision


def test_table3(benchmark):
    result = run_once(benchmark, table3.run)
    print("\n" + result.text)
    assert len(result.rows) == 16

    for row in result.rows:
        precision = Precision.parse(row["precision"])
        paper = TABLE3[(precision, row["sockets"])][row["slices"]]
        # Shape: every simulated wall time within 10 % of the paper's.
        assert abs(row["wall"] / paper.wall - 1.0) < 0.10
        # Every hybrid row beats the CPU baseline.
        assert row["speedup"] > 1.5

    # Interleaving matters: 10 slices clearly beat 1 slice in every block.
    for precision in ("single", "double"):
        for sockets in (1, 2):
            block = {row["slices"]: row for row in result.rows
                     if row["precision"] == precision
                     and row["sockets"] == sockets}
            assert block[10]["wall"] < 0.85 * block[1]["wall"]
