"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's entire evaluation section in one run.  Timing numbers reported
by pytest-benchmark measure the *harness* (simulation + rendering) —
the scientific content is the printed simulated seconds.

Benchmarks that produce machine-readable artifacts (``BENCH_*.json``)
write them through :func:`write_bench_json`, which honours the
``BENCH_OUTPUT_DIR`` environment variable so CI can collect them from
one directory.
"""

import json
import os
import tempfile

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock.

    Experiment regenerations are deterministic, so a single round is
    enough; pedantic mode keeps pytest-benchmark from looping a slow GA
    run dozens of times.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def bench_output_path(filename):
    """Where a ``BENCH_*.json`` artifact lands: ``$BENCH_OUTPUT_DIR``
    when set, else the current working directory."""
    return os.path.join(os.environ.get("BENCH_OUTPUT_DIR", "."), filename)


def write_bench_json(filename, payload):
    """Atomically write a machine-readable benchmark artifact.

    The payload is written to a temporary file in the destination
    directory and renamed into place, so a crashed or interrupted run
    never leaves a truncated JSON document for CI to choke on.
    Returns the destination path.
    """
    path = bench_output_path(filename)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    handle_fd, temp_path = tempfile.mkstemp(dir=directory,
                                            prefix=filename + ".", suffix=".tmp")
    try:
        with os.fdopen(handle_fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path
