"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it, so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
paper's entire evaluation section in one run.  Timing numbers reported
by pytest-benchmark measure the *harness* (simulation + rendering) —
the scientific content is the printed simulated seconds.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock.

    Experiment regenerations are deterministic, so a single round is
    enough; pedantic mode keeps pytest-benchmark from looping a slow GA
    run dozens of times.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
