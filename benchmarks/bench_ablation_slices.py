"""Ablation: slice-count sensitivity beyond the paper's grid.

The paper samples slices in {1, 5, 10, 20} and reports that "between 10
and 20 slices seems to yield near optimal performance in most
circumstances".  This sweep extends the grid to 64 and verifies the
U-shape: falling overhead first, per-slice setup costs later.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import paper_workstation
from repro.pipeline import Workload, evaluate, hybrid, simulate, tune_slices

GRID = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64)


def sweep(precision="double", sockets=2, accelerator="k80-half"):
    workload = Workload.paper_reference(precision)
    station = paper_workstation(sockets=sockets, accelerator=accelerator,
                                precision=precision)
    walls = {}
    for n_slices in GRID:
        walls[n_slices] = evaluate(
            simulate(hybrid(workload, station, n_slices))
        ).wall_time
    tuned = tune_slices(workload, station, candidates=GRID)
    return walls, tuned.best_parameter


def test_slice_sensitivity(benchmark):
    walls, best = run_once(benchmark, sweep)
    table = TextTable(headers=("slices", "W"),
                      title="Ablation: slice sweep (GPU, double, 2x CPU)")
    for n_slices, wall in walls.items():
        marker = "  <- optimum" if n_slices == best else ""
        table.add_row(n_slices, f"{wall:.3f}{marker}")
    print("\n" + table.render())

    # The paper's observation: the optimum sits in the 5-32 band, the
    # curve falls steeply from 1 slice and rises again past the optimum.
    assert 5 <= best <= 32
    assert walls[1] > 1.3 * walls[int(best)]
    assert walls[64] > walls[int(best)]

    # Monotone descent from 1 slice to the optimum region.
    descending = [walls[s] for s in GRID if s <= best]
    assert all(b <= a + 1e-9 for a, b in zip(descending, descending[1:]))
