"""Ablation: GA selection operator (tournament vs roulette vs rank).

The paper fixes tournament selection; this ablation runs the same
optimization budget with the two classical alternatives and compares
champions.  Tournament's strong, scaling-free pressure is why it is
the default in the airfoil-GA literature the paper builds on.
"""

import numpy as np
from conftest import run_once

from repro.experiments.report import TextTable
from repro.optimize import (
    FitnessEvaluator,
    GAConfig,
    GenomeLayout,
    GeneticOptimizer,
)
from repro.optimize.selection import SelectionMethod, measure_selection_pressure


def ablate(seeds=(3, 7, 11)):
    evaluator = FitnessEvaluator(layout=GenomeLayout(n_upper=5, n_lower=5),
                                 n_panels=60, reynolds=4e5)
    results = {}
    for method in ("tournament", "roulette", "rank"):
        champions = []
        for seed in seeds:
            config = GAConfig(population_size=20, generations=6,
                              selection=method)
            history = GeneticOptimizer(evaluator=evaluator,
                                       config=config).run(
                np.random.default_rng(seed)
            )
            champions.append(history.champion.fitness)
        results[method] = champions
    pressure = {
        method.value: measure_selection_pressure(
            method, [10.0, 50.0, 30.0, 20.0], trials=4000
        ).best_probability
        for method in SelectionMethod
    }
    return results, pressure


def test_selection_ablation(benchmark):
    results, pressure = run_once(benchmark, ablate)
    table = TextTable(
        headers=("selection", "mean champion L/D", "min", "max",
                 "P(best picked)"),
        title="Ablation: GA selection operator (pop 20 x 6 generations, "
              "3 seeds)",
    )
    for method, champions in results.items():
        table.add_row(
            method, f"{np.mean(champions):.0f}", f"{np.min(champions):.0f}",
            f"{np.max(champions):.0f}", f"{pressure[method]:.2f}",
        )
    print("\n" + table.render())

    # Every operator optimizes (champions far above random-start L/D).
    for champions in results.values():
        assert np.mean(champions) > 200
    # Tournament applies the strongest selection pressure of the three.
    assert pressure["tournament"] == max(pressure.values())
