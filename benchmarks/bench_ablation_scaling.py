"""Ablation: problem-size scaling (n in {50, 100, 200, 400}).

The paper notes "in practice n is often between 100 and 300"; this
sweep shows how the hybrid's advantage depends on the matrix dimension:
assembly grows as n^2 while the solve grows as n^3, so larger n shifts
work toward the CPU's strength and shrinks the accelerator speedup.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import paper_workstation
from repro.pipeline import Workload, cpu_only, evaluate, simulate, tune_slices


def sweep(precision="double", sockets=2, batch=4000):
    rows = []
    host = paper_workstation(sockets=sockets, precision=precision)
    stations = {
        name: paper_workstation(sockets=sockets, accelerator=name,
                                precision=precision)
        for name in ("phi", "k80-half")
    }
    for n in (50, 100, 200, 400):
        workload = Workload(batch=batch, n=n, precision=precision)
        baseline = evaluate(simulate(cpu_only(workload, host.cpu)))
        row = {"n": n, "cpu": baseline.wall_time}
        for name, station in stations.items():
            tuned = tune_slices(workload, station)
            row[name] = tuned.best_metrics.wall_time
            row[f"{name}_speedup"] = baseline.wall_time / tuned.best_metrics.wall_time
        rows.append(row)
    return rows


def test_problem_size_scaling(benchmark):
    rows = run_once(benchmark, sweep)
    table = TextTable(
        headers=("n", "cpu W", "phi W", "phi x", "gpu W", "gpu x"),
        title="Ablation: matrix-dimension sweep (double, 2x CPU, 4000 systems)",
    )
    for row in rows:
        table.add_row(
            row["n"], f"{row['cpu']:.2f}", f"{row['phi']:.2f}",
            f"{row['phi_speedup']:.2f}", f"{row['k80-half']:.2f}",
            f"{row['k80-half_speedup']:.2f}",
        )
    print("\n" + table.render())

    by_n = {row["n"]: row for row in rows}
    # The hybrid wins across the whole practical range.
    for row in rows:
        assert row["k80-half_speedup"] > 1.0

    # The speedup peaks in the paper's n ~ 100-200 regime and declines
    # at n = 400 where the O(n^3) CPU solve dominates the total.
    assert by_n[200]["k80-half_speedup"] > by_n[400]["k80-half_speedup"]
    # GPU stays ahead of the Phi everywhere (Section 5's conclusion).
    for row in rows:
        assert row["k80-half"] <= row["phi"] + 1e-9
