"""Real-compute micro-benchmarks of the library's numerical kernels.

Unlike the table/figure benches (which report *simulated* seconds),
these measure the actual NumPy kernels on the host running the test
suite: influence-matrix assembly and the batched LU solve.  They give
pytest-benchmark something physically meaningful to time and document
the real (interpreter-bound) throughput of the reproduction — the
reason the paper's wall-clock numbers are simulated rather than
measured (see DESIGN.md).
"""

import numpy as np
import pytest

from repro.geometry import naca
from repro.linalg import batched_lu_factor, batched_lu_solve
from repro.panel import Freestream, assemble, assemble_batch


@pytest.fixture(scope="module")
def foil200():
    return naca("2412", 200)


@pytest.fixture(scope="module")
def batch_systems():
    foils = [naca("2412", 100), naca("0012", 100), naca("4412", 100),
             naca("2212", 100)] * 4
    matrices, rhs, _ = assemble_batch(foils, Freestream.from_degrees(2.0))
    return matrices, rhs


def test_assembly_n200_double(benchmark, foil200):
    """One 200-panel system assembly (the paper's per-candidate unit)."""
    system = benchmark(assemble, foil200, Freestream.from_degrees(2.0))
    assert system.matrix.shape == (200, 200)


def test_assembly_n200_single(benchmark, foil200):
    """Single-precision assembly of the same system."""
    system = benchmark(assemble, foil200, Freestream.from_degrees(2.0),
                       dtype=np.float32)
    assert system.matrix.dtype == np.float32


def test_batched_lu_factor_16x100(benchmark, batch_systems):
    """Batched factorization of 16 systems of dimension 100."""
    matrices, _ = batch_systems
    factors = benchmark(batched_lu_factor, matrices)
    assert factors.batch == 16


def test_batched_lu_solve_16x100(benchmark, batch_systems):
    """Batched triangular solves for 16 systems of dimension 100."""
    matrices, rhs = batch_systems
    factors = batched_lu_factor(matrices)
    solution = benchmark(batched_lu_solve, factors, rhs)
    residual = np.einsum("bij,bj->bi", matrices, solution) - rhs
    assert np.max(np.abs(residual)) < 1e-8
