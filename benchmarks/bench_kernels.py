"""Real-compute micro-benchmarks of the library's numerical kernels.

Unlike the table/figure benches (which report *simulated* seconds),
these measure the actual NumPy kernels on the host running the test
suite: influence-matrix assembly and the batched LU solve.  They give
pytest-benchmark something physically meaningful to time and document
the real (interpreter-bound) throughput of the reproduction — the
reason the paper's wall-clock numbers are simulated rather than
measured (see DESIGN.md).

The kernel sweep times the three assembly kernels (``reference``,
``fused``, ``native`` — see ``docs/kernels.md``) against each other
across sizes and precisions and writes the machine-readable
``BENCH_kernels.json`` artifact via :func:`conftest.write_bench_json`,
honouring ``BENCH_OUTPUT_DIR``.  The fused kernel must beat the
reference by at least :data:`MIN_FUSED_SPEEDUP` at n=200 double — the
CI acceptance gate for the transcendental-sharing rewrite.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke]
        [--output BENCH_kernels.json]
"""

import argparse
import json
import os
import time

import numpy as np
import pytest

from repro.geometry import naca
from repro.linalg import batched_lu_factor, batched_lu_solve
from repro.panel import (
    Freestream,
    assemble,
    assemble_batch,
    native_status,
    stream_influence_matrix,
)

#: Panel counts swept by the full benchmark; ``--smoke`` keeps only
#: the paper's canonical n=200.
SWEEP_SIZES = (100, 200, 400)
SMOKE_SIZES = (200,)

#: Timing repetitions (best-of) per row.
REPEATS = 7
SMOKE_REPEATS = 5

#: CI acceptance gate: fused over reference at n=200 double.
MIN_FUSED_SPEEDUP = 1.3

#: Default artifact filename (see ``conftest.write_bench_json``).
OUTPUT_FILENAME = "BENCH_kernels.json"


@pytest.fixture(scope="module")
def foil200():
    return naca("2412", 200)


@pytest.fixture(scope="module")
def batch_systems():
    foils = [naca("2412", 100), naca("0012", 100), naca("4412", 100),
             naca("2212", 100)] * 4
    matrices, rhs, _ = assemble_batch(foils, Freestream.from_degrees(2.0))
    return matrices, rhs


def test_assembly_n200_double(benchmark, foil200):
    """One 200-panel system assembly (the paper's per-candidate unit)."""
    system = benchmark(assemble, foil200, Freestream.from_degrees(2.0))
    assert system.matrix.shape == (200, 200)


def test_assembly_n200_single(benchmark, foil200):
    """Single-precision assembly of the same system."""
    system = benchmark(assemble, foil200, Freestream.from_degrees(2.0),
                       dtype=np.float32)
    assert system.matrix.dtype == np.float32


def test_assembly_n200_reference_kernel(benchmark, foil200):
    """The same assembly through the readable reference kernel."""
    system = benchmark(assemble, foil200, Freestream.from_degrees(2.0),
                       kernel="reference")
    assert system.matrix.shape == (200, 200)


@pytest.mark.skipif(not native_status()["available"],
                    reason="no C compiler for the native kernel")
def test_assembly_n200_native_kernel(benchmark, foil200):
    """The same assembly through the compiled C kernel."""
    system = benchmark(assemble, foil200, Freestream.from_degrees(2.0),
                       kernel="native")
    assert system.matrix.shape == (200, 200)


def test_batched_lu_factor_16x100(benchmark, batch_systems):
    """Batched factorization of 16 systems of dimension 100."""
    matrices, _ = batch_systems
    factors = benchmark(batched_lu_factor, matrices)
    assert factors.batch == 16


def test_batched_lu_solve_16x100(benchmark, batch_systems):
    """Batched triangular solves for 16 systems of dimension 100."""
    matrices, rhs = batch_systems
    factors = batched_lu_factor(matrices)
    solution = benchmark(batched_lu_solve, factors, rhs)
    residual = np.einsum("bij,bj->bi", matrices, solution) - rhs
    assert np.max(np.abs(residual)) < 1e-8


# ----------------------------------------------------------------------
# Kernel sweep (the BENCH_kernels.json artifact)
# ----------------------------------------------------------------------

def _best_of_interleaved(functions, repeats):
    """Best wall time per function over *repeats* interleaved rounds.

    Timing the contenders round-robin (reference, fused, native,
    reference, ...) instead of back-to-back blocks means slow drift on
    a noisy host (CI neighbours, thermal throttling) hits every kernel
    equally, so the *ratios* the gate asserts on stay stable even when
    the absolute times wobble.  One untimed warmup per function.
    """
    for function in functions.values():
        function()
    best = {name: float("inf") for name in functions}
    for _ in range(repeats):
        for name, function in functions.items():
            started = time.perf_counter()
            function()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def kernel_sweep(*, smoke=False):
    """Time every (size, dtype, kernel) assembly combination.

    Returns the rows plus the fused-over-reference speedups that the
    CI gate (:func:`check_sweep`) asserts on.  The native kernel rows
    appear only when a C compiler is available; its absence is
    recorded in the artifact rather than failing the sweep.
    """
    sizes = SMOKE_SIZES if smoke else SWEEP_SIZES
    repeats = SMOKE_REPEATS if smoke else REPEATS
    status = native_status()
    kernels = ["reference", "fused"] + (["native"] if status["available"]
                                        else [])
    rows = []
    for n in sizes:
        foil = naca("2412", n)
        points = foil.control_points
        for dtype in (np.float64, np.float32):
            timings = _best_of_interleaved(
                {
                    kernel: (lambda kernel=kernel: stream_influence_matrix(
                        points, foil, dtype=dtype, kernel=kernel))
                    for kernel in kernels
                },
                repeats,
            )
            row = {"n": n, "dtype": np.dtype(dtype).name,
                   "seconds": {k: round(t, 6) for k, t in timings.items()},
                   "fused_speedup": round(
                       timings["reference"] / max(timings["fused"], 1e-12), 3
                   )}
            if "native" in timings:
                row["native_speedup"] = round(
                    timings["reference"] / max(timings["native"], 1e-12), 3
                )
            rows.append(row)
    return {
        "benchmark": "kernels",
        "smoke": smoke,
        "min_fused_speedup": MIN_FUSED_SPEEDUP,
        "native": {"available": status["available"],
                   "compiler": status["compiler"],
                   "reason": status["reason"]},
        "rows": rows,
    }


def check_sweep(artifact):
    """The acceptance gate: fused beats reference at n=200 double."""
    gated = [row for row in artifact["rows"]
             if row["n"] == 200 and row["dtype"] == "float64"]
    assert gated, "sweep must include the n=200 float64 row"
    for row in gated:
        assert row["fused_speedup"] >= MIN_FUSED_SPEEDUP, (
            f"fused kernel speedup {row['fused_speedup']}x at n=200 "
            f"float64 is below the {MIN_FUSED_SPEEDUP}x gate"
        )


def test_kernel_sweep_smoke():
    """The CI gate, runnable inside pytest as well as standalone."""
    from conftest import write_bench_json

    artifact = kernel_sweep(smoke=True)
    print("\n" + json.dumps(artifact["rows"], indent=2))
    check_sweep(artifact)
    path = write_bench_json(OUTPUT_FILENAME, artifact)
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI smoke runs")
    parser.add_argument("--output", default=OUTPUT_FILENAME, metavar="FILE",
                        help="artifact filename (relative paths land in "
                             "$BENCH_OUTPUT_DIR when set; default "
                             f"{OUTPUT_FILENAME})")
    arguments = parser.parse_args()
    result = kernel_sweep(smoke=arguments.smoke)
    print(json.dumps(result, indent=2))
    check_sweep(result)
    artifact_path = write_bench_json(arguments.output, result)
    print(f"wrote {artifact_path}")
