"""Ablation: single vs double precision across every configuration.

The paper reports every table twice; this bench condenses the sp/dp
comparison into one sweep and checks its systematic shapes: single is
faster everywhere, the accelerator speedups survive in both precisions,
and mixed-precision refinement closes the accuracy gap.
"""

import numpy as np
from conftest import run_once

from repro.experiments.report import TextTable
from repro.geometry import naca
from repro.hardware import paper_workstation
from repro.linalg import refine_solve, solve
from repro.panel import Freestream, assemble
from repro.pipeline import Workload, cpu_only, evaluate, hybrid, simulate


def sweep():
    rows = []
    for accelerator in ("none", "phi", "k80-half"):
        for precision in ("single", "double"):
            station = paper_workstation(sockets=2, accelerator=accelerator,
                                        precision=precision)
            workload = Workload.paper_reference(precision)
            if accelerator == "none":
                timeline = simulate(cpu_only(workload, station.cpu))
            else:
                timeline = simulate(hybrid(workload, station, 10))
            rows.append({
                "configuration": accelerator,
                "precision": precision,
                "wall": evaluate(timeline).wall_time,
            })
    return rows


def test_precision_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    table = TextTable(headers=("configuration", "sp W", "dp W", "dp/sp"),
                      title="Ablation: precision (2x CPU host, 10 slices)")
    by_config = {}
    for row in rows:
        by_config.setdefault(row["configuration"], {})[row["precision"]] = row["wall"]
    for config, walls in by_config.items():
        table.add_row(config, f"{walls['single']:.2f}", f"{walls['double']:.2f}",
                      f"{walls['double'] / walls['single']:.2f}")
    print("\n" + table.render())

    for config, walls in by_config.items():
        # Single precision is faster everywhere...
        assert walls["single"] < walls["double"]
        # ... by roughly the factor-2 arithmetic-rate ratio on the CPU
        # path (transfer volume also halves), never by more than 2.2.
        assert 1.2 < walls["double"] / walls["single"] < 2.2

    # Refinement: sp factorization + 3 sweeps reaches dp accuracy on the
    # reference system, so the sp pipeline's answers are usable as-is.
    system = assemble(naca("2412", 200), Freestream.from_degrees(4.0))
    matrix = np.asarray(system.matrix, np.float64)
    rhs = np.asarray(system.rhs, np.float64)
    result = refine_solve(matrix, rhs)
    assert result.converged and result.iterations <= 3
    assert np.max(np.abs(result.solution - solve(matrix, rhs))) < 1e-7
