"""Benchmark trend gate: fresh ``--smoke`` artifacts vs committed baselines.

CI runs the four smoke benchmarks (``bench_serving.py``,
``bench_kernels.py``, ``bench_cluster.py``, ``bench_autotune.py``),
each of which writes a
machine-readable ``BENCH_*.json`` artifact, then runs this script to
compare the fresh numbers against the baselines committed under
``benchmarks/baselines/``.  A performance metric that regresses beyond
the configured noise band fails the build; so does a *structural*
regression — a missing artifact, a missing row, or a row that lost a
metric — because silence is how perf regressions usually ship.

The noise band is deliberately wide by default (smoke runs on shared
CI runners are noisy; the gate exists to catch order-of-magnitude
cliffs, not 5% wobble) and configurable per invocation::

    PYTHONPATH=src python benchmarks/check_trend.py \
        --current-dir artifacts [--tolerance 0.5] [--update]

``--tolerance 0.5`` means a lower-is-better metric may double and a
higher-is-better metric may halve before the gate trips.  ``--update``
rewrites the baselines from the current artifacts instead of
comparing (run it locally after an intentional perf change and commit
the result).

The comparison logic is importable (:func:`compare`, :func:`main`) so
the regression test can drive it on synthetic documents.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Baselines live next to this script, committed to the repo.
BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baselines")

#: Artifact filenames the gate covers.
ARTIFACTS = ("BENCH_serving.json", "BENCH_kernels.json",
             "BENCH_cluster.json", "BENCH_autotune.json")

#: Default noise band: a metric may move by this *fraction* in the bad
#: direction before the gate fails (0.5 = half/double).
DEFAULT_TOLERANCE = 0.5

#: Per-benchmark comparison spec: how rows are identified across runs,
#: and which metrics are gated in which direction.  ``higher`` metrics
#: fail when current < baseline * (1 - tolerance); ``lower`` metrics
#: fail when current > baseline * (1 + tolerance).
SPECS = {
    "BENCH_serving.json": {
        "key_fields": ("backend", "max_batch", "max_wait_ms", "deadline_ms"),
        "higher": ("throughput_rps",),
        "lower": ("latency_p99_ms",),
    },
    "BENCH_kernels.json": {
        "key_fields": ("n", "dtype"),
        "higher": ("fused_speedup",),
        "lower": (),
    },
    "BENCH_cluster.json": {
        "key_fields": ("replicas", "killed_one"),
        "higher": ("throughput_rps",),
        "lower": (),
    },
    "BENCH_autotune.json": {
        "key_fields": ("config",),
        "higher": ("throughput_rps",),
        "lower": (),
    },
}


def _row_key(row: dict, fields: Tuple[str, ...]) -> str:
    return json.dumps({field: row.get(field) for field in fields},
                      sort_keys=True)


def _index_rows(document: dict, fields: Tuple[str, ...]) -> Dict[str, dict]:
    rows = document.get("rows")
    if not isinstance(rows, list):
        return {}
    indexed: Dict[str, dict] = {}
    for row in rows:
        if isinstance(row, dict):
            indexed[_row_key(row, fields)] = row
    return indexed


def compare(baseline: dict, current: dict, spec: dict, *,
            tolerance: float = DEFAULT_TOLERANCE,
            name: str = "artifact") -> List[str]:
    """Failure messages from comparing one artifact pair (empty = pass).

    Structural failures (rows present in the baseline but absent from
    the current run, or metrics that vanished) are reported alongside
    out-of-band metric moves, with the ratio that tripped the gate.
    """
    failures: List[str] = []
    fields = spec["key_fields"]
    baseline_rows = _index_rows(baseline, fields)
    current_rows = _index_rows(current, fields)
    if not baseline_rows:
        failures.append(f"{name}: baseline has no comparable rows")
        return failures
    for key, base_row in sorted(baseline_rows.items()):
        row = current_rows.get(key)
        if row is None:
            failures.append(f"{name}: row {key} missing from current run")
            continue
        for metric in spec["higher"]:
            failures.extend(_gate(name, key, metric, base_row, row,
                                  tolerance, higher_is_better=True))
        for metric in spec["lower"]:
            failures.extend(_gate(name, key, metric, base_row, row,
                                  tolerance, higher_is_better=False))
    return failures


def _gate(name: str, key: str, metric: str, base_row: dict, row: dict,
          tolerance: float, *, higher_is_better: bool) -> List[str]:
    base = base_row.get(metric)
    if not isinstance(base, (int, float)) or isinstance(base, bool):
        return []  # baseline never recorded it: nothing to gate against
    value = row.get(metric)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return [f"{name}: row {key} lost metric {metric!r}"]
    if base <= 0:
        return []
    if higher_is_better:
        floor = base * (1.0 - tolerance)
        if value < floor:
            return [f"{name}: {metric} regressed for row {key}: "
                    f"{value:g} < {floor:g} (baseline {base:g}, "
                    f"tolerance {tolerance:g})"]
    else:
        ceiling = base * (1.0 + tolerance)
        if value > ceiling:
            return [f"{name}: {metric} regressed for row {key}: "
                    f"{value:g} > {ceiling:g} (baseline {base:g}, "
                    f"tolerance {tolerance:g})"]
    return []


def _load(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current-dir", default=".", metavar="DIR",
                        help="directory holding the fresh BENCH_*.json "
                             "artifacts (default: cwd)")
    parser.add_argument("--baseline-dir", default=BASELINE_DIR, metavar="DIR",
                        help="directory holding the committed baselines "
                             "(default: benchmarks/baselines/)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        metavar="FRACTION",
                        help="allowed fractional move in the bad direction "
                             f"before failing (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from the current "
                             "artifacts instead of comparing")
    arguments = parser.parse_args(argv)
    if not 0.0 < arguments.tolerance:
        print("check_trend: --tolerance must be positive", file=sys.stderr)
        return 2

    if arguments.update:
        os.makedirs(arguments.baseline_dir, exist_ok=True)
        updated = 0
        for filename in ARTIFACTS:
            document = _load(os.path.join(arguments.current_dir, filename))
            if document is None:
                print(f"check_trend: skipping {filename} (no current artifact)")
                continue
            destination = os.path.join(arguments.baseline_dir, filename)
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"check_trend: baseline updated: {destination}")
            updated += 1
        return 0 if updated else 2

    failures: List[str] = []
    compared = 0
    for filename in ARTIFACTS:
        baseline = _load(os.path.join(arguments.baseline_dir, filename))
        if baseline is None:
            # A benchmark with no committed baseline is not gated yet;
            # say so loudly rather than silently covering nothing.
            print(f"check_trend: no baseline for {filename}; not gated")
            continue
        current = _load(os.path.join(arguments.current_dir, filename))
        if current is None:
            failures.append(f"{filename}: current artifact missing or "
                            f"unreadable in {arguments.current_dir}")
            continue
        failures.extend(compare(baseline, current, SPECS[filename],
                                tolerance=arguments.tolerance, name=filename))
        compared += 1
    if not compared and not failures:
        print("check_trend: nothing compared (no baselines committed)",
              file=sys.stderr)
        return 2
    for failure in failures:
        print(f"check_trend: FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"check_trend: OK ({compared} artifact(s) within "
          f"tolerance {arguments.tolerance:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
