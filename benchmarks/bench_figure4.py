"""Benchmark: regenerate Figure 4 (Xeon Phi three-way interleave)."""

from conftest import run_once

from repro.experiments import figure4


def test_figure4(benchmark):
    result = run_once(benchmark, figure4.run)
    print("\n" + result.text)
    rows = {row["resource"]: row["segments"] for row in result.rows}
    # Three resources: the defining difference from Figure 3.
    assert set(rows) == {"accel", "link", "cpu"}

    # All three operations overlap at some instant (the Phi scheme).
    def covers(segments, t):
        return any(s["start"] <= t < s["end"] for s in segments)

    makespan = max(s["end"] for segments in rows.values() for s in segments)
    grid = [makespan * i / 400.0 for i in range(400)]
    triple_overlap = any(
        covers(rows["accel"], t) and covers(rows["link"], t)
        and covers(rows["cpu"], t)
        for t in grid
    )
    assert triple_overlap
    assert "<svg" in result.artifacts["figure4.svg"]
