"""Benchmark: robustness of the conclusions to the calibration fits.

Four model parameters are fitted rather than published (effective PCIe
bandwidth, link latency, solve-call setup, per-offload host cost).
This sweep perturbs each by 0.5-2x and re-derives the paper's
conclusions, printing which survive.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.experiments.sensitivity import run_sensitivity


def test_sensitivity(benchmark):
    rows = run_once(benchmark, run_sensitivity)
    table = TextTable(
        headers=("fitted parameter", "factor", "gpu x", "phi x", "gpu s*",
                 "conclusions"),
        title="Sensitivity of the reproduction to its fitted parameters "
              "(double, 2x CPU, autotuned slices)",
    )
    for row in rows:
        table.add_row(
            row.parameter, f"{row.factor:.2f}", f"{row.gpu_speedup:.2f}",
            f"{row.phi_speedup:.2f}", row.gpu_optimal_slices,
            "hold" if row.conclusions_hold else "STRAINED",
        )
    print("\n" + table.render())

    assert all(row.conclusions_hold for row in rows)
    # The nominal (factor 1.0) rows reproduce the Table 3/4 speedups.
    nominal = [row for row in rows if row.factor == 1.0]
    for row in nominal:
        assert 2.9 < row.gpu_speedup < 3.4
        assert 2.1 < row.phi_speedup < 2.6
