"""Benchmark: end-to-end GA optimization time per platform.

Goes one step beyond the paper's flat-batch tables: a GA runs in
generations with a synchronization barrier each time, so its
end-to-end speedup is *below* the flat Table 3 number — and recovers as
the population (per-generation batch) grows.  This is the library's
prediction for the paper's actual application workload.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.optimize import ga_speedup, time_ga_run


def sweep():
    rows = []
    for accelerator in ("none", "phi", "k80-half", "k80-dual"):
        run = time_ga_run(population=400, generations=10,
                          precision="double", accelerator=accelerator)
        rows.append({
            "accelerator": accelerator,
            "total": run.total_seconds,
            "per_generation": run.per_generation_seconds[0],
        })
    population_sweep = {
        population: ga_speedup("k80-half", population=population,
                               generations=4000 // population,
                               precision="double")
        for population in (100, 400, 1000, 2000)
    }
    return rows, population_sweep


def test_ga_timing(benchmark):
    rows, population_sweep = run_once(benchmark, sweep)
    table = TextTable(
        headers=("configuration", "total [s]", "per generation [s]", "speedup"),
        title="GA optimization (population 400 x 10 generations, double)",
    )
    baseline = next(r["total"] for r in rows if r["accelerator"] == "none")
    for row in rows:
        table.add_row(row["accelerator"], f"{row['total']:.2f}",
                      f"{row['per_generation']:.3f}",
                      f"{baseline / row['total']:.2f}")
    print("\n" + table.render())

    sweep_table = TextTable(
        headers=("population", "end-to-end GPU speedup"),
        title="Generation-sync cost vs population size (4000 candidates total)",
    )
    for population, speedup in population_sweep.items():
        sweep_table.add_row(population, f"{speedup:.2f}")
    print("\n" + sweep_table.render())

    by_accel = {row["accelerator"]: row["total"] for row in rows}
    # Ordering matches the paper: dual GPU < single GPU < Phi < CPU.
    assert by_accel["k80-dual"] < by_accel["k80-half"]
    assert by_accel["k80-half"] < by_accel["phi"]
    assert by_accel["phi"] < by_accel["none"]
    # The barrier costs real speedup relative to the flat batch...
    assert population_sweep[400] < 3.1
    # ... and bigger per-generation batches claw it back monotonically.
    speedups = list(population_sweep.values())
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
