"""Ablation: 2-resource vs. 3-resource interleave on either device.

The paper uses the simpler 2-stage scheme on the GPU and the 3-stage
scheme on the Phi.  This ablation swaps them and measures what each
choice is worth — quantifying the Section 5 remark that the Phi's more
complicated scheme is "out of necessity".
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import paper_workstation
from repro.pipeline import Workload, evaluate, hybrid, simulate


def ablate(precision="double", sockets=2, n_slices=10):
    workload = Workload.paper_reference(precision)
    rows = []
    for accelerator in ("phi", "k80-half"):
        station = paper_workstation(sockets=sockets, accelerator=accelerator,
                                    precision=precision)
        for stages in (2, 3):
            metrics = evaluate(simulate(
                hybrid(workload, station, n_slices, stages=stages)
            ))
            rows.append({
                "accelerator": accelerator,
                "stages": stages,
                "wall": metrics.wall_time,
                "overhead": metrics.overhead,
            })
    return rows


def test_stage_ablation(benchmark):
    rows = run_once(benchmark, ablate)
    table = TextTable(
        headers=("accelerator", "stages", "W", "O"),
        title="Ablation: interleave depth (double, 2x CPU, 10 slices)",
    )
    for row in rows:
        table.add_row(row["accelerator"], row["stages"],
                      f"{row['wall']:.2f}", f"{row['overhead']:.2f}")
    print("\n" + table.render())

    by_key = {(row["accelerator"], row["stages"]): row for row in rows}
    # The Phi *needs* the third stage: serializing copy behind its slow
    # assembly visibly hurts.
    assert (by_key[("phi", 3)]["wall"]
            < by_key[("phi", 2)]["wall"] - 0.05)
    # On the GPU the third stage buys almost nothing (assembly + copy
    # already hide behind the solves), which is why the paper keeps the
    # simpler scheme there.
    gpu_gain = by_key[("k80-half", 2)]["wall"] - by_key[("k80-half", 3)]["wall"]
    assert abs(gpu_gain) < 0.15
