"""Benchmark: energy to solution per configuration (beyond the paper).

The paper compares time only; pricing the same simulated runs with a
TDP-based power model adds the performance-per-watt axis and changes
one conclusion: the Xeon Phi, while 2.3x faster than the CPUs, costs
*more* energy, whereas the K80 wins on both axes.
"""

from conftest import run_once

from repro.experiments.report import TextTable
from repro.hardware import configuration_energy


def sweep():
    rows = []
    for precision in ("single", "double"):
        for accel in ("none", "phi", "k80-half", "k80-dual"):
            estimate = configuration_energy(accelerator=accel,
                                            precision=precision)
            rows.append({
                "precision": precision,
                "configuration": accel,
                "wall": estimate.wall_time,
                "joules": estimate.total_joules,
                "watts": estimate.average_watts,
            })
    return rows


def test_energy(benchmark):
    rows = run_once(benchmark, sweep)
    table = TextTable(
        headers=("prec", "configuration", "W [s]", "E [J]", "avg power [W]"),
        title="Energy to solution (TDP model, 2x CPU host, 10 slices)",
    )
    for row in rows:
        table.add_row(row["precision"][:2], row["configuration"],
                      f"{row['wall']:.2f}", f"{row['joules']:.0f}",
                      f"{row['watts']:.0f}")
    print("\n" + table.render())

    for precision in ("single", "double"):
        block = {row["configuration"]: row for row in rows
                 if row["precision"] == precision}
        # K80 half: faster AND cheaper than the CPU baseline.
        assert block["k80-half"]["wall"] < block["none"]["wall"]
        assert block["k80-half"]["joules"] < block["none"]["joules"]
        # Phi: faster but more energy (high idle draw over the run).
        assert block["phi"]["wall"] < block["none"]["wall"]
        assert block["phi"]["joules"] > block["none"]["joules"]
        # Both GPUs: fastest, but the second board costs extra joules.
        assert block["k80-dual"]["wall"] < block["k80-half"]["wall"]
        assert block["k80-dual"]["joules"] > block["k80-half"]["joules"]
