"""Benchmark: online autotuning against hand-tuned serving knobs.

Three rows, one story:

* ``bad-knobs`` — the service with ``max_batch=1, max_wait=0`` under
  steady closed-loop load: every request is its own LU call, the queue
  stands, and throughput is whatever unbatched dispatch can do.
* ``autotuned`` — the *same* live service after ``--autotune apply``
  control cycles: the controller calibrates the stage model from the
  ``/metrics`` window, sweeps the policy grid, and swaps the
  :class:`~repro.serve.batcher.BatchPolicy` in place.  The row records
  the decision journal's predicted-vs-realized deltas alongside the
  measured throughput.
* ``hand-tuned`` — a fresh service started with the knobs a careful
  operator would pick (``max_batch=8, max_wait=2ms``), the target the
  autotuner should approach without a human in the loop.

The sweep asserts the autotuned throughput reaches at least 1.3x the
bad-knob baseline — the acceptance gate for the control loop — and
writes the machine-readable ``BENCH_autotune.json`` artifact via
:func:`conftest.write_bench_json` (honouring ``BENCH_OUTPUT_DIR``).

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_autotune.py [--smoke]
        [--output BENCH_autotune.json]
"""

import argparse
import json
import threading
import time

from repro.serve import AnalysisService

#: Default artifact filename (see ``conftest.write_bench_json``).
OUTPUT_FILENAME = "BENCH_autotune.json"

#: Closed-loop client threads driving each service.
N_CLIENTS = 6
SMOKE_CLIENTS = 4

#: Problem size per request (dense LU at serving scale).
N_PANELS = 64

#: Measurement window per row, seconds.
WINDOW_S = 5.0
SMOKE_WINDOW_S = 2.5

#: Warm-up before the first measurement, seconds.
WARMUP_S = 2.0

#: The acceptance gate: autotuned throughput over the bad-knob baseline.
MIN_GAIN = 1.3

HAND_TUNED = {"max_batch": 8, "max_wait": 0.002}


def _load(service, n_clients):
    """Closed-loop load: counts completions, returns (throughput, stop)."""
    stop = threading.Event()
    completed = [0]
    lock = threading.Lock()

    def run():
        while not stop.is_set():
            service.analyze({"airfoil": "0012", "alpha_degrees": 2.0,
                             "n_panels": N_PANELS})
            with lock:
                completed[0] += 1

    pool = [threading.Thread(target=run, daemon=True)
            for _ in range(n_clients)]
    for thread in pool:
        thread.start()

    def throughput(seconds):
        with lock:
            before = completed[0]
        start = time.monotonic()
        time.sleep(seconds)
        with lock:
            after = completed[0]
        return (after - before) / (time.monotonic() - start)

    def shutdown():
        stop.set()
        for thread in pool:
            thread.join(timeout=5.0)

    return throughput, shutdown


def _policy_dict(policy):
    return {"max_batch": policy.max_batch,
            "max_wait_ms": round(1e3 * policy.max_wait, 3)}


def run_sweep(*, smoke=False):
    n_clients = SMOKE_CLIENTS if smoke else N_CLIENTS
    window = SMOKE_WINDOW_S if smoke else WINDOW_S
    rows = []

    # --- bad knobs, then the autotuner closes the loop on the same
    # live service -----------------------------------------------------
    service = AnalysisService(max_batch=1, max_wait=0.0, cache_size=0,
                              n_workers=1, queue_limit=512,
                              trace_sample=1.0, autotune="apply",
                              autotune_interval=3600.0,
                              autotune_min_improvement=0.05)
    throughput, shutdown = _load(service, n_clients)
    try:
        time.sleep(WARMUP_S)
        baseline_rps = throughput(window)
        rows.append({"config": "bad-knobs", "autotuned": False,
                     "policy": _policy_dict(service.policy),
                     "throughput_rps": round(baseline_rps, 1)})

        first = service.autotuner.run_cycle()
        tuned_rps = throughput(window)
        service.autotuner.run_cycle()  # realizes the applied delta
        journal = service.autotuner.journal()
        applied = next((entry for entry in journal
                        if entry["action"] == "applied"), None)
        rows.append({
            "config": "autotuned", "autotuned": True,
            "policy": _policy_dict(service.policy),
            "throughput_rps": round(tuned_rps, 1),
            "gain_over_bad_knobs": round(tuned_rps / baseline_rps, 2),
            "first_action": first["action"],
            "predicted_improvement": (applied or {}).get(
                "predicted_improvement"),
            "realized_improvement": (applied or {}).get(
                "realized_improvement"),
            "realized_throughput_gain": (applied or {}).get(
                "realized_throughput_gain"),
        })
    finally:
        shutdown()
        service.close(timeout=30.0)

    # --- the operator's hand-tuned target -----------------------------
    service = AnalysisService(cache_size=0, n_workers=1, queue_limit=512,
                              trace_sample=1.0, **HAND_TUNED)
    throughput, shutdown = _load(service, n_clients)
    try:
        time.sleep(WARMUP_S)
        hand_rps = throughput(window)
        rows.append({"config": "hand-tuned", "autotuned": False,
                     "policy": _policy_dict(service.policy),
                     "throughput_rps": round(hand_rps, 1)})
    finally:
        shutdown()
        service.close(timeout=30.0)
    return rows


def check_rows(rows):
    """Invariants every sweep must satisfy (shared by pytest and CLI)."""
    bad, tuned, hand = rows
    assert bad["config"] == "bad-knobs"
    assert tuned["config"] == "autotuned"
    # The controller acted: the policy moved off max_batch=1 and the
    # measured gain clears the acceptance gate.
    assert tuned["policy"]["max_batch"] > 1, tuned
    assert tuned["gain_over_bad_knobs"] >= MIN_GAIN, (
        f"autotuned gain {tuned['gain_over_bad_knobs']}x is below the "
        f"{MIN_GAIN}x acceptance gate")
    # The journal carries the promise and the delivery.
    assert tuned["predicted_improvement"] is not None, tuned
    assert tuned["realized_throughput_gain"] is not None, tuned
    # And it lands in the neighbourhood of the hand-tuned target (wide
    # band: both sides are noisy single-machine measurements).
    assert tuned["throughput_rps"] >= 0.5 * hand["throughput_rps"], rows


def _artifact(rows, *, smoke):
    return {"benchmark": "autotune", "smoke": smoke, "rows": rows}


def test_autotune_closes_the_loop(benchmark):
    from conftest import run_once, write_bench_json

    rows = run_once(benchmark, run_sweep)
    print("\n" + json.dumps(rows, indent=2))
    check_rows(rows)
    path = write_bench_json(OUTPUT_FILENAME, _artifact(rows, smoke=False))
    print(f"wrote {path}")


if __name__ == "__main__":
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default=OUTPUT_FILENAME, metavar="FILE",
                        help="artifact filename (relative paths land in "
                             "$BENCH_OUTPUT_DIR when set; default "
                             f"{OUTPUT_FILENAME})")
    arguments = parser.parse_args()
    sweep_rows = run_sweep(smoke=arguments.smoke)
    print(json.dumps(sweep_rows, indent=2))
    check_rows(sweep_rows)
    artifact_path = write_bench_json(arguments.output,
                                     _artifact(sweep_rows,
                                               smoke=arguments.smoke))
    print(f"wrote {artifact_path}")
