"""Benchmark: the serving stack under concurrent load.

Drives the in-process :class:`~repro.serve.AnalysisService` with N
concurrent clients at several batching settings and prints one JSON
summary per setting: throughput, p50/p99 latency, cache hit rate, and
how much coalescing the micro-batcher achieved.  The point to watch is
the batching column — with ``max_batch=1`` every request is its own
LU call, while the batched settings collapse the same traffic into a
handful of stacks (the serving analogue of the paper's slice sweep).

A final *deadline pressure* row runs the same traffic under a
microscopic per-request deadline: every request expires in the queue
and is shed at batch collection, so the row demonstrates the lifecycle
contract — dead work costs no solves (``solved_systems`` stays 0 while
``expired`` counts the whole offered load).

Also runnable standalone: ``PYTHONPATH=src python benchmarks/bench_serving.py``.
"""

import json
import threading
import time

from repro.core.api import AnalyzeRequest
from repro.errors import DeadlineExceededError
from repro.serve import AnalysisService

#: (max_batch, max_wait_seconds) settings swept by the benchmark.
SETTINGS = ((1, 0.0), (8, 0.002), (32, 0.01))

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 8
N_PANELS = 60

#: Deadline used by the pressure row: far below any realistic queue
#: time, so every request expires before a worker can collect it.
PRESSURE_DEADLINE_MS = 1e-3


def _request_stream(client_index):
    """A client's request sequence: few distinct shapes, repeated angles,
    so the cache and the batcher both have something to merge."""
    for index in range(REQUESTS_PER_CLIENT):
        yield AnalyzeRequest(
            airfoil="2412" if (client_index + index) % 2 else "0012",
            alpha_degrees=float((client_index + index) % 4),
            reynolds=None, n_panels=N_PANELS,
        )


def drive(max_batch, max_wait, *, deadline_ms=None):
    """Run one setting; returns the JSON summary row.

    With ``deadline_ms`` set, every request carries that budget and a
    :class:`DeadlineExceededError` is an expected outcome rather than a
    failure.
    """
    service = AnalysisService(max_batch=max_batch, max_wait=max_wait,
                              cache_size=256, n_workers=2, queue_limit=1024,
                              default_deadline_ms=deadline_ms)
    errors = []
    deadline_hits = [0] * N_CLIENTS

    def client(client_index):
        for request in _request_stream(client_index):
            try:
                service.analyze(request, timeout=60.0)
            except DeadlineExceededError:
                deadline_hits[client_index] += 1
                if deadline_ms is None:  # pragma: no cover - surfaced below
                    errors.append(RuntimeError("unexpected deadline miss"))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(N_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    snapshot = service.metrics_snapshot()
    service.close()
    if errors:
        raise errors[0]

    total = N_CLIENTS * REQUESTS_PER_CLIENT
    latency = snapshot["latency_ms"]
    return {
        "max_batch": max_batch,
        "max_wait_ms": 1e3 * max_wait,
        "deadline_ms": deadline_ms,
        "requests": total,
        "wall_s": round(wall, 4),
        "throughput_rps": round(total / wall, 1),
        "latency_p50_ms": (None if latency["p50"] is None
                           else round(latency["p50"], 3)),
        "latency_p99_ms": (None if latency["p99"] is None
                           else round(latency["p99"], 3)),
        "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 3),
        "batched_solves": snapshot["batching"]["batched_solves"],
        "solved_systems": snapshot["batching"]["solved_systems"],
        "max_batch_observed": snapshot["batching"]["max_batch"],
        "shed": snapshot["requests"]["shed"],
        "expired": snapshot["requests"]["expired"],
        "cancelled": snapshot["requests"]["cancelled"],
        "deadline_misses_seen_by_clients": sum(deadline_hits),
    }


def run_sweep():
    rows = [drive(max_batch, max_wait) for max_batch, max_wait in SETTINGS]
    rows.append(drive(32, 0.01, deadline_ms=PRESSURE_DEADLINE_MS))
    return rows


def test_serving_throughput(benchmark):
    from conftest import run_once

    summaries = run_once(benchmark, run_sweep)
    print("\n" + json.dumps(summaries, indent=2))

    total = N_CLIENTS * REQUESTS_PER_CLIENT
    normal, pressure = summaries[:-1], summaries[-1]
    for summary in normal:
        assert summary["shed"] == 0
        assert summary["expired"] == 0
        assert summary["solved_systems"] <= total
        assert summary["cache_hit_rate"] > 0.0
    # The batched settings must actually coalesce: fewer LU calls than
    # the unbatched baseline issues.
    unbatched = normal[0]
    for summary in normal[1:]:
        assert summary["batched_solves"] <= unbatched["batched_solves"]
    # Deadline pressure: every request expires in the queue, every
    # expiry reaches its client as a 504-equivalent error, and no
    # expired request ever costs a solve.
    assert pressure["expired"] == total
    assert pressure["deadline_misses_seen_by_clients"] == total
    assert pressure["solved_systems"] == 0


if __name__ == "__main__":
    print(json.dumps(run_sweep(), indent=2))
