"""Benchmark: the serving stack under concurrent load.

Drives the in-process :class:`~repro.serve.AnalysisService` with N
concurrent clients at several batching settings and prints one JSON
summary per setting: throughput, p50/p99 latency, cache hit rate, and
how much coalescing the micro-batcher achieved.  The point to watch is
the batching column — with ``max_batch=1`` every request is its own
LU call, while the batched settings collapse the same traffic into a
handful of stacks (the serving analogue of the paper's slice sweep).

A ``backend=process`` row repeats the best batched setting with the
micro-batches sharded across worker processes (see
:mod:`repro.parallel`), and a separate *assembly-bound* section times
``evaluate_requests`` directly on a workload of distinct large systems
— the regime the process backend exists for — comparing the traced
assembly wall time across backends (asserted to improve only when the
host actually has 2+ usable cores).

A final *deadline pressure* row runs the same traffic under a
microscopic per-request deadline: every request expires in the queue
and is shed at batch collection, so the row demonstrates the lifecycle
contract — dead work costs no solves (``solved_systems`` stays 0 while
``expired`` counts the whole offered load).

Each run also writes the machine-readable ``BENCH_serving.json``
artifact (per-row throughput, latency quantiles, and the W/A/L/O stage
breakdown from the live tracer) via
:func:`conftest.write_bench_json`, honouring ``BENCH_OUTPUT_DIR``.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
        [--output BENCH_serving.json]
"""

import argparse
import json
import os
import threading
import time

from repro.core.api import AnalyzeRequest, evaluate_requests
from repro.errors import DeadlineExceededError
from repro.parallel import make_backend
from repro.serve import AnalysisService

#: (max_batch, max_wait_seconds) settings swept by the benchmark.
SETTINGS = ((1, 0.0), (8, 0.002), (32, 0.01))

#: Reduced sweep used by ``--smoke`` (CI): one unbatched and one
#: batched setting, smaller offered load, same assertions.
SMOKE_SETTINGS = ((1, 0.0), (8, 0.002))

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 8
SMOKE_CLIENTS = 4
SMOKE_REQUESTS_PER_CLIENT = 4
N_PANELS = 60

#: Default artifact filename (see ``conftest.write_bench_json``).
OUTPUT_FILENAME = "BENCH_serving.json"

#: Deadline used by the pressure row: far below any realistic queue
#: time, so every request expires before a worker can collect it.
PRESSURE_DEADLINE_MS = 1e-3


def _request_stream(client_index, requests_per_client):
    """A client's request sequence: few distinct shapes, repeated angles,
    so the cache and the batcher both have something to merge."""
    for index in range(requests_per_client):
        yield AnalyzeRequest(
            airfoil="2412" if (client_index + index) % 2 else "0012",
            alpha_degrees=float((client_index + index) % 4),
            reynolds=None, n_panels=N_PANELS,
        )


def _stage_breakdown(snapshot):
    """The live tracer's W/A/L/O reduction, rounded for the artifact."""
    stages = snapshot.get("stages", {})
    breakdown = {key: round(value, 6) for key, value in stages.items()
                 if key.endswith("_seconds")}
    breakdown["traced"] = stages.get("traced", 0)
    return breakdown


def _usable_cores():
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def drive(max_batch, max_wait, *, deadline_ms=None, backend="inline",
          n_clients=N_CLIENTS, requests_per_client=REQUESTS_PER_CLIENT):
    """Run one setting; returns the JSON summary row.

    With ``deadline_ms`` set, every request carries that budget and a
    :class:`DeadlineExceededError` is an expected outcome rather than a
    failure.  ``backend`` selects the execution backend the service
    solves its micro-batches on (``"inline"`` or ``"process"``).
    """
    service = AnalysisService(max_batch=max_batch, max_wait=max_wait,
                              cache_size=256, n_workers=2, queue_limit=1024,
                              default_deadline_ms=deadline_ms,
                              exec_backend=backend, exec_procs=2)
    errors = []
    deadline_hits = [0] * n_clients

    def client(client_index):
        for request in _request_stream(client_index, requests_per_client):
            try:
                service.analyze(request, timeout=60.0)
            except DeadlineExceededError:
                deadline_hits[client_index] += 1
                if deadline_ms is None:  # pragma: no cover - surfaced below
                    errors.append(RuntimeError("unexpected deadline miss"))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(n_clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    snapshot = service.metrics_snapshot()
    service.close()
    if errors:
        raise errors[0]

    total = n_clients * requests_per_client
    latency = snapshot["latency_ms"]
    exec_stats = snapshot["exec_backend"]
    return {
        "backend": backend,
        "max_batch": max_batch,
        "max_wait_ms": 1e3 * max_wait,
        "deadline_ms": deadline_ms,
        "requests": total,
        "wall_s": round(wall, 4),
        "throughput_rps": round(total / wall, 1),
        "latency_p50_ms": (None if latency["p50"] is None
                           else round(latency["p50"], 3)),
        "latency_p99_ms": (None if latency["p99"] is None
                           else round(latency["p99"], 3)),
        "cache_hit_rate": round(snapshot["cache"]["hit_rate"], 3),
        "batched_solves": snapshot["batching"]["batched_solves"],
        "solved_systems": snapshot["batching"]["solved_systems"],
        "max_batch_observed": snapshot["batching"]["max_batch"],
        "shed": snapshot["requests"]["shed"],
        "expired": snapshot["requests"]["expired"],
        "cancelled": snapshot["requests"]["cancelled"],
        "deadline_misses_seen_by_clients": sum(deadline_hits),
        "stages": _stage_breakdown(snapshot),
        "exec": {
            "worker_crashes": exec_stats.get("worker_crashes", 0),
            "inline_fallbacks": exec_stats.get("inline_fallbacks", 0),
            "sharded_requests": exec_stats.get("sharded_requests", 0),
        },
    }


def run_sweep(*, smoke=False):
    settings = SMOKE_SETTINGS if smoke else SETTINGS
    n_clients = SMOKE_CLIENTS if smoke else N_CLIENTS
    per_client = SMOKE_REQUESTS_PER_CLIENT if smoke else REQUESTS_PER_CLIENT
    rows = [drive(max_batch, max_wait, n_clients=n_clients,
                  requests_per_client=per_client)
            for max_batch, max_wait in settings]
    # The best batched setting again, sharded across worker processes.
    rows.append(drive(settings[-1][0], settings[-1][1], backend="process",
                      n_clients=n_clients, requests_per_client=per_client))
    rows.append(drive(settings[-1][0], settings[-1][1],
                      deadline_ms=PRESSURE_DEADLINE_MS, n_clients=n_clients,
                      requests_per_client=per_client))
    return rows


#: Assembly-bound workload shape: distinct geometries at the paper's
#: reference panel count, inviscid, so per-request assembly dominates
#: over the (vectorized, stack-wide) LU and the viscous pass.
ASSEMBLY_BOUND_PANELS = 200
ASSEMBLY_BOUND_REQUESTS = 24
SMOKE_ASSEMBLY_BOUND_REQUESTS = 8


def assembly_bound_comparison(*, smoke=False):
    """Time inline vs process execution on an assembly-bound batch.

    Returns a comparison dict for the artifact: per-backend traced
    assembly wall time (the envelope the stage hook reports, best of
    three runs), total wall time, and the process backend's health
    counters — the acceptance signal that sharding actually reduced
    the assembly stage on multi-core hosts.
    """
    n_requests = SMOKE_ASSEMBLY_BOUND_REQUESTS if smoke else ASSEMBLY_BOUND_REQUESTS
    requests = [
        AnalyzeRequest(airfoil=f"{1 + index % 6}412",
                       alpha_degrees=0.5 * index, reynolds=None,
                       n_panels=ASSEMBLY_BOUND_PANELS)
        for index in range(n_requests)
    ]

    def measure(backend):
        best = None
        for _ in range(3):
            spans = {}

            def hook(stage, start, end, count):
                spans.setdefault(stage, 0.0)
                spans[stage] += end - start

            started = time.perf_counter()
            outcomes = evaluate_requests(requests, stage_hook=hook,
                                         backend=backend)
            wall = time.perf_counter() - started
            assert not any(isinstance(o, Exception) for o in outcomes)
            run = {"assembly_s": round(spans.get("assembly", 0.0), 6),
                   "solve_s": round(spans.get("solve", 0.0), 6),
                   "wall_s": round(wall, 6)}
            if best is None or run["assembly_s"] < best["assembly_s"]:
                best = run
        return best

    inline_row = dict(measure(None), backend="inline")
    process = make_backend("process", n_procs=2)
    try:
        process.solve(requests[:2])  # warm the pool out of the timing
        process_row = dict(measure(process), backend="process")
        stats = process.stats()
    finally:
        process.close()
    process_row["exec"] = {key: stats[key] for key in
                           ("procs", "worker_crashes", "inline_fallbacks",
                            "start_failures", "sharded_requests")}
    return {
        "n_requests": n_requests,
        "n_panels": ASSEMBLY_BOUND_PANELS,
        "usable_cores": _usable_cores(),
        "rows": [inline_row, process_row],
        "assembly_speedup": round(
            inline_row["assembly_s"] / max(process_row["assembly_s"], 1e-9), 3
        ),
    }


def _artifact(rows, assembly_bound, *, smoke):
    """The ``BENCH_serving.json`` document for one sweep."""
    return {"benchmark": "serving", "smoke": smoke, "rows": rows,
            "assembly_bound": assembly_bound}


def check_rows(rows):
    """Invariants every sweep must satisfy (shared by pytest and CLI)."""
    normal, pressure = rows[:-1], rows[-1]
    for summary in normal:
        assert summary["shed"] == 0
        assert summary["expired"] == 0
        assert summary["solved_systems"] <= summary["requests"]
        assert summary["cache_hit_rate"] > 0.0
        assert summary["stages"]["traced"] >= 1
        # The tracer's paper-vocabulary identity: O = W - L.
        stages = summary["stages"]
        assert abs(stages["overhead_seconds"]
                   - (stages["wall_seconds"] - stages["solve_seconds"])) < 1e-3
    # The batched settings must actually coalesce: fewer LU calls than
    # the unbatched baseline issues.
    unbatched = normal[0]
    for summary in normal[1:]:
        assert summary["batched_solves"] <= unbatched["batched_solves"]
    # The process-backend row must have served the same traffic
    # healthily: real sharded work, no crashes, no silent fallbacks.
    process_rows = [row for row in normal if row["backend"] == "process"]
    assert process_rows
    for summary in process_rows:
        assert summary["exec"]["worker_crashes"] == 0
        assert summary["exec"]["inline_fallbacks"] == 0
        assert summary["exec"]["sharded_requests"] > 0
    # Deadline pressure: every request expires in the queue, every
    # expiry reaches its client as a 504-equivalent error, and no
    # expired request ever costs a solve.
    assert pressure["expired"] == pressure["requests"]
    assert pressure["deadline_misses_seen_by_clients"] == pressure["requests"]
    assert pressure["solved_systems"] == 0


def check_assembly_bound(comparison):
    """Invariants for the assembly-bound backend comparison."""
    inline_row, process_row = comparison["rows"]
    assert inline_row["backend"] == "inline"
    assert process_row["backend"] == "process"
    assert inline_row["assembly_s"] > 0.0
    exec_stats = process_row["exec"]
    assert exec_stats["worker_crashes"] == 0
    assert exec_stats["inline_fallbacks"] == 0
    assert exec_stats["start_failures"] == 0
    assert exec_stats["sharded_requests"] >= comparison["n_requests"]
    if comparison["usable_cores"] >= 2:
        # The acceptance signal: with 2+ worker processes on a host
        # that can actually run them concurrently, sharding reduces
        # the traced assembly-stage wall time.  On a 1-core host the
        # rows still land in the artifact, but the comparison is
        # physically meaningless, so it is not asserted.
        assert process_row["assembly_s"] < inline_row["assembly_s"]


def test_serving_throughput(benchmark):
    from conftest import run_once, write_bench_json

    summaries = run_once(benchmark, run_sweep)
    print("\n" + json.dumps(summaries, indent=2))
    check_rows(summaries)
    comparison = assembly_bound_comparison(smoke=False)
    print(json.dumps(comparison, indent=2))
    check_assembly_bound(comparison)
    path = write_bench_json(OUTPUT_FILENAME,
                            _artifact(summaries, comparison, smoke=False))
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI smoke runs")
    parser.add_argument("--output", default=OUTPUT_FILENAME, metavar="FILE",
                        help="artifact filename (relative paths land in "
                             "$BENCH_OUTPUT_DIR when set; default "
                             f"{OUTPUT_FILENAME})")
    arguments = parser.parse_args()
    sweep_rows = run_sweep(smoke=arguments.smoke)
    print(json.dumps(sweep_rows, indent=2))
    check_rows(sweep_rows)
    comparison = assembly_bound_comparison(smoke=arguments.smoke)
    print(json.dumps(comparison, indent=2))
    check_assembly_bound(comparison)
    artifact_path = write_bench_json(arguments.output,
                                     _artifact(sweep_rows, comparison,
                                               smoke=arguments.smoke))
    print(f"wrote {artifact_path}")
