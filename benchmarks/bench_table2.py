"""Benchmark: regenerate Table 2 (per-device assembly/solve seconds)."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark):
    result = run_once(benchmark, table2.run)
    print("\n" + result.text)
    assert len(result.rows) == 8
    by_key = {(row["device"], row["precision"]): row for row in result.rows}

    for precision in ("single", "double"):
        cpu = by_key[("E5-2630 v3", precision)]
        dual = by_key[("2x E5-2630 v3", precision)]
        phi = by_key[("Phi 7120", precision)]
        gpu = by_key[("0.5x K80", precision)]

        # Paper Section 3: CPU assembly is 2.5-3.5x its solve.
        ratio = cpu["assembly_seconds"] / cpu["solve_seconds"]
        assert 2.5 <= ratio <= 3.5

        # Accelerators reverse the balance.
        assert phi["solve_seconds"] > phi["assembly_seconds"]
        assert gpu["solve_seconds"] > gpu["assembly_seconds"]

        # Phi assembles ~2x faster than two CPUs; GPU ~5x.
        assert 1.6 < dual["assembly_seconds"] / phi["assembly_seconds"] < 2.6
        assert 4.0 < dual["assembly_seconds"] / gpu["assembly_seconds"] < 7.5

        # CPUs solve faster than either accelerator.
        assert dual["solve_seconds"] < phi["solve_seconds"]
        assert dual["solve_seconds"] < gpu["solve_seconds"]
