"""Benchmark: the cluster router over 1 vs 3 replicas, plus failover.

Builds real in-process replicas (:class:`~repro.serve.AnalysisService`
behind its HTTP server) behind a :class:`~repro.cluster.ClusterRouter`
and drives them with concurrent clients.  Two scaling rows compare one
replica against three under the same offered load; a third *failover
blip* row repeats the three-replica run and kills a replica mid-sweep,
asserting that every request still completes (the blip is visible as
``failovers`` > 0, not as client errors).

The consistent-hash routing keeps repeated keys on one replica, so the
aggregate cache hit count in each row is the locality signal: it stays
high even as replicas are added, where a round-robin router would
dilute every replica's cache with every key.

Each run writes the machine-readable ``BENCH_cluster.json`` artifact
via :func:`conftest.write_bench_json`, honouring ``BENCH_OUTPUT_DIR``.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
        [--output BENCH_cluster.json]
"""

import argparse
import json
import threading
import time

from repro.cluster import ClusterRouter
from repro.core.api import AnalyzeRequest
from repro.serve import AnalysisService, start_server

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
SMOKE_CLIENTS = 4
SMOKE_REQUESTS_PER_CLIENT = 6

#: Distinct request shapes in the workload; small enough that repeats
#: (and therefore cache hits) happen within one sweep.
DISTINCT_KEYS = 16
N_PANELS = 60

OUTPUT_FILENAME = "BENCH_cluster.json"


def _payload(index):
    return {"airfoil": "2412" if index % 2 else "0012",
            "alpha_degrees": float(index % (DISTINCT_KEYS // 2)),
            "reynolds": 0, "n_panels": N_PANELS}


def _routing_key(index):
    return AnalyzeRequest.from_dict(_payload(index)).cache_key()


def drive(n_replicas, *, n_clients, requests_per_client, kill_one=False):
    """Run one sweep through a fresh topology; returns the summary row.

    With ``kill_one`` the busiest-by-ring replica is killed once a
    quarter of the load has been routed, and a directed request for a
    key that replica owned proves the failover path ran.
    """
    services, servers = [], []
    for _ in range(n_replicas):
        service = AnalysisService(max_batch=8, max_wait=0.002,
                                  cache_size=256, n_workers=2,
                                  queue_limit=1024)
        services.append(service)
        servers.append(start_server(service))
    router = ClusterRouter(
        [f"127.0.0.1:{server.port}" for server in servers],
        health_interval=0.05, down_after=2, timeout=30.0,
    ).start()
    total = n_clients * requests_per_client
    errors = []

    def client(client_index):
        for index in range(requests_per_client):
            try:
                router.analyze(_payload(client_index + 2 * index))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

    victim_index = None
    post_kill_probe = []
    if kill_one:
        victim = router.ring.lookup(_routing_key(0))
        victim_index = [f"127.0.0.1:{server.port}"
                        for server in servers].index(victim)

    def killer():
        while router.metrics.get("routed") < total // 4:
            time.sleep(0.001)
        servers[victim_index].stop()
        # Sever the pooled keep-alive sockets too: a stopped in-process
        # listener leaves live handler threads behind, which a real
        # SIGKILL would not.
        router.replicas[victim].client.close()
        # A key the dead replica owned must still answer, via its
        # heir.  Issued immediately, before the health probes mark the
        # victim DOWN, so it deterministically exercises the inline
        # failover path (and charges `failovers`).
        record = router.analyze(_payload(0))
        post_kill_probe.append("cl" in record)

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(n_clients)]
    if kill_one:
        threads.append(threading.Thread(target=killer))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    router_metrics = router.metrics.snapshot()
    cache_hits = sum(service.metrics_snapshot()["cache"]["hits"]
                     for service in services)
    router.close()
    for index, server in enumerate(servers):
        if index != victim_index:
            server.stop()
        services[index].close(timeout=30.0)
    if errors:
        raise errors[0]

    requests = total + (1 if kill_one else 0)
    return {
        "replicas": n_replicas,
        "killed_one": kill_one,
        "requests": requests,
        "wall_s": round(wall, 4),
        "throughput_rps": round(requests / wall, 1),
        "cache_hits": cache_hits,
        "routed": router_metrics["routed"],
        "failovers": router_metrics["failovers"],
        "exhausted": router_metrics["exhausted"],
        "proxy_errors": router_metrics["proxy_errors"],
        "post_kill_probe_ok": post_kill_probe[0] if post_kill_probe else None,
    }


def run_sweep(*, smoke=False):
    n_clients = SMOKE_CLIENTS if smoke else N_CLIENTS
    per_client = SMOKE_REQUESTS_PER_CLIENT if smoke else REQUESTS_PER_CLIENT
    rows = [
        drive(1, n_clients=n_clients, requests_per_client=per_client),
        drive(3, n_clients=n_clients, requests_per_client=per_client),
        drive(3, n_clients=n_clients, requests_per_client=per_client,
              kill_one=True),
    ]
    return rows


def check_rows(rows):
    """Invariants every sweep must satisfy (shared by pytest and CLI)."""
    single, scaled, failover = rows
    for row in rows:
        # Nothing is ever lost: every offered request is routed and
        # none exhausts the ring or surfaces a replica rejection.
        assert row["routed"] == row["requests"], row
        assert row["exhausted"] == 0, row
        assert row["proxy_errors"] == 0, row
        # Affine routing keeps repeats warm: the workload repeats each
        # distinct key several times, so a solid fraction of requests
        # must be cache hits (racing concurrent misses on the same key
        # keep this below the ideal repeat count).
        assert row["cache_hits"] >= row["requests"] // 3, row
    assert single["failovers"] == 0
    assert scaled["failovers"] == 0
    # The blip: the kill forced at least one failover (the directed
    # post-kill probe guarantees one), yet zero client-visible errors.
    assert failover["killed_one"]
    assert failover["failovers"] >= 1
    assert failover["post_kill_probe_ok"] is True


def _artifact(rows, *, smoke):
    return {"benchmark": "cluster", "smoke": smoke, "rows": rows}


def test_cluster_scaling_and_failover(benchmark):
    from conftest import run_once, write_bench_json

    rows = run_once(benchmark, run_sweep)
    print("\n" + json.dumps(rows, indent=2))
    check_rows(rows)
    path = write_bench_json(OUTPUT_FILENAME, _artifact(rows, smoke=False))
    print(f"wrote {path}")


if __name__ == "__main__":
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI smoke runs")
    parser.add_argument("--output", default=OUTPUT_FILENAME, metavar="FILE",
                        help="artifact filename (relative paths land in "
                             "$BENCH_OUTPUT_DIR when set; default "
                             f"{OUTPUT_FILENAME})")
    arguments = parser.parse_args()
    sweep_rows = run_sweep(smoke=arguments.smoke)
    print(json.dumps(sweep_rows, indent=2))
    check_rows(sweep_rows)
    artifact_path = write_bench_json(arguments.output,
                                     _artifact(sweep_rows,
                                               smoke=arguments.smoke))
    print(f"wrote {artifact_path}")
