"""Benchmark: regenerate Figure 1 (coarse NACA 2412 discretization)."""

import numpy as np
from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark):
    result = run_once(benchmark, figure1.run)
    print("\n" + result.text)
    geometry = result.rows[0]
    assert geometry["n_panels"] == 10
    assert geometry["designation"] == "2412"
    # The coarse discretization still resembles the section: unit chord,
    # roughly 12 % thickness, 10 control points.
    assert abs(geometry["chord"] - 1.0) < 0.05
    assert abs(geometry["max_thickness"] - 0.12) < 0.04
    assert len(geometry["control_points"]) == 10
    # Control points straddle the chord line (both surfaces sampled).
    heights = np.array(geometry["control_points"])[:, 1]
    assert heights.max() > 0 and heights.min() < 0
    assert "<svg" in result.artifacts["figure1.svg"]
