"""Benchmark: regenerate Figure 2 (GA airfoil evolution).

Runs the scaled-down GA (a real optimization, not a canned curve) and
checks the figure's qualitative content: per-generation champions whose
lift-to-drag ratio improves across the columns.
"""

from conftest import run_once

from repro.experiments import figure2


def test_figure2(benchmark):
    result = run_once(benchmark, figure2.run, seed=2016)
    print("\n" + result.text)
    best = [row["best_fitness"] for row in result.rows]
    # "confirm that our implementation generates successively better
    # airfoils": champions never regress (elitism) and improve overall.
    assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(best, best[1:]))
    assert best[-1] > 1.3 * best[0]
    # The gallery SVG holds one outline per generation.
    assert result.artifacts["figure2.svg"].count("<path") == len(result.rows)
