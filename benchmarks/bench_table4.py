"""Benchmark: regenerate Table 4 (Xeon Phi+CPU hybrid slice sweep)."""

from conftest import run_once

from repro.experiments import table3, table4
from repro.experiments.paper_data import TABLE4
from repro.precision import Precision


def test_table4(benchmark):
    result = run_once(benchmark, table4.run)
    print("\n" + result.text)
    assert len(result.rows) == 16

    for row in result.rows:
        precision = Precision.parse(row["precision"])
        paper = TABLE4[(precision, row["sockets"])][row["slices"]]
        assert abs(row["wall"] / paper.wall - 1.0) < 0.12

    # Cross-table claim (Section 5): the GPU hybrid beats the Phi hybrid.
    gpu_rows = table3.run().rows
    for precision in ("single", "double"):
        for sockets in (1, 2):
            phi_best = min(row["wall"] for row in result.rows
                           if row["precision"] == precision
                           and row["sockets"] == sockets)
            gpu_best = min(row["wall"] for row in gpu_rows
                           if row["precision"] == precision
                           and row["sockets"] == sockets)
            assert gpu_best < phi_best
